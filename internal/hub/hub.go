// Package hub implements the knowledge-hub partitioning of the paper
// (§III-A): every node of the knowledge graph is owned by exactly one hub,
// which alone is responsible for creating, updating and deleting it.
// Selected relationships cross hub borders ("knowledge bridges") and link
// the communities' partitions into a single partitioned knowledge graph.
//
// Ownership is recorded in two places, mirroring the paper's prototype:
// each label is declared as owned by a hub, and every node carries a
// mandatory hub property naming its owner. A registry validator enforces
// both at commit time.
package hub

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/value"
)

// DefaultHubProperty is the node property naming the owning hub.
const DefaultHubProperty = "hub"

// Errors reported by the registry.
var (
	ErrUnknownHub   = errors.New("hub: unknown hub")
	ErrLabelClaimed = errors.New("hub: label already owned by another hub")
	ErrWrongOwner   = errors.New("hub: node labeled with a label owned by another hub")
	ErrMissingHub   = errors.New("hub: node lacks the mandatory hub property")
	ErrHubExists    = errors.New("hub: hub already defined")
)

// Hub describes one knowledge hub (a scientific community or regulatory
// body owning part of the knowledge graph).
type Hub struct {
	Name        string
	Description string
}

// Registry tracks hubs and label ownership. One registry may govern many
// stores at once — in particular the per-hub shards of a sharded store,
// which share a single ontology of hubs and owned labels.
type Registry struct {
	mu      sync.RWMutex
	hubs    map[string]*Hub
	ownerOf map[string]string // label -> hub name
	propKey string
	// enforced tracks the stores Enforce has installed its validator on, so
	// repeated calls (and per-shard enforcement) never double-install.
	enforced map[*graph.Store]bool
}

// NewRegistry creates an empty registry using DefaultHubProperty.
func NewRegistry() *Registry {
	return &Registry{
		hubs:     make(map[string]*Hub),
		ownerOf:  make(map[string]string),
		propKey:  DefaultHubProperty,
		enforced: make(map[*graph.Store]bool),
	}
}

// PropertyKey returns the node property naming the owning hub.
func (r *Registry) PropertyKey() string { return r.propKey }

// Define registers a hub.
func (r *Registry) Define(name, description string) (*Hub, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.hubs[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrHubExists, name)
	}
	h := &Hub{Name: name, Description: description}
	r.hubs[name] = h
	return h, nil
}

// Get returns a hub by name.
func (r *Registry) Get(name string) (*Hub, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.hubs[name]
	return h, ok
}

// Hubs lists the defined hubs sorted by name.
func (r *Registry) Hubs() []*Hub {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Hub, 0, len(r.hubs))
	for _, h := range r.hubs {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Own assigns ownership of one or more labels to a hub. A label can be
// owned by at most one hub.
func (r *Registry) Own(hubName string, labels ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hubs[hubName]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHub, hubName)
	}
	for _, l := range labels {
		if owner, taken := r.ownerOf[l]; taken && owner != hubName {
			return fmt.Errorf("%w: %s is owned by %s", ErrLabelClaimed, l, owner)
		}
	}
	for _, l := range labels {
		r.ownerOf[l] = hubName
	}
	return nil
}

// OwnerOfLabel returns the hub owning a label.
func (r *Registry) OwnerOfLabel(label string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner, ok := r.ownerOf[label]
	return owner, ok
}

// OwnedLabels returns the labels owned by a hub, sorted.
func (r *Registry) OwnedLabels(hubName string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for l, h := range r.ownerOf {
		if h == hubName {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// OwnerOfNode determines the hub owning a node, preferring the node's hub
// property and falling back to label ownership.
func (r *Registry) OwnerOfNode(tx *graph.Tx, id graph.NodeID) (string, bool) {
	if v, ok := tx.NodeProp(id, r.propKey); ok {
		if s, isStr := v.AsString(); isStr {
			return s, true
		}
	}
	labels, ok := tx.NodeLabels(id)
	if !ok {
		return "", false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, l := range labels {
		if owner, has := r.ownerOf[l]; has {
			return owner, true
		}
	}
	return "", false
}

// EdgeScope classifies a relationship as intra-hub or inter-hub (a
// knowledge bridge).
type EdgeScope int

// Edge scopes.
const (
	ScopeUnknown EdgeScope = iota
	ScopeIntraHub
	ScopeInterHub
)

func (s EdgeScope) String() string {
	switch s {
	case ScopeIntraHub:
		return "intra-hub"
	case ScopeInterHub:
		return "inter-hub"
	default:
		return "unknown"
	}
}

// ClassifyEdge reports whether a relationship stays within one hub or
// bridges two.
func (r *Registry) ClassifyEdge(tx *graph.Tx, id graph.RelID) EdgeScope {
	_, start, end, ok := tx.RelEndpoints(id)
	if !ok {
		return ScopeUnknown
	}
	h1, ok1 := r.OwnerOfNode(tx, start)
	h2, ok2 := r.OwnerOfNode(tx, end)
	if !ok1 || !ok2 {
		return ScopeUnknown
	}
	if h1 == h2 {
		return ScopeIntraHub
	}
	return ScopeInterHub
}

// Enforce installs a commit-time validator on the store: every created
// node whose labels include an owned label must carry the hub property, and
// that property must name the owning hub. Unowned labels are unconstrained,
// so enforcement can be adopted incrementally. Calling Enforce again for a
// store it already governs is a no-op, so one registry can enforce every
// shard of a sharded store.
func (r *Registry) Enforce(s *graph.Store) {
	r.mu.Lock()
	already := r.enforced[s]
	r.enforced[s] = true
	r.mu.Unlock()
	if already {
		return
	}
	s.AddValidator(func(tx *graph.Tx) error {
		data := tx.Data()
		check := make(map[graph.NodeID]bool)
		for _, id := range data.CreatedNodes {
			check[id] = true
		}
		for _, lc := range data.AssignedLabels {
			check[lc.Node] = true
		}
		for _, pc := range data.AssignedProps {
			if pc.Kind == graph.NodeEntity && pc.Key == r.propKey {
				check[pc.Node] = true
			}
		}
		ids := make([]graph.NodeID, 0, len(check))
		for id := range check {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := r.checkNode(tx, id); err != nil {
				return err
			}
		}
		return nil
	})
}

func (r *Registry) checkNode(tx *graph.Tx, id graph.NodeID) error {
	labels, ok := tx.NodeLabels(id)
	if !ok {
		return nil // deleted within the same transaction
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var owner string
	for _, l := range labels {
		h, owned := r.ownerOf[l]
		if !owned {
			continue
		}
		if owner == "" {
			owner = h
		} else if owner != h {
			return fmt.Errorf("%w: node %d has labels owned by both %s and %s",
				ErrLabelClaimed, id, owner, h)
		}
	}
	if owner == "" {
		return nil // no owned labels: unconstrained
	}
	v, has := tx.NodeProp(id, r.propKey)
	if !has {
		return fmt.Errorf("%w: node %d (labels owned by %s)", ErrMissingHub, id, owner)
	}
	got, isStr := v.AsString()
	if !isStr || got != owner {
		return fmt.Errorf("%w: node %d declares hub %s but labels belong to %s",
			ErrWrongOwner, id, v, owner)
	}
	return nil
}

// Stats summarizes the partitioning of the graph: per-hub node counts and
// the number of intra- and inter-hub relationships.
type Stats struct {
	NodesPerHub map[string]int
	Unassigned  int
	IntraEdges  int
	InterEdges  int
	Bridges     []Bridge
}

// Bridge describes one inter-hub relationship class.
type Bridge struct {
	Type    string
	FromHub string
	ToHub   string
	Count   int
}

// ComputeStats scans the graph and summarizes the partitioning.
func (r *Registry) ComputeStats(tx *graph.Tx) Stats {
	st := Stats{NodesPerHub: make(map[string]int)}
	for _, id := range tx.AllNodes() {
		if h, ok := r.OwnerOfNode(tx, id); ok {
			st.NodesPerHub[h]++
		} else {
			st.Unassigned++
		}
	}
	bridgeCount := make(map[Bridge]int)
	for _, rid := range tx.AllRels() {
		typ, start, end, ok := tx.RelEndpoints(rid)
		if !ok {
			continue
		}
		h1, ok1 := r.OwnerOfNode(tx, start)
		h2, ok2 := r.OwnerOfNode(tx, end)
		if !ok1 || !ok2 {
			continue
		}
		if h1 == h2 {
			st.IntraEdges++
			continue
		}
		st.InterEdges++
		bridgeCount[Bridge{Type: typ, FromHub: h1, ToHub: h2}]++
	}
	for b, n := range bridgeCount {
		b.Count = n
		st.Bridges = append(st.Bridges, b)
	}
	sort.Slice(st.Bridges, func(i, j int) bool {
		a, b := st.Bridges[i], st.Bridges[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.FromHub != b.FromHub {
			return a.FromHub < b.FromHub
		}
		return a.ToHub < b.ToHub
	})
	return st
}

// HubProp builds the property map fragment {hub: name}; a convenience for
// node-creation call sites.
func HubProp(name string) map[string]value.Value {
	return map[string]value.Value{DefaultHubProperty: value.Str(name)}
}
