package hub

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func fourHubs(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, h := range []struct{ name, desc string }{
		{"E", "Experimental hub: mutation effects"},
		{"A", "Analysis hub: sequencing"},
		{"C", "Clinical hub: hospital"},
		{"R", "Regional hub: policies"},
	} {
		if _, err := r.Define(h.name, h.desc); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.Own("E", "Mutation", "Effect"))
	must(r.Own("A", "Lab", "Sequence", "Variant"))
	must(r.Own("C", "Hospital", "Patient", "Treatment"))
	must(r.Own("R", "Region"))
	return r
}

func TestDefineAndGet(t *testing.T) {
	r := fourHubs(t)
	if h, ok := r.Get("E"); !ok || h.Description == "" {
		t.Error("Get")
	}
	if _, ok := r.Get("Z"); ok {
		t.Error("unknown hub")
	}
	if len(r.Hubs()) != 4 || r.Hubs()[0].Name != "A" {
		t.Error("Hubs should be sorted")
	}
	if _, err := r.Define("E", "dup"); !errors.Is(err, ErrHubExists) {
		t.Error("duplicate define")
	}
}

func TestOwnership(t *testing.T) {
	r := fourHubs(t)
	if owner, ok := r.OwnerOfLabel("Sequence"); !ok || owner != "A" {
		t.Error("OwnerOfLabel")
	}
	if _, ok := r.OwnerOfLabel("Nope"); ok {
		t.Error("unowned label")
	}
	if err := r.Own("E", "Sequence"); !errors.Is(err, ErrLabelClaimed) {
		t.Error("label reclaim should fail")
	}
	if err := r.Own("A", "Sequence"); err != nil {
		t.Error("re-own by same hub is idempotent")
	}
	if err := r.Own("Z", "X"); !errors.Is(err, ErrUnknownHub) {
		t.Error("own by unknown hub")
	}
	labels := r.OwnedLabels("A")
	if len(labels) != 3 || labels[0] != "Lab" {
		t.Errorf("OwnedLabels = %v", labels)
	}
}

func TestOwnerOfNode(t *testing.T) {
	r := fourHubs(t)
	s := graph.NewStore()
	var byProp, byLabel, neither graph.NodeID
	_ = s.Update(func(tx *graph.Tx) error {
		byProp, _ = tx.CreateNode([]string{"Whatever"}, HubProp("C"))
		byLabel, _ = tx.CreateNode([]string{"Region"}, nil)
		neither, _ = tx.CreateNode([]string{"Floating"}, nil)
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		if h, ok := r.OwnerOfNode(tx, byProp); !ok || h != "C" {
			t.Error("hub property wins")
		}
		if h, ok := r.OwnerOfNode(tx, byLabel); !ok || h != "R" {
			t.Error("label fallback")
		}
		if _, ok := r.OwnerOfNode(tx, neither); ok {
			t.Error("unowned node")
		}
		return nil
	})
}

func TestClassifyEdge(t *testing.T) {
	r := fourHubs(t)
	s := graph.NewStore()
	var intra, inter graph.RelID
	_ = s.Update(func(tx *graph.Tx) error {
		lab, _ := tx.CreateNode([]string{"Lab"}, HubProp("A"))
		seq, _ := tx.CreateNode([]string{"Sequence"}, HubProp("A"))
		region, _ := tx.CreateNode([]string{"Region"}, HubProp("R"))
		intra, _ = tx.CreateRel(seq, lab, "SequencedAt", nil)
		inter, _ = tx.CreateRel(lab, region, "LocatedIn", nil)
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		if got := r.ClassifyEdge(tx, intra); got != ScopeIntraHub {
			t.Errorf("intra = %v", got)
		}
		if got := r.ClassifyEdge(tx, inter); got != ScopeInterHub {
			t.Errorf("inter = %v", got)
		}
		if got := r.ClassifyEdge(tx, 999); got != ScopeUnknown {
			t.Errorf("missing = %v", got)
		}
		return nil
	})
	if ScopeIntraHub.String() != "intra-hub" || ScopeInterHub.String() != "inter-hub" || ScopeUnknown.String() != "unknown" {
		t.Error("scope strings")
	}
}

func TestEnforceHubProperty(t *testing.T) {
	r := fourHubs(t)
	s := graph.NewStore()
	r.Enforce(s)
	r.Enforce(s) // idempotent

	// Owned label without hub property → rejected.
	err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Patient"}, nil)
		return err
	})
	if !errors.Is(err, ErrMissingHub) {
		t.Errorf("missing hub: %v", err)
	}
	// Wrong hub value → rejected.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Patient"}, HubProp("A"))
		return err
	})
	if !errors.Is(err, ErrWrongOwner) {
		t.Errorf("wrong owner: %v", err)
	}
	// Correct hub → accepted.
	if err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Patient"}, HubProp("C"))
		return err
	}); err != nil {
		t.Errorf("valid node rejected: %v", err)
	}
	// Unowned labels remain unconstrained.
	if err := s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"ScratchPad"}, nil)
		return err
	}); err != nil {
		t.Errorf("unowned label rejected: %v", err)
	}
	// Labels from two different hubs on one node → rejected.
	err = s.Update(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Patient", "Region"}, HubProp("C"))
		return err
	})
	if !errors.Is(err, ErrLabelClaimed) {
		t.Errorf("cross-hub labels: %v", err)
	}
}

func TestEnforceOnLabelAssignment(t *testing.T) {
	r := fourHubs(t)
	s := graph.NewStore()
	r.Enforce(s)
	var id graph.NodeID
	_ = s.Update(func(tx *graph.Tx) error {
		id, _ = tx.CreateNode([]string{"Scratch"}, nil)
		return nil
	})
	// Assigning an owned label to a node without the hub property fails.
	err := s.Update(func(tx *graph.Tx) error { return tx.SetLabel(id, "Region") })
	if !errors.Is(err, ErrMissingHub) {
		t.Errorf("label assignment: %v", err)
	}
	// Setting the hub property first, then the label, passes.
	err = s.Update(func(tx *graph.Tx) error {
		if err := tx.SetNodeProp(id, DefaultHubProperty, value.Str("R")); err != nil {
			return err
		}
		return tx.SetLabel(id, "Region")
	})
	if err != nil {
		t.Errorf("valid label assignment rejected: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	r := fourHubs(t)
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		lab, _ := tx.CreateNode([]string{"Lab"}, HubProp("A"))
		seq1, _ := tx.CreateNode([]string{"Sequence"}, HubProp("A"))
		seq2, _ := tx.CreateNode([]string{"Sequence"}, HubProp("A"))
		region, _ := tx.CreateNode([]string{"Region"}, HubProp("R"))
		_, _ = tx.CreateNode([]string{"Loose"}, nil)
		_, _ = tx.CreateRel(seq1, lab, "SequencedAt", nil)
		_, _ = tx.CreateRel(seq2, lab, "SequencedAt", nil)
		_, _ = tx.CreateRel(lab, region, "LocatedIn", nil)
		return nil
	})
	var st Stats
	_ = s.View(func(tx *graph.Tx) error {
		st = r.ComputeStats(tx)
		return nil
	})
	if st.NodesPerHub["A"] != 3 || st.NodesPerHub["R"] != 1 || st.Unassigned != 1 {
		t.Errorf("nodes: %+v", st.NodesPerHub)
	}
	if st.IntraEdges != 2 || st.InterEdges != 1 {
		t.Errorf("edges: intra=%d inter=%d", st.IntraEdges, st.InterEdges)
	}
	if len(st.Bridges) != 1 || st.Bridges[0].Type != "LocatedIn" ||
		st.Bridges[0].FromHub != "A" || st.Bridges[0].ToHub != "R" || st.Bridges[0].Count != 1 {
		t.Errorf("bridges: %+v", st.Bridges)
	}
}
