package cypher

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func countStore(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.NewStore()
	if err := s.CreateIndex("Patient", "regionDay"); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *graph.Tx) error {
		for i := 0; i < 40; i++ {
			key := "r0#d0"
			if i%4 == 0 {
				key = "r1#d0"
			}
			if _, err := tx.CreateNode([]string{"Patient"},
				map[string]value.Value{"regionDay": value.Str(key)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFastCountByLabel(t *testing.T) {
	s := countStore(t)
	res := q(t, s, "MATCH (p:Patient) RETURN count(p)", nil)
	if res.Rows[0][0].String() != "40" {
		t.Errorf("got %v", res.Rows)
	}
	res = q(t, s, "MATCH (p:Patient) RETURN count(*) AS n", nil)
	if res.Columns[0] != "n" || res.Rows[0][0].String() != "40" {
		t.Errorf("got %v %v", res.Columns, res.Rows)
	}
}

func TestFastCountByIndexedProp(t *testing.T) {
	s := countStore(t)
	res := q(t, s, "MATCH (p:Patient {regionDay: 'r1#d0'}) RETURN count(p)", nil)
	if res.Rows[0][0].String() != "10" {
		t.Errorf("got %v", res.Rows)
	}
	res = q(t, s, "MATCH (p:Patient {regionDay: $k}) RETURN count(*)", &Options{
		Params: map[string]value.Value{"k": value.Str("r0#d0")},
	})
	if res.Rows[0][0].String() != "30" {
		t.Errorf("param fast count got %v", res.Rows)
	}
}

func TestFastCountAllNodes(t *testing.T) {
	s := countStore(t)
	res := q(t, s, "MATCH (n) RETURN count(*)", nil)
	if res.Rows[0][0].String() != "40" {
		t.Errorf("got %v", res.Rows)
	}
}

// verifyFastPathTaken ensures the recognizer actually fires for the shapes
// above, by comparing against a store whose generic path would differ if the
// recognizer mis-fired on unsupported shapes.
func TestFastCountDoesNotMisfire(t *testing.T) {
	s := countStore(t)
	// WHERE clause present → generic path, same answer.
	res := q(t, s, "MATCH (p:Patient) WHERE p.regionDay = 'r1#d0' RETURN count(p)", nil)
	if res.Rows[0][0].String() != "10" {
		t.Errorf("generic count got %v", res.Rows)
	}
	// count(DISTINCT …) must not use the fast path blindly.
	res = q(t, s, "MATCH (p:Patient) RETURN count(DISTINCT p.regionDay)", nil)
	if res.Rows[0][0].String() != "2" {
		t.Errorf("distinct count got %v", res.Rows)
	}
	// Counting a different variable is not the fast shape.
	res = q(t, s, "MATCH (p:Patient {regionDay: 'r1#d0'}) RETURN count(p.regionDay)", nil)
	if res.Rows[0][0].String() != "10" {
		t.Errorf("prop count got %v", res.Rows)
	}
	// Unindexed property → generic scan.
	res = q(t, s, "MATCH (p:Patient {missing: 'x'}) RETURN count(p)", nil)
	if res.Rows[0][0].String() != "0" {
		t.Errorf("unindexed count got %v", res.Rows)
	}
}

func TestFastCountAgreesWithScan(t *testing.T) {
	s := countStore(t)
	fast := q(t, s, "MATCH (p:Patient {regionDay: 'r0#d0'}) RETURN count(p)", nil)
	slow := q(t, s, "MATCH (p:Patient) WHERE p.regionDay = 'r0#d0' RETURN count(p)", nil)
	if fast.Rows[0][0].String() != slow.Rows[0][0].String() {
		t.Errorf("fast %v != slow %v", fast.Rows, slow.Rows)
	}
}

func BenchmarkFastCount(b *testing.B) {
	s := graph.NewStore()
	if err := s.CreateIndex("P", "k"); err != nil {
		b.Fatal(err)
	}
	_ = s.Update(func(tx *graph.Tx) error {
		for i := 0; i < 10000; i++ {
			if _, err := tx.CreateNode([]string{"P"},
				map[string]value.Value{"k": value.Int(int64(i % 50))}); err != nil {
				return err
			}
		}
		return nil
	})
	stmt, err := Parse("MATCH (p:P {k: 7}) RETURN count(p)")
	if err != nil {
		b.Fatal(err)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(tx, stmt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanCount(b *testing.B) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		for i := 0; i < 10000; i++ {
			if _, err := tx.CreateNode([]string{"P"},
				map[string]value.Value{"k": value.Int(int64(i % 50))}); err != nil {
				return err
			}
		}
		return nil
	})
	stmt, err := Parse("MATCH (p:P) WHERE p.k = 7 RETURN count(p)")
	if err != nil {
		b.Fatal(err)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(tx, stmt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
