package cypher

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func TestCreateSingleNode(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "CREATE (n:Person {name: 'Zed', age: 20}) RETURN n.name", nil)
	if res.Stats.NodesCreated != 1 || res.Stats.PropsSet != 2 || res.Stats.LabelsAdded != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if joined(res, 0) != `"Zed"` {
		t.Errorf("return: %v", res.Rows)
	}
	if s.Stats().Nodes != 1 {
		t.Error("node not persisted")
	}
}

func TestCreatePath(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "CREATE (a:A)-[:R {w: 1}]->(b:B)<-[:S]-(c:C) RETURN id(a) >= 0", nil)
	if res.Stats.NodesCreated != 3 || res.Stats.RelsCreated != 2 {
		t.Errorf("stats: %+v", res.Stats)
	}
	chk := q(t, s, "MATCH (a:A)-[:R]->(b:B)<-[:S]-(c:C) RETURN count(*)", nil)
	if chk.Rows[0][0].String() != "1" {
		t.Error("created path should match")
	}
}

func TestCreateReusesBoundVariable(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (a:Person {name:'Alice'}), (b:Person {name:'Dave'})
	               CREATE (a)-[:MENTORS]->(b)`, nil)
	if res.Stats.NodesCreated != 0 || res.Stats.RelsCreated != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	chk := q(t, s, "MATCH (:Person {name:'Alice'})-[:MENTORS]->(d) RETURN d.name", nil)
	if joined(chk, 0) != `"Dave"` {
		t.Error("relationship endpoints")
	}
}

func TestCreatePerRow(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "UNWIND range(1, 5) AS i CREATE (n:Row {i: i})", nil)
	if res.Stats.NodesCreated != 5 {
		t.Errorf("stats: %+v", res.Stats)
	}
	chk := q(t, s, "MATCH (n:Row) RETURN sum(n.i)", nil)
	if chk.Rows[0][0].String() != "15" {
		t.Error("per-row creation")
	}
}

func TestCreateErrors(t *testing.T) {
	s := testGraph(t)
	qErr(t, s, "MATCH (a:Person {name:'Alice'}) CREATE (a:Extra)")
	qErr(t, s, "CREATE (a)-[:R]-(b)")      // undirected
	qErr(t, s, "CREATE (a)-[:R|S]->(b)")   // multiple types
	qErr(t, s, "CREATE (a)-[*]->(b)")      // variable length
	qErr(t, s, "CREATE p = (a)-[:R]->(b)") // path variable
}

func TestMergeCreatesWhenAbsent(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "MERGE (c:Counter {name: 'x'}) ON CREATE SET c.v = 1 ON MATCH SET c.v = c.v + 1 RETURN c.v", nil)
	if res.Rows[0][0].String() != "1" || res.Stats.NodesCreated != 1 {
		t.Errorf("first merge: %v %+v", res.Rows, res.Stats)
	}
	res = q(t, s, "MERGE (c:Counter {name: 'x'}) ON CREATE SET c.v = 1 ON MATCH SET c.v = c.v + 1 RETURN c.v", nil)
	if res.Rows[0][0].String() != "2" || res.Stats.NodesCreated != 0 {
		t.Errorf("second merge: %v %+v", res.Rows, res.Stats)
	}
	if s.Stats().Nodes != 1 {
		t.Error("merge must not duplicate")
	}
}

func TestMergeRelationship(t *testing.T) {
	s := testGraph(t)
	for i := 0; i < 2; i++ {
		q(t, s, `MATCH (a:Person {name:'Alice'}), (b:Person {name:'Bob'})
		        MERGE (a)-[:COLLEAGUE]->(b)`, nil)
	}
	chk := q(t, s, "MATCH (:Person {name:'Alice'})-[r:COLLEAGUE]->() RETURN count(r)", nil)
	if chk.Rows[0][0].String() != "1" {
		t.Error("merge should not duplicate relationships")
	}
}

func TestDeleteNodeAndRel(t *testing.T) {
	s := testGraph(t)
	// Plain DELETE of a connected node must fail.
	qErr(t, s, "MATCH (p:Person {name:'Alice'}) DELETE p")
	res := q(t, s, "MATCH (p:Person {name:'Alice'}) DETACH DELETE p", nil)
	if res.Stats.NodesDeleted != 1 || res.Stats.RelsDeleted != 2 {
		t.Errorf("stats: %+v", res.Stats)
	}
	chk := q(t, s, "MATCH (p:Person) RETURN count(*)", nil)
	if chk.Rows[0][0].String() != "3" {
		t.Error("node should be gone")
	}
}

func TestDeleteRelationshipOnly(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (:Person {name:'Alice'})-[r:KNOWS]->() DELETE r", nil)
	if res.Stats.RelsDeleted != 1 || res.Stats.NodesDeleted != 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestDeleteNullIsNoop(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person {name:'Dave'}) OPTIONAL MATCH (p)-[r:KNOWS]->() DELETE r`, nil)
	if res.Stats.RelsDeleted != 0 {
		t.Error("deleting null should be a no-op")
	}
}

func TestSetProperty(t *testing.T) {
	s := testGraph(t)
	q(t, s, "MATCH (p:Person {name:'Bob'}) SET p.age = p.age + 1, p.checked = true", nil)
	chk := q(t, s, "MATCH (p:Person {name:'Bob'}) RETURN p.age, p.checked", nil)
	if chk.Rows[0][0].String() != "30" || chk.Rows[0][1].String() != "true" {
		t.Errorf("row: %v", chk.Rows[0])
	}
}

func TestSetLabelAndRemove(t *testing.T) {
	s := testGraph(t)
	q(t, s, "MATCH (p:Person {name:'Carol'}) SET p:Senior:Manager", nil)
	chk := q(t, s, "MATCH (p:Senior:Manager) RETURN p.name", nil)
	if joined(chk, 0) != `"Carol"` {
		t.Error("labels set")
	}
	res := q(t, s, "MATCH (p:Senior) REMOVE p:Manager, p.age", nil)
	if res.Stats.LabelsRemoved != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	chk = q(t, s, "MATCH (p:Manager) RETURN count(*)", nil)
	if chk.Rows[0][0].String() != "0" {
		t.Error("label removed")
	}
	chk = q(t, s, "MATCH (p:Senior) RETURN p.age", nil)
	if !chk.Rows[0][0].IsNull() {
		t.Error("property removed")
	}
}

func TestSetNullRemovesProperty(t *testing.T) {
	s := testGraph(t)
	q(t, s, "MATCH (p:Person {name:'Dave'}) SET p.age = null", nil)
	chk := q(t, s, "MATCH (p:Person {name:'Dave'}) RETURN p.age IS NULL", nil)
	if chk.Rows[0][0].String() != "true" {
		t.Error("SET = null should remove")
	}
}

func TestSetMergeProps(t *testing.T) {
	s := testGraph(t)
	q(t, s, "MATCH (p:Person {name:'Dave'}) SET p += {hobby: 'chess', age: 20}", nil)
	chk := q(t, s, "MATCH (p:Person {name:'Dave'}) RETURN p.hobby, p.age, p.name", nil)
	r := chk.Rows[0]
	if r[0].String() != `"chess"` || r[1].String() != "20" || r[2].String() != `"Dave"` {
		t.Errorf("row: %v", r)
	}
}

func TestSetAllPropsReplaces(t *testing.T) {
	s := testGraph(t)
	q(t, s, "MATCH (p:Person {name:'Dave'}) SET p = {label: 'fresh'}", nil)
	chk := q(t, s, "MATCH (p:Person) WHERE p.label = 'fresh' RETURN p.name IS NULL, p.age IS NULL", nil)
	if chk.Rows[0][0].String() != "true" || chk.Rows[0][1].String() != "true" {
		t.Error("SET = map should replace all properties")
	}
}

func TestSetOnNullIsNoop(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person {name:'Dave'}) OPTIONAL MATCH (p)-[:KNOWS]->(f)
	               SET f.touched = true`, nil)
	if res.Stats.PropsSet != 0 {
		t.Error("SET on null target should be skipped")
	}
}

func TestSetRelProperty(t *testing.T) {
	s := testGraph(t)
	q(t, s, "MATCH ()-[r:KNOWS {since: 2010}]->() SET r.strength = 0.9", nil)
	chk := q(t, s, "MATCH ()-[r:KNOWS {since: 2010}]->() RETURN r.strength", nil)
	if chk.Rows[0][0].String() != "0.9" {
		t.Error("rel property")
	}
}

func TestWriteThenReadInSameStatement(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, `CREATE (a:City {name: 'Milan'})
	               CREATE (b:City {name: 'Rome'})
	               CREATE (a)-[:ROAD {km: 570}]->(b)
	               RETURN a.name, b.name`, nil)
	if res.Rows[0][0].String() != `"Milan"` {
		t.Error("multi-create")
	}
	chk := q(t, s, "MATCH (:City {name:'Milan'})-[r:ROAD]->(c) RETURN r.km, c.name", nil)
	if chk.Rows[0][0].String() != "570" {
		t.Error("follow-up read")
	}
}

func TestRollbackDiscardsQueryWrites(t *testing.T) {
	s := graph.NewStore()
	tx := s.Begin(graph.ReadWrite)
	if _, err := Run(tx, "CREATE (:Temp)", nil); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if s.Stats().Nodes != 0 {
		t.Error("rollback should discard query writes")
	}
}

func TestUpdateStatsAdd(t *testing.T) {
	a := UpdateStats{NodesCreated: 1, PropsSet: 2}
	b := UpdateStats{NodesCreated: 3, RelsDeleted: 1, LabelsAdded: 4}
	a.Add(b)
	if a.NodesCreated != 4 || a.PropsSet != 2 || a.RelsDeleted != 1 || a.LabelsAdded != 4 {
		t.Errorf("sum: %+v", a)
	}
}

func TestResultValue(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "RETURN 42", nil)
	v, ok := res.Value()
	if !ok || !value.SameValue(v, value.Int(42)) {
		t.Error("Result.Value single")
	}
	res = q(t, s, "UNWIND [1,2] AS x RETURN x", nil)
	if _, ok := res.Value(); ok {
		t.Error("Result.Value on multi-row should fail")
	}
}

func TestMergeWithBoundVariable(t *testing.T) {
	s := testGraph(t)
	// MERGE with a bound endpoint creates only the missing parts.
	for i := 0; i < 2; i++ {
		q(t, s, `MATCH (a:Person {name:'Alice'}) MERGE (a)-[:BADGE]->(b:Badge {kind: 'gold'})`, nil)
	}
	chk := q(t, s, "MATCH (:Person {name:'Alice'})-[:BADGE]->(b:Badge) RETURN count(b)", nil)
	if chk.Rows[0][0].String() != "1" {
		t.Errorf("merge with bound var duplicated: %v", chk.Rows)
	}
}

func TestMergeOnNullBoundVariableErrors(t *testing.T) {
	s := testGraph(t)
	// Dave has no KNOWS edges; the OPTIONAL MATCH leaves f null, so the
	// MERGE must fail rather than silently rebinding f.
	qErr(t, s, `MATCH (p:Person {name:'Dave'})
	           OPTIONAL MATCH (p)-[:KNOWS]->(f)
	           MERGE (f)-[:TAGGED]->(:T)`)
}

func TestCreateWithRelBoundVariableErrors(t *testing.T) {
	s := testGraph(t)
	qErr(t, s, `MATCH ()-[r:KNOWS]->() CREATE (r)-[:X]->(:Y)`)
}

func TestUnwindScalarBehavesAsSingleton(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "UNWIND 5 AS x RETURN x", nil)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "5" {
		t.Errorf("scalar unwind: %v", res.Rows)
	}
}
