package cypher

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []tokenKind {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	out := make([]tokenKind, 0, len(toks)-1)
	for _, tok := range toks[:len(toks)-1] {
		out = append(out, tok.kind)
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	got := kinds(t, "MATCH (n:Person {age: 42}) RETURN n.name")
	want := []tokenKind{tokKeyword, tokLParen, tokIdent, tokColon, tokIdent,
		tokLBrace, tokIdent, tokColon, tokInt, tokRBrace, tokRParen,
		tokKeyword, tokIdent, tokDot, tokIdent}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, "<> <= >= < > = - -> <- + += * / % ^ .. | ;")
	want := []tokenKind{tokNeq, tokLte, tokGte, tokLt, tokGt, tokEq,
		tokMinus, tokArrowR, tokArrowL, tokPlus, tokPlusEq, tokStar,
		tokSlash, tokPercent, tokCaret, tokDotDot, tokPipe, tokSemi}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("1 42 3.14 1e5 2.5e-3 0x1F .5")
	if err != nil {
		t.Fatal(err)
	}
	wantKind := []tokenKind{tokInt, tokInt, tokFloat, tokFloat, tokFloat, tokInt, tokFloat}
	for i, k := range wantKind {
		if toks[i].kind != k {
			t.Errorf("token %d (%s) kind = %v, want %v", i, toks[i].text, toks[i].kind, k)
		}
	}
}

func TestLexRangeVsFloat(t *testing.T) {
	// "1..3" must lex as INT DOTDOT INT, not FLOAT.
	got := kinds(t, "1..3")
	want := []tokenKind{tokInt, tokDotDot, tokInt}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("1..3 lexes as %v", got)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex(`'single' "double" 'it\'s' "tab\there" "uniA"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"single", "double", "it's", "tab\there", "uniA"}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexBacktickIdent(t *testing.T) {
	toks, err := lex("`weird name` `es``caped`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "weird name" {
		t.Errorf("backtick ident = %q", toks[0].text)
	}
	if toks[1].text != "es`caped" {
		t.Errorf("escaped backtick = %q", toks[1].text)
	}
}

func TestLexParams(t *testing.T) {
	toks, err := lex("$name $p_2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokParam || toks[0].text != "name" {
		t.Errorf("param = %v", toks[0])
	}
	if toks[1].text != "p_2" {
		t.Errorf("param2 = %v", toks[1])
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, "MATCH // a line comment\n (n) /* block\ncomment */ RETURN n")
	want := []tokenKind{tokKeyword, tokLParen, tokIdent, tokRParen, tokKeyword, tokIdent}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := lex("match MaTcH RETURN return")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if toks[i].kind != tokKeyword {
			t.Errorf("token %d should be keyword", i)
		}
	}
	if toks[0].text != "match" || toks[3].text != "return" {
		t.Error("keyword tokens keep their original text")
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "`unterminated", "$", "\"bad\\q\"", "/* unterminated", "@"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Parse("MATCH (n)\nRETRN n")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should report line 2: %v", err)
	}
}
