package cypher

import (
	"testing"

	"repro/internal/graph"
)

func TestQuantifiers(t *testing.T) {
	s := graph.NewStore()
	cases := []struct {
		expr string
		want string
	}{
		{"all(x IN [1,2,3] WHERE x > 0)", "true"},
		{"all(x IN [1,2,3] WHERE x > 1)", "false"},
		{"all(x IN [] WHERE x > 1)", "true"},
		{"any(x IN [1,2,3] WHERE x > 2)", "true"},
		{"any(x IN [1,2,3] WHERE x > 5)", "false"},
		{"any(x IN [] WHERE x > 5)", "false"},
		{"none(x IN [1,2,3] WHERE x > 5)", "true"},
		{"none(x IN [1,2,3] WHERE x = 2)", "false"},
		{"single(x IN [1,2,3] WHERE x = 2)", "true"},
		{"single(x IN [1,2,2] WHERE x = 2)", "false"},
		{"single(x IN [1,3] WHERE x = 2)", "false"},
		// Ternary logic: nulls leave undecided quantifiers unknown.
		{"all(x IN [1, null] WHERE x > 0) IS NULL", "true"},
		{"any(x IN [null, 3] WHERE x > 2)", "true"}, // decided despite null
		{"none(x IN [null] WHERE x > 2) IS NULL", "true"},
		// Quantifier over an outer variable.
		{"all(x IN [1,2] WHERE x < y)", "true"},
	}
	for _, c := range cases {
		res := q(t, s, "WITH 10 AS y RETURN "+c.expr+" AS v", nil)
		if got := res.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
	// Quantifier over null list is null.
	res := q(t, s, "RETURN all(x IN null WHERE x > 0) IS NULL", nil)
	if res.Rows[0][0].String() != "true" {
		t.Error("quantifier over null list")
	}
	// Quantifier over a non-list errors.
	qErr(t, s, "RETURN all(x IN 5 WHERE x > 0)")
}

func TestReduce(t *testing.T) {
	s := graph.NewStore()
	cases := []struct {
		expr string
		want string
	}{
		{"reduce(acc = 0, x IN [1,2,3] | acc + x)", "6"},
		{"reduce(acc = 1, x IN [2,3,4] | acc * x)", "24"},
		{"reduce(s = '', w IN ['a','b'] | s + w)", `"ab"`},
		{"reduce(acc = 0, x IN [] | acc + x)", "0"},
		{"reduce(acc = 0, x IN [1,2] | acc + x + base)", "13"},
	}
	for _, c := range cases {
		res := q(t, s, "WITH 5 AS base RETURN "+c.expr+" AS v", nil)
		if got := res.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
	res := q(t, s, "RETURN reduce(acc = 0, x IN null | acc + x) IS NULL", nil)
	if res.Rows[0][0].String() != "true" {
		t.Error("reduce over null list")
	}
	qErr(t, s, "RETURN reduce(acc = 0, x IN 'nope' | acc + x)")
	// Parse errors.
	for _, bad := range []string{
		"RETURN reduce(acc, x IN [1] | acc)",
		"RETURN reduce(acc = 0 x IN [1] | acc)",
		"RETURN reduce(acc = 0, x IN [1] acc)",
		"RETURN all(x IN [1])",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestQuantifierOverGraphData(t *testing.T) {
	s := testGraph(t)
	// All of Alice's direct contacts are younger than 35.
	res := q(t, s, `MATCH (a:Person {name:'Alice'})
	               MATCH (a)-[:KNOWS]->(f)
	               WITH collect(f.age) AS ages
	               RETURN all(x IN ages WHERE x < 35), any(x IN ages WHERE x > 100)`, nil)
	if res.Rows[0][0].String() != "true" || res.Rows[0][1].String() != "false" {
		t.Errorf("row: %v", res.Rows[0])
	}
}

func TestFuncNamedAllStillWorks(t *testing.T) {
	// all/any/none/single only get special parsing with the `v IN list`
	// shape; anything else must be an unknown-function error at runtime,
	// not a parse failure.
	if _, err := Parse("RETURN all([1,2,3])"); err != nil {
		t.Errorf("all() with plain args should parse: %v", err)
	}
}

func TestCountNodesFunction(t *testing.T) {
	s := graph.NewStore()
	if err := s.CreateIndex("P", "k"); err != nil {
		t.Fatal(err)
	}
	q(t, s, "UNWIND range(1, 10) AS i CREATE (:P {k: i % 2})", nil)
	res := q(t, s, "RETURN countNodes('P'), countNodes('P', 'k', 0), countNodes('P', 'k', 1)", nil)
	r := res.Rows[0]
	if r[0].String() != "10" || r[1].String() != "5" || r[2].String() != "5" {
		t.Errorf("countNodes: %v", r)
	}
	// Unindexed fallback agrees with the indexed result.
	res = q(t, s, "RETURN countNodes('P', 'unindexed', 1)", nil)
	if res.Rows[0][0].String() != "0" {
		t.Errorf("fallback: %v", res.Rows[0][0])
	}
	q(t, s, "MATCH (p:P) SET p.j = p.k", nil)
	res = q(t, s, "RETURN countNodes('P', 'j', 0)", nil)
	if res.Rows[0][0].String() != "5" {
		t.Errorf("unindexed scan: %v", res.Rows[0][0])
	}
	qErr(t, s, "RETURN countNodes(5)")
	qErr(t, s, "RETURN countNodes('P', 'k')")
}
