package cypher

import (
	"testing"
)

func mustParse(t *testing.T, src string) *Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseMatchReturn(t *testing.T) {
	stmt := mustParse(t, "MATCH (n:Person)-[r:KNOWS]->(m) WHERE n.age > 30 RETURN n, m.name AS name")
	if len(stmt.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(stmt.Clauses))
	}
	m := stmt.Clauses[0].(*MatchClause)
	if m.Optional || len(m.Patterns) != 1 || m.Where == nil {
		t.Error("match shape")
	}
	part := m.Patterns[0]
	if len(part.Nodes) != 2 || len(part.Rels) != 1 {
		t.Error("pattern shape")
	}
	if part.Nodes[0].Var != "n" || part.Nodes[0].Labels[0] != "Person" {
		t.Error("first node")
	}
	if part.Rels[0].Var != "r" || part.Rels[0].Types[0] != "KNOWS" || part.Rels[0].Dir != DirRight {
		t.Error("rel pattern")
	}
	r := stmt.Clauses[1].(*ReturnClause)
	if len(r.Items) != 2 || r.Items[1].Alias != "name" {
		t.Error("return items")
	}
}

func TestParseDirections(t *testing.T) {
	cases := map[string]PatternDirection{
		"MATCH (a)-[:R]->(b) RETURN a": DirRight,
		"MATCH (a)<-[:R]-(b) RETURN a": DirLeft,
		"MATCH (a)-[:R]-(b) RETURN a":  DirBoth,
		"MATCH (a)-->(b) RETURN a":     DirRight,
		"MATCH (a)--(b) RETURN a":      DirBoth,
		"MATCH (a)<--(b) RETURN a":     DirLeft,
	}
	for src, want := range cases {
		stmt := mustParse(t, src)
		m := stmt.Clauses[0].(*MatchClause)
		if got := m.Patterns[0].Rels[0].Dir; got != want {
			t.Errorf("%s: dir = %v, want %v", src, got, want)
		}
	}
	if _, err := Parse("MATCH (a)<-[:R]->(b) RETURN a"); err == nil {
		t.Error("bidirectional arrow should fail")
	}
}

func TestParseRelTypeAlternation(t *testing.T) {
	stmt := mustParse(t, "MATCH (a)-[:X|Y|:Z]->(b) RETURN a")
	types := stmt.Clauses[0].(*MatchClause).Patterns[0].Rels[0].Types
	if len(types) != 3 || types[0] != "X" || types[1] != "Y" || types[2] != "Z" {
		t.Errorf("types = %v", types)
	}
}

func TestParseVarLengthPaths(t *testing.T) {
	cases := map[string][2]int{
		"MATCH (a)-[*]->(b) RETURN a":        {1, -1},
		"MATCH (a)-[*2]->(b) RETURN a":       {2, 2},
		"MATCH (a)-[*1..3]->(b) RETURN a":    {1, 3},
		"MATCH (a)-[*..4]->(b) RETURN a":     {0, 4},
		"MATCH (a)-[*2..]->(b) RETURN a":     {2, -1},
		"MATCH (a)-[r:T*1..2]->(b) RETURN a": {1, 2},
	}
	for src, want := range cases {
		stmt := mustParse(t, src)
		rel := stmt.Clauses[0].(*MatchClause).Patterns[0].Rels[0]
		if !rel.VarHops || rel.MinHops != want[0] || rel.MaxHops != want[1] {
			t.Errorf("%s: hops = %d..%d varhops=%v", src, rel.MinHops, rel.MaxHops, rel.VarHops)
		}
	}
}

func TestParseMultiplePatterns(t *testing.T) {
	stmt := mustParse(t, "MATCH (a:X), (b:Y)-[:R]->(c) RETURN a, b, c")
	m := stmt.Clauses[0].(*MatchClause)
	if len(m.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(m.Patterns))
	}
}

func TestParseCreateSetDelete(t *testing.T) {
	stmt := mustParse(t, `
		MATCH (a:Person {name: 'x'})
		CREATE (a)-[:OWNS]->(c:Car {brand: 'Fiat'})
		SET a.updated = true, a:Driver, c += {color: 'red'}
		DETACH DELETE a`)
	if len(stmt.Clauses) != 4 {
		t.Fatalf("clauses = %d", len(stmt.Clauses))
	}
	set := stmt.Clauses[2].(*SetClause)
	if len(set.Items) != 3 {
		t.Fatalf("set items = %d", len(set.Items))
	}
	if set.Items[0].Kind != SetProp || set.Items[1].Kind != SetLabels || set.Items[2].Kind != SetMergeProps {
		t.Error("set item kinds")
	}
	del := stmt.Clauses[3].(*DeleteClause)
	if !del.Detach || len(del.Exprs) != 1 {
		t.Error("delete shape")
	}
}

func TestParseMergeWithActions(t *testing.T) {
	stmt := mustParse(t, `MERGE (n:Counter {id: 1}) ON CREATE SET n.v = 0 ON MATCH SET n.v = n.v + 1`)
	m := stmt.Clauses[0].(*MergeClause)
	if len(m.OnCreateSet) != 1 || len(m.OnMatchSet) != 1 {
		t.Error("merge actions")
	}
}

func TestParseUnwindWithOrder(t *testing.T) {
	stmt := mustParse(t, "UNWIND [3,1,2] AS x WITH x ORDER BY x DESC SKIP 1 LIMIT 1 WHERE x > 0 RETURN x")
	u := stmt.Clauses[0].(*UnwindClause)
	if u.Var != "x" {
		t.Error("unwind var")
	}
	w := stmt.Clauses[1].(*WithClause)
	if len(w.OrderBy) != 1 || !w.OrderBy[0].Desc || w.Skip == nil || w.Limit == nil || w.Where == nil {
		t.Error("with modifiers")
	}
}

func TestParseReturnStar(t *testing.T) {
	stmt := mustParse(t, "MATCH (n) RETURN *")
	r := stmt.Clauses[1].(*ReturnClause)
	if !r.Star {
		t.Error("return star")
	}
	stmt = mustParse(t, "MATCH (n) WITH *, n.x AS x RETURN x")
	w := stmt.Clauses[1].(*WithClause)
	if !w.Star || len(w.Items) != 1 {
		t.Error("with star plus items")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := e.(*BinaryOp)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top op should be +: %T", e)
	}
	mul, ok := add.R.(*BinaryOp)
	if !ok || mul.Op != OpMul {
		t.Error("* should bind tighter than +")
	}
}

func TestParsePowerRightAssoc(t *testing.T) {
	e, err := ParseExpr("2 ^ 3 ^ 2")
	if err != nil {
		t.Fatal(err)
	}
	pow := e.(*BinaryOp)
	if _, ok := pow.R.(*BinaryOp); !ok {
		t.Error("^ should be right-associative")
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	e, err := ParseExpr("a OR b AND c")
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*BinaryOp)
	if or.Op != OpOr {
		t.Fatal("top should be OR")
	}
	and, ok := or.R.(*BinaryOp)
	if !ok || and.Op != OpAnd {
		t.Error("AND should bind tighter than OR")
	}
}

func TestParseChainedComparison(t *testing.T) {
	e, err := ParseExpr("1 < 2 < 3")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(*BinaryOp)
	if !ok || and.Op != OpAnd {
		t.Fatalf("chained comparison should desugar to AND, got %T", e)
	}
}

func TestParsePredicates(t *testing.T) {
	for _, src := range []string{
		"x IS NULL", "x IS NOT NULL", "x IN [1,2]", "s STARTS WITH 'a'",
		"s ENDS WITH 'b'", "s CONTAINS 'c'",
	} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CaseExpr)
	if c.Test != nil || len(c.Whens) != 2 || c.Else == nil {
		t.Error("searched case shape")
	}
	e, err = ParseExpr("CASE x WHEN 1 THEN 'one' END")
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*CaseExpr)
	if c.Test == nil || len(c.Whens) != 1 || c.Else != nil {
		t.Error("simple case shape")
	}
}

func TestParseListComprehension(t *testing.T) {
	e, err := ParseExpr("[x IN [1,2,3] WHERE x > 1 | x * 10]")
	if err != nil {
		t.Fatal(err)
	}
	lc := e.(*ListComp)
	if lc.Var != "x" || lc.Where == nil || lc.Proj == nil {
		t.Error("list comp shape")
	}
	e, err = ParseExpr("[x IN xs]")
	if err != nil {
		t.Fatal(err)
	}
	lc = e.(*ListComp)
	if lc.Where != nil || lc.Proj != nil {
		t.Error("bare list comp")
	}
}

func TestParsePatternExpression(t *testing.T) {
	e, err := ParseExpr("(n)-[:HasEffect]->(:Effect {level: 'critical'})")
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(*PatternExpr)
	if !ok {
		t.Fatalf("expected PatternExpr, got %T", e)
	}
	if len(pe.Pattern.Rels) != 1 {
		t.Error("pattern shape")
	}
	// A bare parenthesized variable is NOT a pattern.
	e, err = ParseExpr("(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Variable); !ok {
		t.Errorf("(x) should be a variable, got %T", e)
	}
	// Labeled single node is an existence test.
	e, err = ParseExpr("(n:Person)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*PatternExpr); !ok {
		t.Errorf("(n:Person) should be a pattern, got %T", e)
	}
}

func TestParseExists(t *testing.T) {
	e, err := ParseExpr("EXISTS((n)-[:R]->())")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*PatternExpr); !ok {
		t.Errorf("EXISTS(pattern) should be PatternExpr, got %T", e)
	}
	e, err = ParseExpr("exists(n.prop)")
	if err != nil {
		t.Fatal(err)
	}
	u, ok := e.(*UnaryOp)
	if !ok || u.Op != OpIsNotNull {
		t.Errorf("exists(prop) should be IS NOT NULL, got %T", e)
	}
}

func TestParseCountStar(t *testing.T) {
	e, err := ParseExpr("count(*)")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*FuncCall)
	if !c.Star || c.Name != "count" {
		t.Error("count(*)")
	}
	e, err = ParseExpr("count(DISTINCT x)")
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*FuncCall)
	if !c.Distinct || len(c.Args) != 1 {
		t.Error("count(DISTINCT x)")
	}
}

func TestParseMapAndListLiterals(t *testing.T) {
	e, err := ParseExpr("{a: 1, 'b c': [1, 2], d: {e: null}}")
	if err != nil {
		t.Fatal(err)
	}
	m := e.(*MapLit)
	if len(m.Keys) != 3 || m.Keys[1] != "b c" {
		t.Error("map literal")
	}
}

func TestParseIndexAndSlice(t *testing.T) {
	for _, src := range []string{"xs[0]", "xs[-1]", "xs[1..3]", "xs[..2]", "xs[2..]", "m['key']"} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParseNegativeLiteralFold(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Literal); !ok {
		t.Errorf("-5 should fold to a literal, got %T", e)
	}
}

func TestParseKeywordAsPropertyKey(t *testing.T) {
	// "end", "in", "set" are keywords but must work as property names.
	for _, src := range []string{"n.end", "n.in", "n.set", "n.match"} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
	if _, err := Parse("MATCH (n:SET) RETURN n"); err != nil {
		t.Errorf("keyword as label: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"RETURN",
		"MATCH (n RETURN n",
		"MATCH (n) RETURN n MATCH (m) RETURN m",
		"MATCH (a)-[:R->(b) RETURN a",
		"FOO (n)",
		"MATCH (n) RETURN n; MATCH (m) RETURN m",
		"CASE END",
		"MATCH (n) SET n",
		"MATCH (n) REMOVE n",
		"UNWIND [1] x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseReturnNotLast(t *testing.T) {
	if _, err := Parse("RETURN 1 MATCH (n) RETURN n"); err == nil {
		t.Error("RETURN before other clauses should fail")
	}
}

func TestParsePathVariable(t *testing.T) {
	stmt := mustParse(t, "MATCH p = (a)-[:R]->(b) RETURN p")
	m := stmt.Clauses[0].(*MatchClause)
	if m.Patterns[0].Var != "p" {
		t.Error("path variable")
	}
}
