package cypher

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func TestMultiLabelPattern(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, _ = tx.CreateNode([]string{"A"}, nil)
		_, _ = tx.CreateNode([]string{"A", "B"}, nil)
		_, _ = tx.CreateNode([]string{"B"}, nil)
		return nil
	})
	res := q(t, s, "MATCH (n:A:B) RETURN count(n)", nil)
	if res.Rows[0][0].String() != "1" {
		t.Errorf("multi-label match: %v", res.Rows)
	}
}

func TestAnonymousInteriorNodes(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"Start"}, nil)
		m1, _ := tx.CreateNode([]string{"Mid"}, nil)
		m2, _ := tx.CreateNode([]string{"Mid"}, nil)
		z, _ := tx.CreateNode([]string{"End"}, nil)
		_, _ = tx.CreateRel(a, m1, "R", nil)
		_, _ = tx.CreateRel(m1, z, "R", nil)
		_, _ = tx.CreateRel(a, m2, "R", nil)
		// m2 is a dead end
		return nil
	})
	// The anchor will be Start or End; both interior hops are anonymous.
	res := q(t, s, "MATCH (:Start)-[:R]->()-[:R]->(e:End) RETURN count(e)", nil)
	if res.Rows[0][0].String() != "1" {
		t.Errorf("anonymous chain: %v", res.Rows)
	}
}

func TestAnchorFromMiddleOfChain(t *testing.T) {
	// Index the middle node so the planner anchors there, forcing both the
	// rightward and the leftward expansion paths.
	s := graph.NewStore()
	if err := s.CreateIndex("Mid", "k"); err != nil {
		t.Fatal(err)
	}
	_ = s.Update(func(tx *graph.Tx) error {
		l, _ := tx.CreateNode([]string{"L"}, map[string]value.Value{"name": value.Str("left")})
		m, _ := tx.CreateNode([]string{"Mid"}, map[string]value.Value{"k": value.Int(7)})
		r, _ := tx.CreateNode([]string{"R"}, map[string]value.Value{"name": value.Str("right")})
		_, _ = tx.CreateRel(l, m, "TO", nil)
		_, _ = tx.CreateRel(m, r, "TO", nil)
		// Decoys.
		for i := 0; i < 5; i++ {
			_, _ = tx.CreateNode([]string{"L"}, nil)
			_, _ = tx.CreateNode([]string{"R"}, nil)
		}
		return nil
	})
	res := q(t, s, "MATCH (a:L)-[:TO]->(m:Mid {k: 7})-[:TO]->(b:R) RETURN a.name, b.name", nil)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != `"left"` || res.Rows[0][1].String() != `"right"` {
		t.Errorf("middle anchor: %v", res.Rows)
	}
}

func TestPatternPropsReferencingOuterVars(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, _ = tx.CreateNode([]string{"Conf"}, map[string]value.Value{"want": value.Int(2)})
		for i := 1; i <= 3; i++ {
			_, _ = tx.CreateNode([]string{"Item"}, map[string]value.Value{"v": value.Int(int64(i))})
		}
		return nil
	})
	res := q(t, s, "MATCH (c:Conf) MATCH (i:Item {v: c.want}) RETURN i.v", nil)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "2" {
		t.Errorf("outer-var pattern prop: %v", res.Rows)
	}
}

func TestVarLengthRelVarBindsList(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"N"}, map[string]value.Value{"i": value.Int(0)})
		prev := a
		for i := 1; i <= 3; i++ {
			n, _ := tx.CreateNode([]string{"N"}, map[string]value.Value{"i": value.Int(int64(i))})
			_, _ = tx.CreateRel(prev, n, "NEXT", nil)
			prev = n
		}
		return nil
	})
	res := q(t, s, `MATCH (a:N {i: 0})-[rs:NEXT*2..3]->(b) RETURN size(rs) AS hops, b.i ORDER BY hops`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].String() != "2" || res.Rows[0][1].String() != "2" {
		t.Errorf("two hops: %v", res.Rows[0])
	}
	if res.Rows[1][0].String() != "3" || res.Rows[1][1].String() != "3" {
		t.Errorf("three hops: %v", res.Rows[1])
	}
}

func TestVarLengthUnbounded(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		prev, _ := tx.CreateNode([]string{"Chain", "Head"}, nil)
		for i := 0; i < 6; i++ {
			n, _ := tx.CreateNode([]string{"Chain"}, nil)
			_, _ = tx.CreateRel(prev, n, "NEXT", nil)
			prev = n
		}
		return nil
	})
	res := q(t, s, "MATCH (h:Head)-[:NEXT*]->(x) RETURN count(x)", nil)
	if res.Rows[0][0].String() != "6" {
		t.Errorf("unbounded reach: %v", res.Rows)
	}
}

func TestVarLengthCycleTerminates(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"C"}, map[string]value.Value{"n": value.Str("a")})
		b, _ := tx.CreateNode([]string{"C"}, map[string]value.Value{"n": value.Str("b")})
		_, _ = tx.CreateRel(a, b, "E", nil)
		_, _ = tx.CreateRel(b, a, "E", nil)
		return nil
	})
	// Relationship uniqueness bounds the walk despite the cycle.
	res := q(t, s, "MATCH (x:C {n:'a'})-[:E*]->(y) RETURN count(*)", nil)
	if res.Rows[0][0].String() != "2" {
		t.Errorf("cycle walk: %v", res.Rows)
	}
}

func TestPathVariable(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"P"}, map[string]value.Value{"n": value.Str("a")})
		b, _ := tx.CreateNode([]string{"P"}, map[string]value.Value{"n": value.Str("b")})
		_, _ = tx.CreateRel(a, b, "E", nil)
		return nil
	})
	res := q(t, s, "MATCH p = (:P {n:'a'})-[:E]->(:P) RETURN size(p)", nil)
	// Path list = [node, rel, node].
	if res.Rows[0][0].String() != "3" {
		t.Errorf("path variable: %v", res.Rows)
	}
}

func TestBoundRelVariableJoin(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"X"}, nil)
		b, _ := tx.CreateNode([]string{"Y"}, nil)
		_, _ = tx.CreateRel(a, b, "E", map[string]value.Value{"w": value.Int(1)})
		_, _ = tx.CreateRel(a, b, "E", map[string]value.Value{"w": value.Int(2)})
		return nil
	})
	// Re-matching the same bound rel variable must constrain, not expand.
	res := q(t, s, `MATCH (a:X)-[r:E {w: 1}]->(b:Y) MATCH (a)-[r]->(b) RETURN count(*)`, nil)
	if res.Rows[0][0].String() != "1" {
		t.Errorf("bound rel join: %v", res.Rows)
	}
}

func TestMatchAfterWithNarrowedScope(t *testing.T) {
	s := testGraph(t)
	// After WITH, only projected variables survive; a new MATCH can reuse
	// them as anchors.
	res := q(t, s, `MATCH (p:Person {name:'Alice'})
	               WITH p
	               MATCH (p)-[:WORKS_AT]->(c)
	               RETURN c.name`, nil)
	if joined(res, 0) != `"ACME"` {
		t.Errorf("got %v", res.Rows)
	}
	// A variable dropped by WITH is fresh afterwards: MATCH (q) scans all
	// nodes rather than reusing the old binding.
	res = q(t, s, `MATCH (p:Person {name:'Alice'}) WITH p MATCH (q) RETURN count(q)`, nil)
	if res.Rows[0][0].String() != "5" {
		t.Errorf("fresh variable after WITH: %v", res.Rows)
	}
}

func TestSelfLoopMatching(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		n, _ := tx.CreateNode([]string{"S"}, nil)
		_, _ = tx.CreateRel(n, n, "LOOP", nil)
		return nil
	})
	res := q(t, s, "MATCH (a:S)-[:LOOP]->(a) RETURN count(*)", nil)
	if res.Rows[0][0].String() != "1" {
		t.Errorf("self loop directed: %v", res.Rows)
	}
	res = q(t, s, "MATCH (a:S)-[:LOOP]->(b:S) RETURN a = b", nil)
	if res.Rows[0][0].String() != "true" {
		t.Errorf("loop endpoints: %v", res.Rows)
	}
}

func TestParallelEdges(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"PA"}, nil)
		b, _ := tx.CreateNode([]string{"PB"}, nil)
		for i := 0; i < 3; i++ {
			_, _ = tx.CreateRel(a, b, "E", nil)
		}
		return nil
	})
	res := q(t, s, "MATCH (:PA)-[r:E]->(:PB) RETURN count(r)", nil)
	if res.Rows[0][0].String() != "3" {
		t.Errorf("parallel edges: %v", res.Rows)
	}
}

func TestOptionalMatchChaining(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person {name: 'Dave'})
	               OPTIONAL MATCH (p)-[:KNOWS]->(f)
	               OPTIONAL MATCH (f)-[:WORKS_AT]->(c)
	               RETURN p.name, f, c`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Errorf("nulls should chain through optional matches: %v", res.Rows[0])
	}
}
