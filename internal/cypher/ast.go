package cypher

import (
	"sync/atomic"

	"repro/internal/value"
)

// Statement is a parsed query: a sequence of clauses executed as a pipeline
// over binding rows.
type Statement struct {
	Clauses []Clause
	Query   string // original text, for error reporting
	// Unions holds additional UNION branches; each contributes rows to the
	// same result. Column names must agree across branches.
	Unions []UnionBranch
	// Explain marks an EXPLAIN-prefixed query: Execute describes the
	// physical plan instead of running it.
	Explain bool

	// plan caches the compiled Plan; see Statement.Prepared.
	plan atomic.Pointer[Plan]
}

// UnionBranch is one UNION [ALL] arm of a statement.
type UnionBranch struct {
	All     bool
	Clauses []Clause
	pos     int // byte offset of the UNION keyword
}

// Clause is one step of the query pipeline.
type Clause interface{ clause() }

// MatchClause is MATCH or OPTIONAL MATCH with an optional WHERE.
type MatchClause struct {
	Optional bool
	Patterns []*PatternPart
	Where    Expr
}

// UnwindClause is UNWIND <expr> AS <var>.
type UnwindClause struct {
	List Expr
	Var  string
}

// WithClause projects, deduplicates, sorts and paginates intermediate rows.
type WithClause struct {
	Distinct bool
	Star     bool // WITH *
	Items    []*ReturnItem
	OrderBy  []*SortItem
	Skip     Expr
	Limit    Expr
	Where    Expr
}

// ReturnClause is the terminal projection.
type ReturnClause struct {
	Distinct bool
	Star     bool // RETURN *
	Items    []*ReturnItem
	OrderBy  []*SortItem
	Skip     Expr
	Limit    Expr
	pos      int // byte offset of the RETURN keyword
}

// CreateClause creates the nodes and relationships of its patterns.
type CreateClause struct {
	Patterns []*PatternPart
}

// MergeClause matches its pattern and creates it if absent, with optional
// ON CREATE SET / ON MATCH SET actions.
type MergeClause struct {
	Pattern     *PatternPart
	OnCreateSet []*SetItem
	OnMatchSet  []*SetItem
}

// DeleteClause deletes the entities its expressions evaluate to.
type DeleteClause struct {
	Detach bool
	Exprs  []Expr
}

// ForeachClause is FOREACH (v IN list | updateClause...): the nested write
// clauses run once per list element with v bound.
type ForeachClause struct {
	Var  string
	List Expr
	Body []Clause
}

// SetClause applies property and label assignments.
type SetClause struct {
	Items []*SetItem
}

// RemoveClause removes properties and labels.
type RemoveClause struct {
	Items []*RemoveItem
}

func (*MatchClause) clause()   {}
func (*UnwindClause) clause()  {}
func (*WithClause) clause()    {}
func (*ReturnClause) clause()  {}
func (*CreateClause) clause()  {}
func (*ForeachClause) clause() {}
func (*MergeClause) clause()   {}
func (*DeleteClause) clause()  {}
func (*SetClause) clause()     {}
func (*RemoveClause) clause()  {}

// ReturnItem is one projection item, expr [AS alias].
type ReturnItem struct {
	Expr  Expr
	Alias string // empty means use the expression text
	Text  string // source text of the expression
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr Expr
	Desc bool
}

// SetItemKind distinguishes the forms of a SET item.
type SetItemKind int

// SET item forms.
const (
	SetProp       SetItemKind = iota // v.key = expr
	SetLabels                        // v:Label1:Label2
	SetAllProps                      // v = {map} (replace)
	SetMergeProps                    // v += {map}
)

// SetItem is one assignment in a SET clause (or in MERGE ON CREATE/MATCH).
type SetItem struct {
	Kind   SetItemKind
	Target string
	Key    string
	Labels []string
	Value  Expr
}

// RemoveItem is one removal in a REMOVE clause: v.key or v:Label.
type RemoveItem struct {
	Target string
	Key    string   // non-empty for property removal
	Labels []string // non-empty for label removal
}

// Direction of a relationship pattern in query text.
type PatternDirection int

// Pattern directions: (a)-[]->(b), (a)<-[]-(b), (a)-[]-(b).
const (
	DirRight PatternDirection = iota
	DirLeft
	DirBoth
)

// PatternPart is one comma-separated path pattern: a chain of node patterns
// joined by relationship patterns. len(Nodes) == len(Rels)+1.
type PatternPart struct {
	Var   string // optional path variable (parsed, bound to a list of entities)
	Nodes []*NodePattern
	Rels  []*RelPattern
}

// NodePattern is (var:Label1:Label2 {props}).
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]Expr
	pos    int
}

// RelPattern is -[var:T1|T2 *min..max {props}]-> (or <-, or undirected).
type RelPattern struct {
	Var     string
	Types   []string
	Props   map[string]Expr
	Dir     PatternDirection
	VarHops bool // * present
	MinHops int  // default 1
	MaxHops int  // -1 = unbounded
	pos     int
}

// ---- Expressions ----

// Expr is an expression AST node.
type Expr interface{ exprNode() }

// Literal is a constant value.
type Literal struct{ Val value.Value }

// Variable references a bound name.
type Variable struct {
	Name string
	pos  int
}

// Param references a query parameter $name.
type Param struct{ Name string }

// PropAccess is expr.key.
type PropAccess struct {
	X   Expr
	Key string
}

// IndexExpr is expr[idx] (list index or map key).
type IndexExpr struct {
	X   Expr
	Idx Expr
}

// SliceExpr is expr[from..to]; From or To may be nil.
type SliceExpr struct {
	X    Expr
	From Expr
	To   Expr
}

// UnaryOp codes.
type UnaryOpKind int

// Unary operators.
const (
	OpNeg UnaryOpKind = iota
	OpNot
	OpIsNull
	OpIsNotNull
)

// UnaryOp is a unary operation.
type UnaryOp struct {
	Op UnaryOpKind
	X  Expr
}

// BinaryOp codes.
type BinaryOpKind int

// Binary operators.
const (
	OpAdd BinaryOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpEq
	OpNeq
	OpLt
	OpGt
	OpLte
	OpGte
	OpAnd
	OpOr
	OpXor
	OpIn
	OpStartsWith
	OpEndsWith
	OpContains
	OpRegex
)

// BinaryOp is a binary operation.
type BinaryOp struct {
	Op   BinaryOpKind
	L, R Expr
	pos  int
}

// FuncCall is fn(args), fn(DISTINCT arg), or count(*).
type FuncCall struct {
	Name     string // lower-cased
	Distinct bool
	Star     bool
	Args     []Expr
	pos      int
}

// CaseExpr covers both simple (CASE test WHEN v THEN r) and searched
// (CASE WHEN cond THEN r) forms.
type CaseExpr struct {
	Test  Expr // nil for searched form
	Whens []CaseWhen
	Else  Expr // nil means NULL
}

// CaseWhen is one WHEN ... THEN ... arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// ListLit is [e1, e2, ...].
type ListLit struct{ Elems []Expr }

// MapLit is {k1: e1, ...}.
type MapLit struct {
	Keys []string
	Vals []Expr
}

// ListComp is [v IN list WHERE cond | proj].
type ListComp struct {
	Var   string
	List  Expr
	Where Expr // may be nil
	Proj  Expr // may be nil (identity)
}

// ListPredicateKind distinguishes the quantified list predicates.
type ListPredicateKind int

// Quantifiers: all(...), any(...), none(...), single(...).
const (
	QuantAll ListPredicateKind = iota
	QuantAny
	QuantNone
	QuantSingle
)

// ListPredicate is all/any/none/single(v IN list WHERE cond).
type ListPredicate struct {
	Kind  ListPredicateKind
	Var   string
	List  Expr
	Where Expr
}

// ReduceExpr is reduce(acc = init, v IN list | expr).
type ReduceExpr struct {
	Acc  string
	Init Expr
	Var  string
	List Expr
	Body Expr
}

// PatternExpr is a path pattern used as a predicate inside an expression
// (e.g. WHERE (n)-[:HasEffect]->(:Effect)); it evaluates to TRUE if at
// least one match exists. The EXISTS(pattern) function parses to this too.
type PatternExpr struct {
	Pattern *PatternPart
}

func (*Literal) exprNode()       {}
func (*Variable) exprNode()      {}
func (*Param) exprNode()         {}
func (*PropAccess) exprNode()    {}
func (*IndexExpr) exprNode()     {}
func (*SliceExpr) exprNode()     {}
func (*UnaryOp) exprNode()       {}
func (*BinaryOp) exprNode()      {}
func (*FuncCall) exprNode()      {}
func (*CaseExpr) exprNode()      {}
func (*ListLit) exprNode()       {}
func (*MapLit) exprNode()        {}
func (*ListComp) exprNode()      {}
func (*ListPredicate) exprNode() {}
func (*ReduceExpr) exprNode()    {}
func (*PatternExpr) exprNode()   {}
