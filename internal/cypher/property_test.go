package cypher

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// randomGraph builds a reproducible random graph with n nodes.
func randomGraph(t *testing.T, seed int64, n int) *graph.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := graph.NewStore()
	err := s.Update(func(tx *graph.Tx) error {
		ids := make([]graph.NodeID, 0, n)
		for i := 0; i < n; i++ {
			label := fmt.Sprintf("L%d", rng.Intn(3))
			id, err := tx.CreateNode([]string{label}, map[string]value.Value{
				"v": value.Int(int64(rng.Intn(10))),
			})
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		for i := 0; i < n*2; i++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			typ := fmt.Sprintf("T%d", rng.Intn(2))
			if _, err := tx.CreateRel(a, b, typ, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOrderByProducesSortedOutput checks that ORDER BY output is actually
// sorted under value.Compare for random graphs.
func TestOrderByProducesSortedOutput(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomGraph(t, seed, 40)
		res := q(t, s, "MATCH (n) RETURN n.v AS v ORDER BY v", nil)
		for i := 1; i < len(res.Rows); i++ {
			if value.Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
				t.Fatalf("seed %d: rows out of order at %d: %s > %s",
					seed, i, res.Rows[i-1][0], res.Rows[i][0])
			}
		}
		// DESC is the exact reverse ordering.
		desc := q(t, s, "MATCH (n) RETURN n.v AS v ORDER BY v DESC", nil)
		for i := 1; i < len(desc.Rows); i++ {
			if value.Compare(desc.Rows[i-1][0], desc.Rows[i][0]) < 0 {
				t.Fatalf("seed %d: DESC rows out of order at %d", seed, i)
			}
		}
	}
}

// TestDistinctYieldsUniqueRows checks DISTINCT row uniqueness.
func TestDistinctYieldsUniqueRows(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomGraph(t, seed, 40)
		res := q(t, s, "MATCH (n)-->(m) RETURN DISTINCT n.v AS a, m.v AS b", nil)
		seen := map[string]bool{}
		for _, r := range res.Rows {
			key := r[0].HashKey() + "|" + r[1].HashKey()
			if seen[key] {
				t.Fatalf("seed %d: duplicate row %v", seed, r)
			}
			seen[key] = true
		}
	}
}

// TestUndirectedMatchesSymmetric checks that undirected patterns match the
// same pairs regardless of which side is the anchor.
func TestUndirectedMatchesSymmetric(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomGraph(t, seed, 30)
		a := q(t, s, "MATCH (x:L0)-[r]-(y:L1) RETURN count(r)", nil)
		b := q(t, s, "MATCH (y:L1)-[r]-(x:L0) RETURN count(r)", nil)
		av, _ := a.Value()
		bv, _ := b.Value()
		if !value.SameValue(av, bv) {
			t.Fatalf("seed %d: undirected asymmetric: %s vs %s", seed, av, bv)
		}
	}
}

// TestDirectedSplitsUndirected checks |out| + |in| == |both| for matches
// between distinct label sets (no self-loops between L0 and L1 possible).
func TestDirectedSplitsUndirected(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomGraph(t, seed, 30)
		out := intOf(t, s, "MATCH (x:L0)-[r]->(y:L1) RETURN count(r)")
		in := intOf(t, s, "MATCH (x:L0)<-[r]-(y:L1) RETURN count(r)")
		both := intOf(t, s, "MATCH (x:L0)-[r]-(y:L1) RETURN count(r)")
		if out+in != both {
			t.Fatalf("seed %d: %d out + %d in != %d both", seed, out, in, both)
		}
	}
}

// TestCountMatchesRowCount checks count(*) equals the materialized row
// count for arbitrary patterns.
func TestCountMatchesRowCount(t *testing.T) {
	patterns := []string{
		"MATCH (n) ",
		"MATCH (n:L0) ",
		"MATCH (n)-->(m) ",
		"MATCH (n)-[:T0]->(m:L1) ",
		"MATCH (n)-[*1..2]->(m) ",
	}
	for seed := int64(1); seed <= 3; seed++ {
		s := randomGraph(t, seed, 25)
		for _, p := range patterns {
			counted := intOf(t, s, p+"RETURN count(*)")
			res := q(t, s, p+"RETURN 1 AS one", nil)
			if counted != int64(len(res.Rows)) {
				t.Fatalf("seed %d pattern %q: count %d != rows %d",
					seed, p, counted, len(res.Rows))
			}
		}
	}
}

// TestAggregationConservation: the sum of group counts equals the total.
func TestAggregationConservation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomGraph(t, seed, 50)
		total := intOf(t, s, "MATCH (n) RETURN count(*)")
		res := q(t, s, "MATCH (n) RETURN n.v AS v, count(*) AS c", nil)
		var sum int64
		for _, r := range res.Rows {
			c, _ := r[1].AsInt()
			sum += c
		}
		if sum != total {
			t.Fatalf("seed %d: group counts sum %d != total %d", seed, sum, total)
		}
	}
}

// TestSkipLimitPartition: SKIP k + LIMIT k slices partition the ordered
// output without gaps or duplication.
func TestSkipLimitPartition(t *testing.T) {
	s := randomGraph(t, 9, 37)
	full := q(t, s, "MATCH (n) RETURN id(n) AS i ORDER BY i", nil)
	var paged []string
	for skip := 0; ; skip += 10 {
		page := q(t, s, fmt.Sprintf("MATCH (n) RETURN id(n) AS i ORDER BY i SKIP %d LIMIT 10", skip), nil)
		if len(page.Rows) == 0 {
			break
		}
		for _, r := range page.Rows {
			paged = append(paged, r[0].String())
		}
	}
	if len(paged) != len(full.Rows) {
		t.Fatalf("pagination lost rows: %d != %d", len(paged), len(full.Rows))
	}
	for i, r := range full.Rows {
		if paged[i] != r[0].String() {
			t.Fatalf("pagination reordered row %d", i)
		}
	}
}

func intOf(t *testing.T, s *graph.Store, query string) int64 {
	t.Helper()
	res := q(t, s, query, nil)
	v, ok := res.Value()
	if !ok {
		t.Fatalf("%s: not a single value", query)
	}
	n, _ := v.AsInt()
	return n
}

// TestDeleteCreateConsistency: after deleting everything matched, the
// pattern matches nothing.
func TestDeleteCreateConsistency(t *testing.T) {
	s := randomGraph(t, 3, 30)
	q(t, s, "MATCH (n:L1) DETACH DELETE n", nil)
	if intOf(t, s, "MATCH (n:L1) RETURN count(*)") != 0 {
		t.Fatal("deleted label still matches")
	}
	// Remaining relationships never touch a deleted node.
	res := q(t, s, "MATCH (a)-[r]->(b) RETURN count(r)", nil)
	v, _ := res.Value()
	relCount, _ := v.AsInt()
	var stats graph.Stats = s.Stats()
	if relCount != int64(stats.Relationships) {
		t.Fatalf("dangling relationships: matched %d, store has %d", relCount, stats.Relationships)
	}
}
