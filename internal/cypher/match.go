package cypher

import (
	"errors"
	"sort"

	"repro/internal/graph"
	"repro/internal/value"
)

// errStop is used internally to abort a match enumeration early (EXISTS).
var errStop = errors.New("stop iteration")

// nodeCheckFn tests one node pattern's labels and property constraints
// against a concrete node.
type nodeCheckFn func(ctx *evalCtx, r row, id graph.NodeID) (bool, error)

// relCheckFn tests one relationship pattern's types and property constraints.
type relCheckFn func(ctx *evalCtx, r row, h graph.RelHandle) (bool, error)

// propsFn materializes a pattern element's property map (CREATE/MERGE).
type propsFn func(ctx *evalCtx, r row) (map[string]value.Value, error)

// compiledPattern is the fully compiled form of one pattern part: variable
// slots resolved against an environment, label/property predicates lowered
// to closures, and a statically costed access plan for the anchor.
type compiledPattern struct {
	part      *PatternPart
	nodeSlots []int  // slot per node pattern; -1 for anonymous
	relSlots  []int  // slot per rel pattern; -1 for anonymous
	nodePre   []bool // slot existed before this pattern (a reused variable)
	relPre    []bool
	pathSlot  int // -1 when the part has no path variable

	nodeChecks []nodeCheckFn
	relChecks  []relCheckFn
	nodeProps  []propsFn
	relProps   []propsFn
	access     accessPlan
}

// patternSlots assigns slots in en (mutating it) for every named variable of
// the pattern part. Pre-existing names are reused, which is how joins on
// shared variables happen; whether a slot pre-existed is recorded so the
// matcher can tell a fresh variable (free to bind) from a variable that an
// earlier clause bound to NULL (which matches nothing, per Cypher).
func patternSlots(en *env, part *PatternPart) *compiledPattern {
	cp := &compiledPattern{part: part, pathSlot: -1}
	introduced := make(map[string]bool)
	for _, n := range part.Nodes {
		if n.Var == "" {
			cp.nodeSlots = append(cp.nodeSlots, -1)
			cp.nodePre = append(cp.nodePre, false)
		} else {
			_, existed := en.lookup(n.Var)
			cp.nodeSlots = append(cp.nodeSlots, en.add(n.Var))
			cp.nodePre = append(cp.nodePre, existed && !introduced[n.Var])
			introduced[n.Var] = true
		}
	}
	for _, r := range part.Rels {
		if r.Var == "" {
			cp.relSlots = append(cp.relSlots, -1)
			cp.relPre = append(cp.relPre, false)
		} else {
			_, existed := en.lookup(r.Var)
			cp.relSlots = append(cp.relSlots, en.add(r.Var))
			cp.relPre = append(cp.relPre, existed && !introduced[r.Var])
			introduced[r.Var] = true
		}
	}
	if part.Var != "" {
		cp.pathSlot = en.add(part.Var)
	}
	return cp
}

// compilePatternBody lowers the pattern's predicates and property templates
// to closures against en and plans the anchor access path. en must already
// contain every slot the pattern (and its siblings in the same MATCH) binds,
// so property expressions may reference any of them.
func compilePatternBody(cc *compileCtx, en *env, cp *compiledPattern) error {
	cp.nodeChecks = make([]nodeCheckFn, len(cp.part.Nodes))
	cp.nodeProps = make([]propsFn, len(cp.part.Nodes))
	for i, np := range cp.part.Nodes {
		check, err := compileNodeCheck(cc, en, np)
		if err != nil {
			return err
		}
		cp.nodeChecks[i] = check
		props, err := compileProps(cc, en, np.Props)
		if err != nil {
			return err
		}
		cp.nodeProps[i] = props
	}
	cp.relChecks = make([]relCheckFn, len(cp.part.Rels))
	cp.relProps = make([]propsFn, len(cp.part.Rels))
	for i, rp := range cp.part.Rels {
		check, err := compileRelCheck(cc, en, rp)
		if err != nil {
			return err
		}
		cp.relChecks[i] = check
		props, err := compileProps(cc, en, rp.Props)
		if err != nil {
			return err
		}
		cp.relProps[i] = props
	}
	return planAccess(cc, en, cp)
}

// compileFullPattern combines slot assignment and body compilation for
// single-pattern contexts (MERGE, pattern predicates).
func compileFullPattern(cc *compileCtx, en *env, part *PatternPart) (*compiledPattern, error) {
	cp := patternSlots(en, part)
	if err := compilePatternBody(cc, en, cp); err != nil {
		return nil, err
	}
	return cp, nil
}

func compileNodeCheck(cc *compileCtx, en *env, np *NodePattern) (nodeCheckFn, error) {
	type propCheck struct {
		key string
		fn  exprFn
	}
	checks := make([]propCheck, 0, len(np.Props))
	for _, key := range sortedPropKeys(np.Props) {
		fn, err := compileExpr(cc, en, np.Props[key])
		if err != nil {
			return nil, err
		}
		checks = append(checks, propCheck{key: key, fn: fn})
	}
	labels := np.Labels
	return func(ctx *evalCtx, r row, id graph.NodeID) (bool, error) {
		for _, l := range labels {
			if !ctx.tx.NodeHasLabel(id, l) {
				return false, nil
			}
		}
		for _, pc := range checks {
			want, err := pc.fn(ctx, r)
			if err != nil {
				return false, err
			}
			got, ok := ctx.tx.NodeProp(id, pc.key)
			if !ok {
				return false, nil
			}
			eq, known := value.Equal(got, want)
			if !known || !eq {
				return false, nil
			}
		}
		return true, nil
	}, nil
}

func compileRelCheck(cc *compileCtx, en *env, rp *RelPattern) (relCheckFn, error) {
	type propCheck struct {
		key string
		fn  exprFn
	}
	checks := make([]propCheck, 0, len(rp.Props))
	for _, key := range sortedPropKeys(rp.Props) {
		fn, err := compileExpr(cc, en, rp.Props[key])
		if err != nil {
			return nil, err
		}
		checks = append(checks, propCheck{key: key, fn: fn})
	}
	types := rp.Types
	return func(ctx *evalCtx, r row, h graph.RelHandle) (bool, error) {
		if len(types) > 0 {
			found := false
			for _, t := range types {
				if t == h.Type {
					found = true
					break
				}
			}
			if !found {
				return false, nil
			}
		}
		for _, pc := range checks {
			want, err := pc.fn(ctx, r)
			if err != nil {
				return false, err
			}
			got, ok := ctx.tx.RelProp(h.ID, pc.key)
			if !ok {
				return false, nil
			}
			eq, known := value.Equal(got, want)
			if !known || !eq {
				return false, nil
			}
		}
		return true, nil
	}, nil
}

// compileProps compiles a property template to a map-building closure.
func compileProps(cc *compileCtx, en *env, props map[string]Expr) (propsFn, error) {
	if len(props) == 0 {
		return func(*evalCtx, row) (map[string]value.Value, error) { return nil, nil }, nil
	}
	keys := sortedPropKeys(props)
	fns := make([]exprFn, len(keys))
	for i, k := range keys {
		fn, err := compileExpr(cc, en, props[k])
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return func(ctx *evalCtx, r row) (map[string]value.Value, error) {
		out := make(map[string]value.Value, len(keys))
		for i, k := range keys {
			v, err := fns[i](ctx, r)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	}, nil
}

func sortedPropKeys(props map[string]Expr) []string {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// planAccess chooses the anchor node position and its candidate source from
// the statistics snapshot: index-backed equality beats the smallest label
// scan beats a full scan. The decision is made once at plan time; the
// snapshot records the statistics it read so Execute can cheaply detect
// drift and trigger recompilation.
func planAccess(cc *compileCtx, en *env, cp *compiledPattern) error {
	best := accessPlan{anchor: 0}
	bestCost := int(^uint(0) >> 1)
	for i, np := range cp.part.Nodes {
		plan, cost, err := accessFor(cc, en, np, i)
		if err != nil {
			return err
		}
		if cost < bestCost {
			best, bestCost = plan, cost
		}
	}
	cp.access = best
	return nil
}

func accessFor(cc *compileCtx, en *env, np *NodePattern, pos int) (accessPlan, int, error) {
	for _, key := range sortedPropKeys(np.Props) {
		for _, l := range np.Labels {
			if !cc.snap.hasIndex(cc.tx, l, key) {
				continue
			}
			valFn, err := compileExpr(cc, en, np.Props[key])
			if err != nil {
				return accessPlan{}, 0, err
			}
			return accessPlan{anchor: pos, kind: accessIndex, label: l, key: key, valFn: valFn, est: 1}, 1, nil
		}
	}
	if len(np.Labels) > 0 {
		bestLabel, bestCount := np.Labels[0], cc.snap.labelCount(cc.tx, np.Labels[0])
		for _, l := range np.Labels[1:] {
			if c := cc.snap.labelCount(cc.tx, l); c < bestCount {
				bestLabel, bestCount = l, c
			}
		}
		return accessPlan{anchor: pos, kind: accessLabel, label: bestLabel, est: bestCount}, 2 + bestCount, nil
	}
	total := cc.snap.totalNodes(cc.tx)
	return accessPlan{anchor: pos, kind: accessScan, est: total}, 2 + total*2, nil
}

// nullBound reports whether some pattern variable was bound to NULL by an
// earlier clause, in which case the pattern matches nothing.
func (cp *compiledPattern) nullBound(r row) bool {
	for i, slot := range cp.nodeSlots {
		if slot >= 0 && slot < len(r) && cp.nodePre[i] && r[slot].IsNull() {
			return true
		}
	}
	for i, slot := range cp.relSlots {
		if slot >= 0 && slot < len(r) && cp.relPre[i] && r[slot].IsNull() {
			return true
		}
	}
	return false
}

// slots returns every variable slot the pattern binds (nodes, rels, path).
func (cp *compiledPattern) slots() []int {
	var out []int
	for _, s := range cp.nodeSlots {
		if s >= 0 {
			out = append(out, s)
		}
	}
	for _, s := range cp.relSlots {
		if s >= 0 {
			out = append(out, s)
		}
	}
	if cp.pathSlot >= 0 {
		out = append(out, cp.pathSlot)
	}
	return out
}

// matcher drives the backtracking search for one pattern part on one row.
type matcher struct {
	ctx      *evalCtx
	cp       *compiledPattern
	usedRels map[graph.RelID]bool
	emit     func(row) error
}

// matchPart enumerates all bindings of cp against base, invoking emit for
// each complete match. usedRels carries relationship-uniqueness state across
// pattern parts of the same MATCH clause; pass nil for a fresh scope.
func matchPart(ctx *evalCtx, base row, cp *compiledPattern,
	usedRels map[graph.RelID]bool, emit func(row) error) error {
	if usedRels == nil {
		usedRels = make(map[graph.RelID]bool)
	}
	if cp.nullBound(base) {
		return nil // a NULL-bound variable in a pattern matches nothing
	}
	m := &matcher{ctx: ctx, cp: cp, usedRels: usedRels, emit: emit}

	anchor := m.chooseAnchor(base)
	candidates, err := m.anchorCandidates(base, anchor)
	if err != nil {
		return err
	}
	for _, id := range candidates {
		ok, err := cp.nodeChecks[anchor](ctx, base, id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		r := append(row(nil), base...)
		if slot := cp.nodeSlots[anchor]; slot >= 0 {
			if bound := r[slot]; !bound.IsNull() {
				bid, isEnt := bound.EntityID()
				if !isEnt || graph.NodeID(bid) != id {
					continue
				}
			}
			r[slot] = value.Node(int64(id))
		}
		if err := m.expandRight(r, anchor, id, anchor, id); err != nil {
			return err
		}
	}
	return nil
}

// boundNode returns the concrete node bound at pattern position i in r, if any.
func (m *matcher) boundNode(r row, i int) (graph.NodeID, bool) {
	slot := m.cp.nodeSlots[i]
	if slot < 0 || slot >= len(r) {
		return 0, false
	}
	v := r[slot]
	if v.Kind() != value.KindNode {
		return 0, false
	}
	id, _ := v.EntityID()
	return graph.NodeID(id), true
}

// chooseAnchor picks the starting node position: a bound variable if any
// (a single concrete node beats any planned scan), otherwise the position
// the access plan selected at compile time.
func (m *matcher) chooseAnchor(base row) int {
	for i := range m.cp.part.Nodes {
		if _, ok := m.boundNode(base, i); ok {
			return i
		}
	}
	return m.cp.access.anchor
}

// anchorCandidates enumerates candidate nodes for the anchor position using
// the compiled access plan (unless the anchor is already bound).
func (m *matcher) anchorCandidates(base row, anchor int) ([]graph.NodeID, error) {
	if id, ok := m.boundNode(base, anchor); ok {
		if !m.ctx.tx.NodeExists(id) {
			return nil, nil
		}
		return []graph.NodeID{id}, nil
	}
	ap := &m.cp.access
	if anchor != ap.anchor {
		// A different position was forced (bound variable elsewhere released
		// mid-chain is impossible, but be safe): scan by that node's label.
		np := m.cp.part.Nodes[anchor]
		if len(np.Labels) > 0 {
			return m.ctx.tx.NodesByLabel(np.Labels[0]), nil
		}
		return m.ctx.tx.AllNodes(), nil
	}
	switch ap.kind {
	case accessIndex:
		want, err := ap.valFn(m.ctx, base)
		if err != nil {
			return nil, err
		}
		ids, _ := m.ctx.tx.NodesByProp(ap.label, ap.key, want)
		return ids, nil
	case accessLabel:
		return m.ctx.tx.NodesByLabel(ap.label), nil
	default:
		return m.ctx.tx.AllNodes(), nil
	}
}

// expandRight advances from pattern position i (node bound to id) towards
// the end of the chain, then hands over to expandLeft from the anchor. The
// anchor's concrete node is threaded through because anonymous patterns
// leave no slot to recover it from.
func (m *matcher) expandRight(r row, i int, id graph.NodeID, anchor int, anchorID graph.NodeID) error {
	if i == len(m.cp.part.Nodes)-1 {
		return m.expandLeft(r, anchor, anchorID)
	}
	return m.expandRel(r, i, id, i+1, false, func(nr row, nextID graph.NodeID) error {
		return m.expandRight(nr, i+1, nextID, anchor, anchorID)
	})
}

// expandLeft advances from pattern position i (node bound to id) towards
// the start of the chain.
func (m *matcher) expandLeft(r row, i int, id graph.NodeID) error {
	if i == 0 {
		return m.finish(r)
	}
	return m.expandRel(r, i-1, id, i-1, true, func(nr row, nextID graph.NodeID) error {
		return m.expandLeft(nr, i-1, nextID)
	})
}

// expandRel enumerates relationships of pattern position ri from node fromID
// towards pattern node position toIdx. reverse is true when walking
// right-to-left (the pattern's source node is on the other side).
func (m *matcher) expandRel(r row, ri int, fromID graph.NodeID,
	toIdx int, reverse bool, cont func(row, graph.NodeID) error) error {
	rp := m.cp.part.Rels[ri]
	relSlot := m.cp.relSlots[ri]
	check := m.cp.relChecks[ri]
	if rp.VarHops {
		return m.expandVarHops(r, rp, relSlot, check, fromID, toIdx, reverse, cont)
	}
	dir := traverseDir(rp.Dir, reverse)
	for _, h := range m.ctx.tx.RelsOf(fromID, dir, rp.Types) {
		if m.usedRels[h.ID] {
			continue
		}
		ok, err := check(m.ctx, r, h)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		otherID := h.Other(fromID)
		nr, ok, err := m.bindNode(r, toIdx, otherID)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if relSlot >= 0 {
			if bound := nr[relSlot]; !bound.IsNull() {
				bid, isEnt := bound.EntityID()
				if !isEnt || graph.RelID(bid) != h.ID {
					continue
				}
			}
			nr = append(row(nil), nr...)
			nr[relSlot] = value.Relationship(int64(h.ID))
		}
		m.usedRels[h.ID] = true
		err = cont(nr, otherID)
		delete(m.usedRels, h.ID)
		if err != nil {
			return err
		}
	}
	return nil
}

func traverseDir(d PatternDirection, reverse bool) graph.Direction {
	switch d {
	case DirRight:
		if reverse {
			return graph.Incoming
		}
		return graph.Outgoing
	case DirLeft:
		if reverse {
			return graph.Outgoing
		}
		return graph.Incoming
	default:
		return graph.Both
	}
}

// bindNode checks pattern constraints of node position idx against id and
// returns the row with the binding applied (a fresh copy when modified).
func (m *matcher) bindNode(r row, idx int, id graph.NodeID) (row, bool, error) {
	if bound, ok := m.boundNode(r, idx); ok {
		if bound != id {
			return r, false, nil
		}
		return r, true, nil
	}
	ok, err := m.cp.nodeChecks[idx](m.ctx, r, id)
	if err != nil || !ok {
		return r, ok, err
	}
	if slot := m.cp.nodeSlots[idx]; slot >= 0 {
		nr := append(row(nil), r...)
		nr[slot] = value.Node(int64(id))
		return nr, true, nil
	}
	return r, true, nil
}

// expandVarHops performs depth-first variable-length expansion.
func (m *matcher) expandVarHops(r row, rp *RelPattern, relSlot int, check relCheckFn,
	fromID graph.NodeID, toIdx int, reverse bool, cont func(row, graph.NodeID) error) error {
	dir := traverseDir(rp.Dir, reverse)
	maxHops := rp.MaxHops
	var pathRels []value.Value

	var tryTarget func(r row, at graph.NodeID) error
	tryTarget = func(r row, at graph.NodeID) error {
		nr, ok, err := m.bindNode(r, toIdx, at)
		if err != nil || !ok {
			return err
		}
		if relSlot >= 0 {
			nr = append(row(nil), nr...)
			nr[relSlot] = value.ListOf(append([]value.Value(nil), pathRels...))
		}
		return cont(nr, at)
	}

	var dfs func(r row, at graph.NodeID, depth int) error
	dfs = func(r row, at graph.NodeID, depth int) error {
		if depth >= rp.MinHops {
			if err := tryTarget(r, at); err != nil {
				return err
			}
		}
		if maxHops >= 0 && depth >= maxHops {
			return nil
		}
		for _, h := range m.ctx.tx.RelsOf(at, dir, rp.Types) {
			if m.usedRels[h.ID] {
				continue
			}
			ok, err := check(m.ctx, r, h)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			m.usedRels[h.ID] = true
			pathRels = append(pathRels, value.Relationship(int64(h.ID)))
			err = dfs(r, h.Other(at), depth+1)
			pathRels = pathRels[:len(pathRels)-1]
			delete(m.usedRels, h.ID)
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(r, fromID, 0)
}

// finish completes one match: bind the path variable if requested, then emit.
func (m *matcher) finish(r row) error {
	if m.cp.pathSlot >= 0 {
		var elems []value.Value
		for i := range m.cp.part.Nodes {
			if id, ok := m.boundNode(r, i); ok {
				elems = append(elems, value.Node(int64(id)))
			} else {
				elems = append(elems, value.Null)
			}
			if i < len(m.cp.part.Rels) {
				if slot := m.cp.relSlots[i]; slot >= 0 && slot < len(r) {
					elems = append(elems, r[slot])
				} else {
					elems = append(elems, value.Null)
				}
			}
		}
		nr := append(row(nil), r...)
		nr[m.cp.pathSlot] = value.ListOf(elems)
		return m.emit(nr)
	}
	return m.emit(r)
}
