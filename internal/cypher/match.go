package cypher

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/value"
)

// errStop is used internally to abort a match enumeration early (EXISTS).
var errStop = errors.New("stop iteration")

// compiledPattern pre-resolves the variable slots of one pattern part
// against an environment.
type compiledPattern struct {
	part      *PatternPart
	nodeSlots []int  // slot per node pattern; -1 for anonymous
	relSlots  []int  // slot per rel pattern; -1 for anonymous
	nodePre   []bool // slot existed before this pattern (a reused variable)
	relPre    []bool
	pathSlot  int // -1 when the part has no path variable
}

// compilePattern assigns slots in en (mutating it) for every named variable
// of the pattern part. Pre-existing names are reused, which is how joins on
// shared variables happen; whether a slot pre-existed is recorded so the
// matcher can tell a fresh variable (free to bind) from a variable that an
// earlier clause bound to NULL (which matches nothing, per Cypher).
func compilePattern(en *env, part *PatternPart) *compiledPattern {
	cp := &compiledPattern{part: part, pathSlot: -1}
	introduced := make(map[string]bool)
	for _, n := range part.Nodes {
		if n.Var == "" {
			cp.nodeSlots = append(cp.nodeSlots, -1)
			cp.nodePre = append(cp.nodePre, false)
		} else {
			_, existed := en.lookup(n.Var)
			cp.nodeSlots = append(cp.nodeSlots, en.add(n.Var))
			cp.nodePre = append(cp.nodePre, existed && !introduced[n.Var])
			introduced[n.Var] = true
		}
	}
	for _, r := range part.Rels {
		if r.Var == "" {
			cp.relSlots = append(cp.relSlots, -1)
			cp.relPre = append(cp.relPre, false)
		} else {
			_, existed := en.lookup(r.Var)
			cp.relSlots = append(cp.relSlots, en.add(r.Var))
			cp.relPre = append(cp.relPre, existed && !introduced[r.Var])
			introduced[r.Var] = true
		}
	}
	if part.Var != "" {
		cp.pathSlot = en.add(part.Var)
	}
	return cp
}

// nullBound reports whether some pattern variable was bound to NULL by an
// earlier clause, in which case the pattern matches nothing.
func (cp *compiledPattern) nullBound(r row) bool {
	for i, slot := range cp.nodeSlots {
		if slot >= 0 && slot < len(r) && cp.nodePre[i] && r[slot].IsNull() {
			return true
		}
	}
	for i, slot := range cp.relSlots {
		if slot >= 0 && slot < len(r) && cp.relPre[i] && r[slot].IsNull() {
			return true
		}
	}
	return false
}

// nodeMatches checks labels and property constraints of a node pattern
// against a concrete node.
func nodeMatches(ctx *evalCtx, en *env, r row, np *NodePattern, id graph.NodeID) (bool, error) {
	for _, l := range np.Labels {
		if !ctx.tx.NodeHasLabel(id, l) {
			return false, nil
		}
	}
	for key, expr := range np.Props {
		want, err := evalExpr(ctx, en, r, expr)
		if err != nil {
			return false, err
		}
		got, ok := ctx.tx.NodeProp(id, key)
		if !ok {
			return false, nil
		}
		eq, known := value.Equal(got, want)
		if !known || !eq {
			return false, nil
		}
	}
	return true, nil
}

func relMatches(ctx *evalCtx, en *env, r row, rp *RelPattern, h graph.RelHandle) (bool, error) {
	if len(rp.Types) > 0 {
		found := false
		for _, t := range rp.Types {
			if t == h.Type {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	for key, expr := range rp.Props {
		want, err := evalExpr(ctx, en, r, expr)
		if err != nil {
			return false, err
		}
		got, ok := ctx.tx.RelProp(h.ID, key)
		if !ok {
			return false, nil
		}
		eq, known := value.Equal(got, want)
		if !known || !eq {
			return false, nil
		}
	}
	return true, nil
}

// matcher drives the backtracking search for one pattern part on one row.
type matcher struct {
	ctx      *evalCtx
	en       *env
	cp       *compiledPattern
	usedRels map[graph.RelID]bool
	emit     func(row) error
}

// matchPart enumerates all bindings of cp against base, invoking emit for
// each complete match. usedRels carries relationship-uniqueness state across
// pattern parts of the same MATCH clause; pass nil for a fresh scope.
func matchPart(ctx *evalCtx, en *env, base row, cp *compiledPattern,
	usedRels map[graph.RelID]bool, emit func(row) error) error {
	if usedRels == nil {
		usedRels = make(map[graph.RelID]bool)
	}
	if cp.nullBound(base) {
		return nil // a NULL-bound variable in a pattern matches nothing
	}
	m := &matcher{ctx: ctx, en: en, cp: cp, usedRels: usedRels, emit: emit}

	anchor := m.chooseAnchor(base)
	candidates, err := m.anchorCandidates(base, anchor)
	if err != nil {
		return err
	}
	for _, id := range candidates {
		ok, err := nodeMatches(ctx, en, base, cp.part.Nodes[anchor], id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		r := append(row(nil), base...)
		if slot := cp.nodeSlots[anchor]; slot >= 0 {
			if bound := r[slot]; !bound.IsNull() {
				bid, isEnt := bound.EntityID()
				if !isEnt || graph.NodeID(bid) != id {
					continue
				}
			}
			r[slot] = value.Node(int64(id))
		}
		if err := m.expandRight(r, anchor, id, anchor, id); err != nil {
			return err
		}
	}
	return nil
}

// nodeAt returns the concrete node bound at pattern position i in r, if any.
func (m *matcher) boundNode(r row, i int) (graph.NodeID, bool) {
	slot := m.cp.nodeSlots[i]
	if slot < 0 || slot >= len(r) {
		return 0, false
	}
	v := r[slot]
	if v.Kind() != value.KindNode {
		return 0, false
	}
	id, _ := v.EntityID()
	return graph.NodeID(id), true
}

// chooseAnchor picks the starting node position: a bound variable if any,
// otherwise the most selective unbound pattern.
func (m *matcher) chooseAnchor(base row) int {
	for i := range m.cp.part.Nodes {
		if _, ok := m.boundNode(base, i); ok {
			return i
		}
	}
	best, bestCost := 0, int(^uint(0)>>1)
	for i, np := range m.cp.part.Nodes {
		cost := m.estimateCost(base, np)
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

func (m *matcher) estimateCost(base row, np *NodePattern) int {
	// Index-backed equality is cheapest, then label scans, then full scans.
	for key := range np.Props {
		for _, l := range np.Labels {
			if m.ctx.tx.HasIndex(l, key) {
				return 1
			}
		}
	}
	if len(np.Labels) > 0 {
		best := int(^uint(0) >> 1)
		for _, l := range np.Labels {
			if c := m.ctx.tx.CountByLabel(l); c < best {
				best = c
			}
		}
		return 2 + best
	}
	return 2 + m.ctx.tx.NodeCount()*2
}

// anchorCandidates enumerates candidate nodes for the anchor position.
func (m *matcher) anchorCandidates(base row, anchor int) ([]graph.NodeID, error) {
	if id, ok := m.boundNode(base, anchor); ok {
		if !m.ctx.tx.NodeExists(id) {
			return nil, nil
		}
		return []graph.NodeID{id}, nil
	}
	np := m.cp.part.Nodes[anchor]
	// Index-backed equality lookup.
	for key, expr := range np.Props {
		for _, l := range np.Labels {
			if !m.ctx.tx.HasIndex(l, key) {
				continue
			}
			want, err := evalExpr(m.ctx, m.en, base, expr)
			if err != nil {
				return nil, err
			}
			ids, _ := m.ctx.tx.NodesByProp(l, key, want)
			return ids, nil
		}
	}
	if len(np.Labels) > 0 {
		best := np.Labels[0]
		for _, l := range np.Labels[1:] {
			if m.ctx.tx.CountByLabel(l) < m.ctx.tx.CountByLabel(best) {
				best = l
			}
		}
		return m.ctx.tx.NodesByLabel(best), nil
	}
	return m.ctx.tx.AllNodes(), nil
}

// expandRight advances from pattern position i (node bound to id) towards
// the end of the chain, then hands over to expandLeft from the anchor. The
// anchor's concrete node is threaded through because anonymous patterns
// leave no slot to recover it from.
func (m *matcher) expandRight(r row, i int, id graph.NodeID, anchor int, anchorID graph.NodeID) error {
	if i == len(m.cp.part.Nodes)-1 {
		return m.expandLeft(r, anchor, anchorID)
	}
	rp := m.cp.part.Rels[i]
	return m.expandRel(r, rp, m.cp.relSlots[i], id, i+1, false, func(nr row, nextID graph.NodeID) error {
		return m.expandRight(nr, i+1, nextID, anchor, anchorID)
	})
}

// expandLeft advances from pattern position i (node bound to id) towards
// the start of the chain.
func (m *matcher) expandLeft(r row, i int, id graph.NodeID) error {
	if i == 0 {
		return m.finish(r)
	}
	rp := m.cp.part.Rels[i-1]
	return m.expandRel(r, rp, m.cp.relSlots[i-1], id, i-1, true, func(nr row, nextID graph.NodeID) error {
		return m.expandLeft(nr, i-1, nextID)
	})
}

// expandRel enumerates relationships of pattern rp from node fromID towards
// pattern node position toIdx. reverse is true when walking right-to-left
// (the pattern's source node is on the other side).
func (m *matcher) expandRel(r row, rp *RelPattern, relSlot int, fromID graph.NodeID,
	toIdx int, reverse bool, cont func(row, graph.NodeID) error) error {
	if rp.VarHops {
		return m.expandVarHops(r, rp, relSlot, fromID, toIdx, reverse, cont)
	}
	dir := traverseDir(rp.Dir, reverse)
	for _, h := range m.ctx.tx.RelsOf(fromID, dir, rp.Types) {
		if m.usedRels[h.ID] {
			continue
		}
		ok, err := relMatches(m.ctx, m.en, r, rp, h)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		otherID := h.Other(fromID)
		nr, ok, err := m.bindNode(r, toIdx, otherID)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if relSlot >= 0 {
			if bound := nr[relSlot]; !bound.IsNull() {
				bid, isEnt := bound.EntityID()
				if !isEnt || graph.RelID(bid) != h.ID {
					continue
				}
			}
			nr = append(row(nil), nr...)
			nr[relSlot] = value.Relationship(int64(h.ID))
		}
		m.usedRels[h.ID] = true
		err = cont(nr, otherID)
		delete(m.usedRels, h.ID)
		if err != nil {
			return err
		}
	}
	return nil
}

func traverseDir(d PatternDirection, reverse bool) graph.Direction {
	switch d {
	case DirRight:
		if reverse {
			return graph.Incoming
		}
		return graph.Outgoing
	case DirLeft:
		if reverse {
			return graph.Outgoing
		}
		return graph.Incoming
	default:
		return graph.Both
	}
}

// bindNode checks pattern constraints of node position idx against id and
// returns the row with the binding applied (a fresh copy when modified).
func (m *matcher) bindNode(r row, idx int, id graph.NodeID) (row, bool, error) {
	np := m.cp.part.Nodes[idx]
	if bound, ok := m.boundNode(r, idx); ok {
		if bound != id {
			return r, false, nil
		}
		return r, true, nil
	}
	ok, err := nodeMatches(m.ctx, m.en, r, np, id)
	if err != nil || !ok {
		return r, ok, err
	}
	if slot := m.cp.nodeSlots[idx]; slot >= 0 {
		nr := append(row(nil), r...)
		nr[slot] = value.Node(int64(id))
		return nr, true, nil
	}
	return r, true, nil
}

// expandVarHops performs depth-first variable-length expansion.
func (m *matcher) expandVarHops(r row, rp *RelPattern, relSlot int, fromID graph.NodeID,
	toIdx int, reverse bool, cont func(row, graph.NodeID) error) error {
	dir := traverseDir(rp.Dir, reverse)
	maxHops := rp.MaxHops
	var pathRels []value.Value

	var tryTarget func(r row, at graph.NodeID) error
	tryTarget = func(r row, at graph.NodeID) error {
		nr, ok, err := m.bindNode(r, toIdx, at)
		if err != nil || !ok {
			return err
		}
		if relSlot >= 0 {
			nr = append(row(nil), nr...)
			nr[relSlot] = value.ListOf(append([]value.Value(nil), pathRels...))
		}
		return cont(nr, at)
	}

	var dfs func(r row, at graph.NodeID, depth int) error
	dfs = func(r row, at graph.NodeID, depth int) error {
		if depth >= rp.MinHops {
			if err := tryTarget(r, at); err != nil {
				return err
			}
		}
		if maxHops >= 0 && depth >= maxHops {
			return nil
		}
		for _, h := range m.ctx.tx.RelsOf(at, dir, rp.Types) {
			if m.usedRels[h.ID] {
				continue
			}
			ok, err := relMatches(m.ctx, m.en, r, rp, h)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			m.usedRels[h.ID] = true
			pathRels = append(pathRels, value.Relationship(int64(h.ID)))
			err = dfs(r, h.Other(at), depth+1)
			pathRels = pathRels[:len(pathRels)-1]
			delete(m.usedRels, h.ID)
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(r, fromID, 0)
}

// finish completes one match: bind the path variable if requested, then emit.
func (m *matcher) finish(r row) error {
	if m.cp.pathSlot >= 0 {
		var elems []value.Value
		for i := range m.cp.part.Nodes {
			if id, ok := m.boundNode(r, i); ok {
				elems = append(elems, value.Node(int64(id)))
			} else {
				elems = append(elems, value.Null)
			}
			if i < len(m.cp.part.Rels) {
				if slot := m.cp.relSlots[i]; slot >= 0 && slot < len(r) {
					elems = append(elems, r[slot])
				} else {
					elems = append(elems, value.Null)
				}
			}
		}
		nr := append(row(nil), r...)
		nr[m.cp.pathSlot] = value.ListOf(elems)
		return m.emit(nr)
	}
	return m.emit(r)
}

// patternExists evaluates a pattern expression as an existential predicate:
// variables already bound in the row constrain the pattern; fresh variables
// are matched locally and discarded.
func patternExists(ctx *evalCtx, en *env, r row, part *PatternPart) (bool, error) {
	local := en.clone()
	cp := compilePattern(local, part)
	base := make(row, len(local.names))
	copy(base, r)
	found := false
	err := matchPart(ctx, local, base, cp, nil, func(row) error {
		found = true
		return errStop
	})
	if err != nil && !errors.Is(err, errStop) {
		return false, err
	}
	return found, nil
}
