// Package cypher implements a query language over the property-graph store:
// a practical subset of Cypher/GQL sufficient for the reactive knowledge
// rules of the paper (guards, alerts, summary maintenance) and for general
// graph querying.
//
// Supported clauses: MATCH / OPTIONAL MATCH, WHERE, WITH, RETURN, UNWIND,
// CREATE, MERGE, DELETE / DETACH DELETE, SET, REMOVE, ORDER BY, SKIP, LIMIT,
// DISTINCT. Expressions cover boolean logic with ternary (three-valued)
// semantics, comparisons, arithmetic, string predicates, IN, IS NULL, list
// and map literals, indexing, parameters ($name), function calls with
// aggregation (count, sum, avg, min, max, collect), CASE, list
// comprehensions, and pattern predicates usable inside WHERE.
package cypher

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam // $name

	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokLBrace   // {
	tokRBrace   // }
	tokComma    // ,
	tokColon    // :
	tokSemi     // ;
	tokDot      // .
	tokDotDot   // ..
	tokPlus     // +
	tokPlusEq   // +=
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
	tokPercent  // %
	tokCaret    // ^
	tokEq       // =
	tokNeq      // <>
	tokLt       // <
	tokGt       // >
	tokLte      // <=
	tokGte      // >=
	tokArrowR   // ->
	tokArrowL   // <-
	tokPipe     // |
	tokRegexEq  // =~
)

type token struct {
	kind tokenKind
	text string // raw text, original case (keywords match case-insensitively)
	pos  int    // byte offset in the input
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokParam:
		return "$" + t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords recognized case-insensitively. Identifiers matching a keyword are
// still usable as property keys after a dot and as labels after a colon.
var keywords = map[string]bool{
	"MATCH": true, "OPTIONAL": true, "WHERE": true, "WITH": true,
	"RETURN": true, "CREATE": true, "MERGE": true, "DELETE": true,
	"DETACH": true, "SET": true, "REMOVE": true, "UNWIND": true,
	"AS": true, "ORDER": true, "BY": true, "ASC": true, "ASCENDING": true,
	"DESC": true, "DESCENDING": true, "SKIP": true, "LIMIT": true,
	"DISTINCT": true, "AND": true, "OR": true, "XOR": true, "NOT": true,
	"IN": true, "STARTS": true, "ENDS": true, "CONTAINS": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "FOREACH": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "EXISTS": true, "ON": true,
	"UNION": true,
}

// Error reports a parse or runtime error with its position in the query.
// Pos is the exact byte offset of the offending token in Query; Error()
// renders it alongside the derived line and column so editors and tests can
// anchor on either form.
type Error struct {
	Query string
	Pos   int
	Msg   string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Query); i++ {
		if e.Query[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("cypher: %s (line %d, column %d, offset %d)", e.Msg, line, col, e.Pos)
}

func errAt(query string, pos int, format string, args ...any) error {
	return &Error{Query: query, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
