package cypher

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// UpdateStats counts the write effects of a statement execution.
type UpdateStats struct {
	NodesCreated  int
	NodesDeleted  int
	RelsCreated   int
	RelsDeleted   int
	PropsSet      int
	LabelsAdded   int
	LabelsRemoved int
}

// Add accumulates other into s.
func (s *UpdateStats) Add(other UpdateStats) {
	s.NodesCreated += other.NodesCreated
	s.NodesDeleted += other.NodesDeleted
	s.RelsCreated += other.RelsCreated
	s.RelsDeleted += other.RelsDeleted
	s.PropsSet += other.PropsSet
	s.LabelsAdded += other.LabelsAdded
	s.LabelsRemoved += other.LabelsRemoved
}

// Result is the outcome of executing a statement.
type Result struct {
	Columns []string
	Rows    [][]value.Value
	Stats   UpdateStats
}

// Value returns the single value of a single-row single-column result.
func (r *Result) Value() (value.Value, bool) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return value.Null, false
	}
	return r.Rows[0][0], true
}

// Options configures statement execution.
type Options struct {
	// Params supplies $name parameters.
	Params map[string]value.Value
	// Bindings pre-binds variables visible to the first clause; reactive
	// rules use this for the NEW and OLD transition variables.
	Bindings map[string]value.Value
	// Now supplies the clock for datetime()/timestamp(); nil means
	// time.Now. Deterministic tests and the summary machinery set it.
	Now func() time.Time
}

// executor carries the per-execution runtime state of a compiled plan.
type executor struct {
	ctx    *evalCtx
	stats  UpdateStats
	result *Result
}

// writer returns the execution view as a write-capable transaction. Write
// clauses compile against any ReadView but can only run in a single-store
// *graph.Tx; a cross-shard MultiView takes no shard locks and is read-only
// by design.
func (ex *executor) writer() (*graph.Tx, error) {
	tx, ok := ex.ctx.tx.(*graph.Tx)
	if !ok {
		return nil, fmt.Errorf("cypher: write clauses require a single-store transaction (cross-shard views are read-only)")
	}
	return tx, nil
}

// Execute runs a parsed statement in the given read view through its
// compiled plan (compiling on first use).
func Execute(tx graph.ReadView, stmt *Statement, opts *Options) (*Result, error) {
	return stmt.Prepared().Execute(tx, opts)
}

// Run parses and executes a query.
func Run(tx graph.ReadView, query string, opts *Options) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Execute(tx, stmt, opts)
}

// EvalPredicate evaluates a standalone parsed expression (a rule guard)
// against the supplied bindings, returning its truth value under ternary
// semantics (NULL/unknown evaluates to false).
func EvalPredicate(tx graph.ReadView, expr Expr, opts *Options) (bool, error) {
	v, err := EvalExpr(tx, expr, opts)
	if err != nil {
		return false, err
	}
	b, known := v.Truthy()
	return known && b, nil
}

// EvalExpr evaluates a standalone parsed expression with the supplied
// bindings visible as variables and returns its value. The expression is
// compiled transiently; hot paths should hold a CompiledExpr instead.
func EvalExpr(tx graph.ReadView, expr Expr, opts *Options) (value.Value, error) {
	if opts == nil {
		opts = &Options{}
	}
	en := newEnv()
	var r row
	names := make([]string, 0, len(opts.Bindings))
	for name := range opts.Bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		en.add(name)
		r = append(r, opts.Bindings[name])
	}
	cc := &compileCtx{tx: tx, snap: newStatsSnapshot()}
	fn, err := compileExpr(cc, en, expr)
	if err != nil {
		return value.Null, err
	}
	ctx := &evalCtx{tx: tx, params: opts.Params, now: opts.Now}
	return fn(ctx, r)
}

// ---- compiled-op runtime helpers ----

// createPattern creates the pattern's nodes and relationships for one row,
// reusing already bound variables, and returns the row with fresh bindings.
func (ex *executor) createPattern(r row, cp *compiledPattern) (row, error) {
	w, err := ex.writer()
	if err != nil {
		return r, err
	}
	ids := make([]graph.NodeID, len(cp.part.Nodes))
	for i, np := range cp.part.Nodes {
		slot := cp.nodeSlots[i]
		if slot >= 0 && !r[slot].IsNull() {
			// Reuse an already bound node; labels/props in the pattern are
			// not allowed on bound variables in CREATE.
			if len(np.Labels) > 0 || len(np.Props) > 0 {
				return r, errAt(ex.ctx.query, np.pos,
					"variable `%s` already bound; cannot redeclare with labels or properties", np.Var)
			}
			id, ok := r[slot].EntityID()
			if !ok || r[slot].Kind() != value.KindNode {
				return r, errAt(ex.ctx.query, np.pos, "variable `%s` is not a node", np.Var)
			}
			ids[i] = graph.NodeID(id)
			continue
		}
		props, err := cp.nodeProps[i](ex.ctx, r)
		if err != nil {
			return r, err
		}
		id, err := w.CreateNode(np.Labels, props)
		if err != nil {
			return r, err
		}
		ex.stats.NodesCreated++
		ex.stats.LabelsAdded += len(np.Labels)
		ex.stats.PropsSet += len(props)
		ids[i] = id
		if slot >= 0 {
			r[slot] = value.Node(int64(id))
		}
	}
	for i, rp := range cp.part.Rels {
		if rp.VarHops {
			return r, errAt(ex.ctx.query, rp.pos, "variable-length relationships cannot be created")
		}
		if len(rp.Types) != 1 {
			return r, errAt(ex.ctx.query, rp.pos, "CREATE requires exactly one relationship type")
		}
		var start, end graph.NodeID
		switch rp.Dir {
		case DirRight:
			start, end = ids[i], ids[i+1]
		case DirLeft:
			start, end = ids[i+1], ids[i]
		default:
			return r, errAt(ex.ctx.query, rp.pos, "CREATE requires a directed relationship")
		}
		props, err := cp.relProps[i](ex.ctx, r)
		if err != nil {
			return r, err
		}
		id, err := w.CreateRel(start, end, rp.Types[0], props)
		if err != nil {
			return r, err
		}
		ex.stats.RelsCreated++
		ex.stats.PropsSet += len(props)
		if slot := cp.relSlots[i]; slot >= 0 {
			r[slot] = value.Relationship(int64(id))
		}
	}
	return r, nil
}

// deleteEntity deletes the node or relationship v refers to, tolerating
// entities already deleted by an earlier row.
func (ex *executor) deleteEntity(v value.Value, detach bool) error {
	if v.Kind() == value.KindNull {
		return nil
	}
	w, err := ex.writer()
	if err != nil {
		return err
	}
	switch v.Kind() {
	case value.KindNode:
		id, _ := v.EntityID()
		nid := graph.NodeID(id)
		if !w.NodeExists(nid) {
			return nil // deleted by an earlier row
		}
		before := w.Degree(nid, graph.Both)
		if err := w.DeleteNode(nid, detach); err != nil {
			return err
		}
		ex.stats.NodesDeleted++
		ex.stats.RelsDeleted += before
		return nil
	case value.KindRelationship:
		id, _ := v.EntityID()
		rid := graph.RelID(id)
		if _, _, _, ok := w.RelEndpoints(rid); !ok {
			return nil
		}
		if err := w.DeleteRel(rid); err != nil {
			return err
		}
		ex.stats.RelsDeleted++
		return nil
	default:
		return fmt.Errorf("cypher: DELETE of %s", v.Kind())
	}
}

// applySetOps applies compiled SET items to one row.
func (ex *executor) applySetOps(r row, ops []setOp) error {
	for i := range ops {
		if err := ex.applySetOp(r, &ops[i]); err != nil {
			return err
		}
	}
	return nil
}

func (ex *executor) applySetOp(r row, op *setOp) error {
	target := r[op.slot]
	if target.IsNull() {
		return nil // SET on null is a no-op (OPTIONAL MATCH semantics)
	}
	w, err := ex.writer()
	if err != nil {
		return err
	}
	id, isEnt := target.EntityID()
	switch op.kind {
	case SetLabels:
		if target.Kind() != value.KindNode {
			return fmt.Errorf("cypher: cannot set labels on %s", target.Kind())
		}
		for _, l := range op.labels {
			if err := w.SetLabel(graph.NodeID(id), l); err != nil {
				return err
			}
			ex.stats.LabelsAdded++
		}
		return nil
	case SetProp:
		v, err := op.valFn(ex.ctx, r)
		if err != nil {
			return err
		}
		switch target.Kind() {
		case value.KindNode:
			if err := w.SetNodeProp(graph.NodeID(id), op.key, v); err != nil {
				return err
			}
		case value.KindRelationship:
			if err := w.SetRelProp(graph.RelID(id), op.key, v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cypher: cannot set property on %s", target.Kind())
		}
		ex.stats.PropsSet++
		return nil
	case SetAllProps, SetMergeProps:
		v, err := op.valFn(ex.ctx, r)
		if err != nil {
			return err
		}
		m, ok := v.AsMap()
		if !ok {
			if props, err2 := propertiesOf(ex.ctx, v); err2 == nil {
				m, ok = props.AsMap()
			}
			if !ok {
				return fmt.Errorf("cypher: SET %s = requires a map", op.target)
			}
		}
		if !isEnt {
			return fmt.Errorf("cypher: cannot set properties on %s", target.Kind())
		}
		if op.kind == SetAllProps {
			// Clear existing properties first.
			switch target.Kind() {
			case value.KindNode:
				for _, k := range w.NodePropKeys(graph.NodeID(id)) {
					if err := w.RemoveNodeProp(graph.NodeID(id), k); err != nil {
						return err
					}
					ex.stats.PropsSet++
				}
			case value.KindRelationship:
				for _, k := range w.RelPropKeys(graph.RelID(id)) {
					if err := w.RemoveRelProp(graph.RelID(id), k); err != nil {
						return err
					}
					ex.stats.PropsSet++
				}
			}
		}
		for k, pv := range m {
			switch target.Kind() {
			case value.KindNode:
				if err := w.SetNodeProp(graph.NodeID(id), k, pv); err != nil {
					return err
				}
			case value.KindRelationship:
				if err := w.SetRelProp(graph.RelID(id), k, pv); err != nil {
					return err
				}
			}
			ex.stats.PropsSet++
		}
		return nil
	}
	return fmt.Errorf("cypher: unknown SET item kind")
}

// applyRemoveOp applies one compiled REMOVE item to one row.
func (ex *executor) applyRemoveOp(r row, op *removeOp) error {
	target := r[op.slot]
	if target.IsNull() {
		return nil
	}
	w, err := ex.writer()
	if err != nil {
		return err
	}
	id, _ := target.EntityID()
	if op.key != "" {
		switch target.Kind() {
		case value.KindNode:
			if err := w.RemoveNodeProp(graph.NodeID(id), op.key); err != nil {
				return err
			}
		case value.KindRelationship:
			if err := w.RemoveRelProp(graph.RelID(id), op.key); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cypher: cannot remove property from %s", target.Kind())
		}
		ex.stats.PropsSet++
	}
	for _, l := range op.labels {
		if target.Kind() != value.KindNode {
			return fmt.Errorf("cypher: cannot remove label from %s", target.Kind())
		}
		if err := w.RemoveLabel(graph.NodeID(id), l); err != nil {
			return err
		}
		ex.stats.LabelsRemoved++
	}
	return nil
}
