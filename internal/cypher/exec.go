package cypher

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// UpdateStats counts the write effects of a statement execution.
type UpdateStats struct {
	NodesCreated  int
	NodesDeleted  int
	RelsCreated   int
	RelsDeleted   int
	PropsSet      int
	LabelsAdded   int
	LabelsRemoved int
}

// Add accumulates other into s.
func (s *UpdateStats) Add(other UpdateStats) {
	s.NodesCreated += other.NodesCreated
	s.NodesDeleted += other.NodesDeleted
	s.RelsCreated += other.RelsCreated
	s.RelsDeleted += other.RelsDeleted
	s.PropsSet += other.PropsSet
	s.LabelsAdded += other.LabelsAdded
	s.LabelsRemoved += other.LabelsRemoved
}

// Result is the outcome of executing a statement.
type Result struct {
	Columns []string
	Rows    [][]value.Value
	Stats   UpdateStats
}

// Value returns the single value of a single-row single-column result.
func (r *Result) Value() (value.Value, bool) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return value.Null, false
	}
	return r.Rows[0][0], true
}

// Options configures statement execution.
type Options struct {
	// Params supplies $name parameters.
	Params map[string]value.Value
	// Bindings pre-binds variables visible to the first clause; reactive
	// rules use this for the NEW and OLD transition variables.
	Bindings map[string]value.Value
	// Now supplies the clock for datetime()/timestamp(); nil means
	// time.Now. Deterministic tests and the summary machinery set it.
	Now func() time.Time
}

type executor struct {
	ctx   *evalCtx
	stats UpdateStats
}

// Execute runs a parsed statement in the given transaction.
func Execute(tx *graph.Tx, stmt *Statement, opts *Options) (*Result, error) {
	if len(stmt.Unions) == 0 {
		return executeBranch(tx, stmt, stmt.Clauses, opts)
	}
	// UNION: run every branch, check column agreement, concatenate, and
	// deduplicate unless every joint is UNION ALL.
	res, err := executeBranch(tx, stmt, stmt.Clauses, opts)
	if err != nil {
		return nil, err
	}
	dedupe := false
	for _, b := range stmt.Unions {
		br, err := executeBranch(tx, stmt, b.Clauses, opts)
		if err != nil {
			return nil, err
		}
		if len(br.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("cypher: UNION branches return different numbers of columns")
		}
		for i := range br.Columns {
			if br.Columns[i] != res.Columns[i] {
				return nil, fmt.Errorf("cypher: UNION column mismatch: %s vs %s",
					res.Columns[i], br.Columns[i])
			}
		}
		res.Rows = append(res.Rows, br.Rows...)
		res.Stats.Add(br.Stats)
		if !b.All {
			dedupe = true
		}
	}
	if dedupe {
		rows := make([]row, len(res.Rows))
		copy(rows, res.Rows)
		rows = dedupeRows(rows)
		res.Rows = res.Rows[:len(rows)]
		copy(res.Rows, rows)
	}
	return res, nil
}

// executeBranch runs one clause pipeline.
func executeBranch(tx *graph.Tx, stmt *Statement, clauses []Clause, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	ctx := &evalCtx{tx: tx, params: opts.Params, now: opts.Now, query: stmt.Query}
	ex := &executor{ctx: ctx}

	if res, ok, err := ex.tryFastCount(clauses); err != nil {
		return nil, err
	} else if ok {
		return res, nil
	}

	en := newEnv()
	base := row{}
	if len(opts.Bindings) > 0 {
		names := make([]string, 0, len(opts.Bindings))
		for name := range opts.Bindings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			en.add(name)
			base = append(base, opts.Bindings[name])
		}
	}
	rows := []row{base}

	var result *Result
	for i, cl := range clauses {
		var err error
		switch c := cl.(type) {
		case *MatchClause:
			en, rows, err = ex.execMatch(en, rows, c)
		case *UnwindClause:
			en, rows, err = ex.execUnwind(en, rows, c)
		case *WithClause:
			en, rows, err = ex.execWith(en, rows, c)
		case *ReturnClause:
			result, err = ex.execReturn(en, rows, c)
		case *CreateClause:
			en, rows, err = ex.execCreate(en, rows, c)
		case *ForeachClause:
			err = ex.execForeach(en, rows, c)
		case *MergeClause:
			en, rows, err = ex.execMerge(en, rows, c)
		case *DeleteClause:
			rows, err = ex.execDelete(en, rows, c)
		case *SetClause:
			err = ex.execSet(en, rows, c.Items)
		case *RemoveClause:
			err = ex.execRemove(en, rows, c)
		default:
			err = fmt.Errorf("cypher: unhandled clause %T", cl)
		}
		if err != nil {
			return nil, err
		}
		_ = i
	}
	if result == nil {
		result = &Result{}
	}
	result.Stats = ex.stats
	return result, nil
}

// Run parses and executes a query.
func Run(tx *graph.Tx, query string, opts *Options) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Execute(tx, stmt, opts)
}

// EvalPredicate evaluates a standalone parsed expression (a rule guard)
// against the supplied bindings, returning its truth value under ternary
// semantics (NULL/unknown evaluates to false).
func EvalPredicate(tx *graph.Tx, expr Expr, opts *Options) (bool, error) {
	v, err := EvalExpr(tx, expr, opts)
	if err != nil {
		return false, err
	}
	b, known := v.Truthy()
	return known && b, nil
}

// EvalExpr evaluates a standalone parsed expression with the supplied
// bindings visible as variables and returns its value. The composite-event
// layer uses it for correlation-key (BY) expressions; EvalPredicate wraps
// it with three-valued-logic truthiness for guards.
func EvalExpr(tx *graph.Tx, expr Expr, opts *Options) (value.Value, error) {
	if opts == nil {
		opts = &Options{}
	}
	ctx := &evalCtx{tx: tx, params: opts.Params, now: opts.Now}
	en := newEnv()
	var r row
	names := make([]string, 0, len(opts.Bindings))
	for name := range opts.Bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		en.add(name)
		r = append(r, opts.Bindings[name])
	}
	return evalExpr(ctx, en, r, expr)
}

// ---- fast count path ----

// tryFastCount recognizes `MATCH (v:Label {k: const}) RETURN count(...)`
// and answers it from label and property indexes without materializing
// candidates — the analog of Neo4j's count store, which is what keeps the
// paper's naive per-event triggers (Fig. 9) at near-constant per-event cost.
func (ex *executor) tryFastCount(clauses []Clause) (*Result, bool, error) {
	if len(clauses) != 2 {
		return nil, false, nil
	}
	m, ok := clauses[0].(*MatchClause)
	if !ok || m.Optional || m.Where != nil || len(m.Patterns) != 1 {
		return nil, false, nil
	}
	part := m.Patterns[0]
	if part.Var != "" || len(part.Rels) != 0 || len(part.Nodes) != 1 {
		return nil, false, nil
	}
	np := part.Nodes[0]
	ret, ok := clauses[1].(*ReturnClause)
	if !ok || ret.Distinct || ret.Star || len(ret.Items) != 1 ||
		ret.OrderBy != nil || ret.Skip != nil || ret.Limit != nil {
		return nil, false, nil
	}
	call, ok := ret.Items[0].Expr.(*FuncCall)
	if !ok || call.Name != "count" || call.Distinct {
		return nil, false, nil
	}
	if !call.Star {
		if len(call.Args) != 1 {
			return nil, false, nil
		}
		v, ok := call.Args[0].(*Variable)
		if !ok || v.Name != np.Var {
			return nil, false, nil
		}
	}

	en := newEnv()
	var count int
	switch {
	case len(np.Props) == 0 && len(np.Labels) == 0:
		count = ex.ctx.tx.NodeCount()
	case len(np.Props) == 0 && len(np.Labels) == 1:
		count = ex.ctx.tx.CountByLabel(np.Labels[0])
	case len(np.Props) == 1 && len(np.Labels) == 1:
		var key string
		var expr Expr
		for k, e := range np.Props {
			key, expr = k, e
		}
		want, err := evalExpr(ex.ctx, en, row{}, expr)
		if err != nil {
			// Property depends on bindings; fall back to the general path.
			return nil, false, nil
		}
		c, has := ex.ctx.tx.CountByProp(np.Labels[0], key, want)
		if !has {
			return nil, false, nil
		}
		count = c
	default:
		return nil, false, nil
	}
	col := ret.Items[0].Alias
	if col == "" {
		col = ret.Items[0].Text
	}
	return &Result{Columns: []string{col}, Rows: [][]value.Value{{value.Int(int64(count))}}}, true, nil
}

// ---- MATCH ----

func (ex *executor) execMatch(en *env, rows []row, c *MatchClause) (*env, []row, error) {
	newEn := en.clone()
	cps := make([]*compiledPattern, len(c.Patterns))
	for i, p := range c.Patterns {
		cps[i] = compilePattern(newEn, p)
	}
	width := len(newEn.names)
	var out []row

	for _, r := range rows {
		base := make(row, width)
		copy(base, r)
		matched := false

		var matchFrom func(pi int, cur row, used map[graph.RelID]bool) error
		matchFrom = func(pi int, cur row, used map[graph.RelID]bool) error {
			if pi == len(cps) {
				if c.Where != nil {
					v, err := evalExpr(ex.ctx, newEn, cur, c.Where)
					if err != nil {
						return err
					}
					if b, known := v.Truthy(); !known || !b {
						return nil
					}
				}
				matched = true
				out = append(out, cur)
				return nil
			}
			return matchPart(ex.ctx, newEn, cur, cps[pi], used, func(nr row) error {
				return matchFrom(pi+1, nr, used)
			})
		}
		if err := matchFrom(0, base, make(map[graph.RelID]bool)); err != nil {
			return nil, nil, err
		}
		if !matched && c.Optional {
			out = append(out, base) // pattern variables stay NULL
		}
	}
	return newEn, out, nil
}

// ---- UNWIND ----

func (ex *executor) execUnwind(en *env, rows []row, c *UnwindClause) (*env, []row, error) {
	newEn := en.clone()
	slot := newEn.add(c.Var)
	width := len(newEn.names)
	var out []row
	for _, r := range rows {
		lv, err := evalExpr(ex.ctx, en, r, c.List)
		if err != nil {
			return nil, nil, err
		}
		if lv.IsNull() {
			continue
		}
		elems, ok := lv.AsList()
		if !ok {
			// UNWIND of a single value behaves as a singleton list.
			elems = []value.Value{lv}
		}
		for _, e := range elems {
			nr := make(row, width)
			copy(nr, r)
			nr[slot] = e
			out = append(out, nr)
		}
	}
	return newEn, out, nil
}

// ---- WITH / RETURN ----

func (ex *executor) projectionItems(en *env, c interface{}) (items []*ReturnItem, distinct bool, orderBy []*SortItem, skip, limit Expr, where Expr) {
	switch cl := c.(type) {
	case *WithClause:
		items = cl.Items
		if cl.Star {
			items = append(starItems(en), cl.Items...)
		}
		return items, cl.Distinct, cl.OrderBy, cl.Skip, cl.Limit, cl.Where
	case *ReturnClause:
		items = cl.Items
		if cl.Star {
			items = append(starItems(en), cl.Items...)
		}
		return items, cl.Distinct, cl.OrderBy, cl.Skip, cl.Limit, nil
	}
	return nil, false, nil, nil, nil, nil
}

func starItems(en *env) []*ReturnItem {
	items := make([]*ReturnItem, 0, len(en.names))
	for _, name := range en.names {
		items = append(items, &ReturnItem{Expr: &Variable{Name: name}, Alias: name, Text: name})
	}
	return items
}

func itemName(it *ReturnItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if v, ok := it.Expr.(*Variable); ok {
		return v.Name
	}
	return it.Text
}

func (ex *executor) execWith(en *env, rows []row, c *WithClause) (*env, []row, error) {
	items, distinct, orderBy, skip, limit, where := ex.projectionItems(en, c)
	newEn, newRows, err := ex.projectOrdered(en, rows, items, distinct, orderBy, skip, limit)
	if err != nil {
		return nil, nil, err
	}
	if where != nil {
		newRows, err = truthyFilter(ex.ctx, newEn, newRows, where)
		if err != nil {
			return nil, nil, err
		}
	}
	return newEn, newRows, nil
}

func (ex *executor) execReturn(en *env, rows []row, c *ReturnClause) (*Result, error) {
	items, distinct, orderBy, skip, limit, _ := ex.projectionItems(en, c)
	_, newRows, err := ex.projectOrdered(en, rows, items, distinct, orderBy, skip, limit)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = itemName(it)
	}
	out := make([][]value.Value, len(newRows))
	for i, r := range newRows {
		out[i] = r
	}
	return &Result{Columns: cols, Rows: out}, nil
}

// projectOrdered applies the projection and then ORDER BY / SKIP / LIMIT.
// Without aggregation, sort expressions may reference both the projected
// aliases and the pre-projection variables (Cypher's ORDER BY scoping); the
// projection therefore temporarily carries the input bindings alongside the
// output columns. With aggregation, only the projected columns are in scope.
func (ex *executor) projectOrdered(en *env, rows []row, items []*ReturnItem,
	distinct bool, orderBy []*SortItem, skip, limit Expr) (*env, []row, error) {
	hasAgg := false
	for _, it := range items {
		var calls []*FuncCall
		collectAggregates(it.Expr, &calls)
		if len(calls) > 0 {
			hasAgg = true
			break
		}
	}
	if hasAgg || len(orderBy) == 0 {
		newEn, newRows, err := ex.project(en, rows, items, distinct)
		if err != nil {
			return nil, nil, err
		}
		newRows, err = ex.orderSkipLimit(newEn, newRows, orderBy, skip, limit)
		if err != nil {
			return nil, nil, err
		}
		return newEn, newRows, nil
	}

	// Non-aggregating projection with ORDER BY: build combined rows of the
	// projected values followed by surviving input bindings.
	outEn := newEnv()
	for _, it := range items {
		outEn.add(itemName(it))
	}
	if len(outEn.names) != len(items) {
		return nil, nil, fmt.Errorf("cypher: duplicate column name in projection")
	}
	combEn := outEn.clone()
	type carry struct{ from, to int }
	var carries []carry
	for i, name := range en.names {
		if _, taken := combEn.lookup(name); !taken {
			carries = append(carries, carry{from: i, to: combEn.add(name)})
		}
	}

	comb := make([]row, 0, len(rows))
	for _, r := range rows {
		nr := make(row, len(combEn.names))
		for i, it := range items {
			v, err := evalExpr(ex.ctx, en, r, it.Expr)
			if err != nil {
				return nil, nil, err
			}
			nr[i] = v
		}
		for _, c := range carries {
			nr[c.to] = r[c.from]
		}
		comb = append(comb, nr)
	}
	if distinct {
		comb = dedupePrefix(comb, len(items))
	}
	comb, err := ex.orderSkipLimit(combEn, comb, orderBy, skip, limit)
	if err != nil {
		return nil, nil, err
	}
	out := make([]row, len(comb))
	for i, r := range comb {
		out[i] = r[:len(items):len(items)]
	}
	return outEn, out, nil
}

// dedupePrefix keeps the first row for each distinct prefix of width n.
func dedupePrefix(rows []row, n int) []row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		hk := ""
		for _, v := range r[:n] {
			k := v.HashKey()
			hk += fmt.Sprintf("%d:%s;", len(k), k)
		}
		if seen[hk] {
			continue
		}
		seen[hk] = true
		out = append(out, r)
	}
	return out
}

// collectAggregates gathers the aggregate function calls inside an item.
func collectAggregates(e Expr, out *[]*FuncCall) {
	switch x := e.(type) {
	case *FuncCall:
		if isAggregateFunc(x.Name) {
			*out = append(*out, x)
			return // aggregates cannot nest
		}
		for _, a := range x.Args {
			collectAggregates(a, out)
		}
	case *PropAccess:
		collectAggregates(x.X, out)
	case *IndexExpr:
		collectAggregates(x.X, out)
		collectAggregates(x.Idx, out)
	case *SliceExpr:
		collectAggregates(x.X, out)
		if x.From != nil {
			collectAggregates(x.From, out)
		}
		if x.To != nil {
			collectAggregates(x.To, out)
		}
	case *UnaryOp:
		collectAggregates(x.X, out)
	case *BinaryOp:
		collectAggregates(x.L, out)
		collectAggregates(x.R, out)
	case *CaseExpr:
		if x.Test != nil {
			collectAggregates(x.Test, out)
		}
		for _, w := range x.Whens {
			collectAggregates(w.Cond, out)
			collectAggregates(w.Then, out)
		}
		if x.Else != nil {
			collectAggregates(x.Else, out)
		}
	case *ListLit:
		for _, el := range x.Elems {
			collectAggregates(el, out)
		}
	case *MapLit:
		for _, v := range x.Vals {
			collectAggregates(v, out)
		}
	case *ListComp:
		collectAggregates(x.List, out)
	case *ListPredicate:
		collectAggregates(x.List, out)
	case *ReduceExpr:
		collectAggregates(x.Init, out)
		collectAggregates(x.List, out)
	}
}

func (ex *executor) project(en *env, rows []row, items []*ReturnItem, distinct bool) (*env, []row, error) {
	newEn := newEnv()
	for _, it := range items {
		newEn.add(itemName(it))
	}
	if len(newEn.names) != len(items) {
		return nil, nil, fmt.Errorf("cypher: duplicate column name in projection")
	}

	var aggCalls []*FuncCall
	itemAggs := make([][]*FuncCall, len(items))
	for i, it := range items {
		var calls []*FuncCall
		collectAggregates(it.Expr, &calls)
		itemAggs[i] = calls
		aggCalls = append(aggCalls, calls...)
	}

	if len(aggCalls) == 0 {
		out := make([]row, 0, len(rows))
		for _, r := range rows {
			nr := make(row, len(items))
			for i, it := range items {
				v, err := evalExpr(ex.ctx, en, r, it.Expr)
				if err != nil {
					return nil, nil, err
				}
				nr[i] = v
			}
			out = append(out, nr)
		}
		if distinct {
			out = dedupeRows(out)
		}
		return newEn, out, nil
	}

	// Aggregating projection: group by the aggregate-free items.
	type group struct {
		rep  row // representative input row
		keys map[int]value.Value
		aggs map[*FuncCall]aggregator
	}
	groups := make(map[string]*group)
	var order []string

	keyItems := make([]int, 0, len(items))
	for i := range items {
		if len(itemAggs[i]) == 0 {
			keyItems = append(keyItems, i)
		}
	}

	for _, r := range rows {
		keyVals := make(map[int]value.Value, len(keyItems))
		hk := ""
		for _, i := range keyItems {
			v, err := evalExpr(ex.ctx, en, r, items[i].Expr)
			if err != nil {
				return nil, nil, err
			}
			keyVals[i] = v
			k := v.HashKey()
			hk += fmt.Sprintf("%d:%s;", len(k), k)
		}
		g, ok := groups[hk]
		if !ok {
			g = &group{rep: r, keys: keyVals, aggs: make(map[*FuncCall]aggregator)}
			for _, call := range aggCalls {
				g.aggs[call] = newAggregator(call)
			}
			groups[hk] = g
			order = append(order, hk)
		}
		for _, call := range aggCalls {
			if err := feedAggregator(ex.ctx, en, r, call, g.aggs[call]); err != nil {
				return nil, nil, err
			}
		}
	}

	// With no grouping keys and no input rows, aggregates still produce one
	// row (count(*) of nothing is 0).
	if len(groups) == 0 && len(keyItems) == 0 {
		g := &group{rep: row{}, keys: map[int]value.Value{}, aggs: make(map[*FuncCall]aggregator)}
		for _, call := range aggCalls {
			g.aggs[call] = newAggregator(call)
		}
		groups["" /* empty key */] = g
		order = append(order, "")
	}

	out := make([]row, 0, len(groups))
	for _, hk := range order {
		g := groups[hk]
		sub := make(map[*FuncCall]value.Value, len(g.aggs))
		for call, agg := range g.aggs {
			sub[call] = agg.result()
		}
		saved := ex.ctx.aggSub
		ex.ctx.aggSub = sub
		nr := make(row, len(items))
		for i, it := range items {
			if v, ok := g.keys[i]; ok {
				nr[i] = v
				continue
			}
			v, err := evalExpr(ex.ctx, en, g.rep, it.Expr)
			if err != nil {
				ex.ctx.aggSub = saved
				return nil, nil, err
			}
			nr[i] = v
		}
		ex.ctx.aggSub = saved
		out = append(out, nr)
	}
	if distinct {
		out = dedupeRows(out)
	}
	return newEn, out, nil
}

func dedupeRows(rows []row) []row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		hk := ""
		for _, v := range r {
			k := v.HashKey()
			hk += fmt.Sprintf("%d:%s;", len(k), k)
		}
		if seen[hk] {
			continue
		}
		seen[hk] = true
		out = append(out, r)
	}
	return out
}

func (ex *executor) orderSkipLimit(en *env, rows []row, orderBy []*SortItem, skip, limit Expr) ([]row, error) {
	if len(orderBy) > 0 {
		type keyed struct {
			r    row
			keys []value.Value
		}
		ks := make([]keyed, len(rows))
		for i, r := range rows {
			keys := make([]value.Value, len(orderBy))
			for j, s := range orderBy {
				v, err := evalExpr(ex.ctx, en, r, s.Expr)
				if err != nil {
					return nil, err
				}
				keys[j] = v
			}
			ks[i] = keyed{r: r, keys: keys}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j, s := range orderBy {
				c := value.Compare(ks[a].keys[j], ks[b].keys[j])
				if c == 0 {
					continue
				}
				if s.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for i := range ks {
			rows[i] = ks[i].r
		}
	}
	if skip != nil {
		n, err := ex.evalBound(skip, "SKIP")
		if err != nil {
			return nil, err
		}
		if n >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if limit != nil {
		n, err := ex.evalBound(limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < int64(len(rows)) {
			rows = rows[:n]
		}
	}
	return rows, nil
}

func (ex *executor) evalBound(e Expr, what string) (int64, error) {
	v, err := evalExpr(ex.ctx, newEnv(), row{}, e)
	if err != nil {
		return 0, err
	}
	n, ok := v.AsInt()
	if !ok || n < 0 {
		return 0, fmt.Errorf("cypher: %s requires a non-negative integer", what)
	}
	return n, nil
}

// ---- CREATE / MERGE ----

func (ex *executor) execCreate(en *env, rows []row, c *CreateClause) (*env, []row, error) {
	newEn := en.clone()
	cps := make([]*compiledPattern, len(c.Patterns))
	for i, p := range c.Patterns {
		if p.Var != "" {
			return nil, nil, fmt.Errorf("cypher: path variables are not supported in CREATE")
		}
		cps[i] = compilePattern(newEn, p)
	}
	width := len(newEn.names)
	out := make([]row, 0, len(rows))
	for _, r := range rows {
		nr := make(row, width)
		copy(nr, r)
		for _, cp := range cps {
			var err error
			nr, err = ex.createPattern(newEn, nr, cp)
			if err != nil {
				return nil, nil, err
			}
		}
		out = append(out, nr)
	}
	return newEn, out, nil
}

func (ex *executor) createPattern(en *env, r row, cp *compiledPattern) (row, error) {
	ids := make([]graph.NodeID, len(cp.part.Nodes))
	for i, np := range cp.part.Nodes {
		slot := cp.nodeSlots[i]
		if slot >= 0 && !r[slot].IsNull() {
			// Reuse an already bound node; labels/props in the pattern are
			// not allowed on bound variables in CREATE.
			if len(np.Labels) > 0 || len(np.Props) > 0 {
				return r, errAt(ex.ctx.query, np.pos,
					"variable `%s` already bound; cannot redeclare with labels or properties", np.Var)
			}
			id, ok := r[slot].EntityID()
			if !ok || r[slot].Kind() != value.KindNode {
				return r, errAt(ex.ctx.query, np.pos, "variable `%s` is not a node", np.Var)
			}
			ids[i] = graph.NodeID(id)
			continue
		}
		props, err := ex.evalProps(en, r, np.Props)
		if err != nil {
			return r, err
		}
		id, err := ex.ctx.tx.CreateNode(np.Labels, props)
		if err != nil {
			return r, err
		}
		ex.stats.NodesCreated++
		ex.stats.LabelsAdded += len(np.Labels)
		ex.stats.PropsSet += len(props)
		ids[i] = id
		if slot >= 0 {
			r[slot] = value.Node(int64(id))
		}
	}
	for i, rp := range cp.part.Rels {
		if rp.VarHops {
			return r, errAt(ex.ctx.query, rp.pos, "variable-length relationships cannot be created")
		}
		if len(rp.Types) != 1 {
			return r, errAt(ex.ctx.query, rp.pos, "CREATE requires exactly one relationship type")
		}
		var start, end graph.NodeID
		switch rp.Dir {
		case DirRight:
			start, end = ids[i], ids[i+1]
		case DirLeft:
			start, end = ids[i+1], ids[i]
		default:
			return r, errAt(ex.ctx.query, rp.pos, "CREATE requires a directed relationship")
		}
		props, err := ex.evalProps(en, r, rp.Props)
		if err != nil {
			return r, err
		}
		id, err := ex.ctx.tx.CreateRel(start, end, rp.Types[0], props)
		if err != nil {
			return r, err
		}
		ex.stats.RelsCreated++
		ex.stats.PropsSet += len(props)
		if slot := cp.relSlots[i]; slot >= 0 {
			r[slot] = value.Relationship(int64(id))
		}
	}
	return r, nil
}

func (ex *executor) evalProps(en *env, r row, props map[string]Expr) (map[string]value.Value, error) {
	if len(props) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(props))
	for k, e := range props {
		v, err := evalExpr(ex.ctx, en, r, e)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func (ex *executor) execMerge(en *env, rows []row, c *MergeClause) (*env, []row, error) {
	newEn := en.clone()
	cp := compilePattern(newEn, c.Pattern)
	width := len(newEn.names)
	var out []row
	for _, r := range rows {
		base := make(row, width)
		copy(base, r)
		if cp.nullBound(base) {
			return nil, nil, fmt.Errorf("cypher: MERGE on a NULL-bound variable")
		}
		var matches []row
		err := matchPart(ex.ctx, newEn, base, cp, nil, func(nr row) error {
			matches = append(matches, nr)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if len(matches) > 0 {
			for _, mr := range matches {
				if err := ex.execSet(newEn, []row{mr}, c.OnMatchSet); err != nil {
					return nil, nil, err
				}
				out = append(out, mr)
			}
			continue
		}
		created, err := ex.createPattern(newEn, base, cp)
		if err != nil {
			return nil, nil, err
		}
		if err := ex.execSet(newEn, []row{created}, c.OnCreateSet); err != nil {
			return nil, nil, err
		}
		out = append(out, created)
	}
	return newEn, out, nil
}

// execForeach runs the nested update clauses once per list element per
// input row. Variables introduced inside the body (and the loop variable)
// are not visible afterwards, per Cypher.
func (ex *executor) execForeach(en *env, rows []row, c *ForeachClause) error {
	for _, r := range rows {
		lv, err := evalExpr(ex.ctx, en, r, c.List)
		if err != nil {
			return err
		}
		if lv.IsNull() {
			continue
		}
		elems, ok := lv.AsList()
		if !ok {
			return fmt.Errorf("cypher: FOREACH requires a list, got %s", lv.Kind())
		}
		inner := en.clone()
		slot := inner.add(c.Var)
		for _, el := range elems {
			ir := make(row, len(inner.names))
			copy(ir, r)
			ir[slot] = el
			bodyEn, bodyRows := inner, []row{ir}
			for _, cl := range c.Body {
				switch bc := cl.(type) {
				case *CreateClause:
					bodyEn, bodyRows, err = ex.execCreate(bodyEn, bodyRows, bc)
				case *MergeClause:
					bodyEn, bodyRows, err = ex.execMerge(bodyEn, bodyRows, bc)
				case *SetClause:
					err = ex.execSet(bodyEn, bodyRows, bc.Items)
				case *RemoveClause:
					err = ex.execRemove(bodyEn, bodyRows, bc)
				case *DeleteClause:
					bodyRows, err = ex.execDelete(bodyEn, bodyRows, bc)
				case *ForeachClause:
					err = ex.execForeach(bodyEn, bodyRows, bc)
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---- DELETE / SET / REMOVE ----

func (ex *executor) execDelete(en *env, rows []row, c *DeleteClause) ([]row, error) {
	for _, r := range rows {
		for _, e := range c.Exprs {
			v, err := evalExpr(ex.ctx, en, r, e)
			if err != nil {
				return nil, err
			}
			switch v.Kind() {
			case value.KindNull:
				continue
			case value.KindNode:
				id, _ := v.EntityID()
				nid := graph.NodeID(id)
				if !ex.ctx.tx.NodeExists(nid) {
					continue // deleted by an earlier row
				}
				before := ex.ctx.tx.Degree(nid, graph.Both)
				if err := ex.ctx.tx.DeleteNode(nid, c.Detach); err != nil {
					return nil, err
				}
				ex.stats.NodesDeleted++
				ex.stats.RelsDeleted += before
			case value.KindRelationship:
				id, _ := v.EntityID()
				rid := graph.RelID(id)
				if _, _, _, ok := ex.ctx.tx.RelEndpoints(rid); !ok {
					continue
				}
				if err := ex.ctx.tx.DeleteRel(rid); err != nil {
					return nil, err
				}
				ex.stats.RelsDeleted++
			default:
				return nil, fmt.Errorf("cypher: DELETE of %s", v.Kind())
			}
		}
	}
	return rows, nil
}

func (ex *executor) execSet(en *env, rows []row, items []*SetItem) error {
	for _, r := range rows {
		for _, it := range items {
			if err := ex.applySetItem(en, r, it); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ex *executor) applySetItem(en *env, r row, it *SetItem) error {
	slot, ok := en.lookup(it.Target)
	if !ok {
		return fmt.Errorf("cypher: variable `%s` not defined in SET", it.Target)
	}
	target := r[slot]
	if target.IsNull() {
		return nil // SET on null is a no-op (OPTIONAL MATCH semantics)
	}
	id, isEnt := target.EntityID()
	switch it.Kind {
	case SetLabels:
		if target.Kind() != value.KindNode {
			return fmt.Errorf("cypher: cannot set labels on %s", target.Kind())
		}
		for _, l := range it.Labels {
			if err := ex.ctx.tx.SetLabel(graph.NodeID(id), l); err != nil {
				return err
			}
			ex.stats.LabelsAdded++
		}
		return nil
	case SetProp:
		v, err := evalExpr(ex.ctx, en, r, it.Value)
		if err != nil {
			return err
		}
		switch target.Kind() {
		case value.KindNode:
			if err := ex.ctx.tx.SetNodeProp(graph.NodeID(id), it.Key, v); err != nil {
				return err
			}
		case value.KindRelationship:
			if err := ex.ctx.tx.SetRelProp(graph.RelID(id), it.Key, v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cypher: cannot set property on %s", target.Kind())
		}
		ex.stats.PropsSet++
		return nil
	case SetAllProps, SetMergeProps:
		v, err := evalExpr(ex.ctx, en, r, it.Value)
		if err != nil {
			return err
		}
		m, ok := v.AsMap()
		if !ok {
			if props, err2 := propertiesOf(ex.ctx, v); err2 == nil {
				m, ok = props.AsMap()
			}
			if !ok {
				return fmt.Errorf("cypher: SET %s = requires a map", it.Target)
			}
		}
		if !isEnt {
			return fmt.Errorf("cypher: cannot set properties on %s", target.Kind())
		}
		if it.Kind == SetAllProps {
			// Clear existing properties first.
			switch target.Kind() {
			case value.KindNode:
				for _, k := range ex.ctx.tx.NodePropKeys(graph.NodeID(id)) {
					if err := ex.ctx.tx.RemoveNodeProp(graph.NodeID(id), k); err != nil {
						return err
					}
					ex.stats.PropsSet++
				}
			case value.KindRelationship:
				for _, k := range ex.ctx.tx.RelPropKeys(graph.RelID(id)) {
					if err := ex.ctx.tx.RemoveRelProp(graph.RelID(id), k); err != nil {
						return err
					}
					ex.stats.PropsSet++
				}
			}
		}
		for k, pv := range m {
			switch target.Kind() {
			case value.KindNode:
				if err := ex.ctx.tx.SetNodeProp(graph.NodeID(id), k, pv); err != nil {
					return err
				}
			case value.KindRelationship:
				if err := ex.ctx.tx.SetRelProp(graph.RelID(id), k, pv); err != nil {
					return err
				}
			}
			ex.stats.PropsSet++
		}
		return nil
	}
	return fmt.Errorf("cypher: unknown SET item kind")
}

func (ex *executor) execRemove(en *env, rows []row, c *RemoveClause) error {
	for _, r := range rows {
		for _, it := range c.Items {
			slot, ok := en.lookup(it.Target)
			if !ok {
				return fmt.Errorf("cypher: variable `%s` not defined in REMOVE", it.Target)
			}
			target := r[slot]
			if target.IsNull() {
				continue
			}
			id, _ := target.EntityID()
			if it.Key != "" {
				switch target.Kind() {
				case value.KindNode:
					if err := ex.ctx.tx.RemoveNodeProp(graph.NodeID(id), it.Key); err != nil {
						return err
					}
				case value.KindRelationship:
					if err := ex.ctx.tx.RemoveRelProp(graph.RelID(id), it.Key); err != nil {
						return err
					}
				default:
					return fmt.Errorf("cypher: cannot remove property from %s", target.Kind())
				}
				ex.stats.PropsSet++
			}
			for _, l := range it.Labels {
				if target.Kind() != value.KindNode {
					return fmt.Errorf("cypher: cannot remove label from %s", target.Kind())
				}
				if err := ex.ctx.tx.RemoveLabel(graph.NodeID(id), l); err != nil {
					return err
				}
				ex.stats.LabelsRemoved++
			}
		}
	}
	return nil
}
