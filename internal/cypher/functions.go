package cypher

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
	"repro/internal/value"
)

// isAggregateFunc reports whether name is an aggregation function handled by
// the projection machinery rather than by plain evaluation.
func isAggregateFunc(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max", "collect", "stdev":
		return true
	}
	return false
}

func arity(call *FuncCall, args []value.Value, min, max int) error {
	if len(args) < min || (max >= 0 && len(args) > max) {
		return fmt.Errorf("cypher: wrong number of arguments to %s()", call.Name)
	}
	return nil
}

func applyFunc(ctx *evalCtx, call *FuncCall, args []value.Value) (value.Value, error) {
	name := call.Name
	switch name {
	case "id":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		id, ok := args[0].EntityID()
		if !ok {
			return value.Null, fmt.Errorf("cypher: id() requires a node or relationship")
		}
		return value.Int(id), nil

	case "labels":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindNode {
			return value.Null, fmt.Errorf("cypher: labels() requires a node")
		}
		id, _ := args[0].EntityID()
		labels, ok := ctx.tx.NodeLabels(graph.NodeID(id))
		if !ok {
			return value.Null, nil
		}
		out := make([]value.Value, len(labels))
		for i, l := range labels {
			out[i] = value.Str(l)
		}
		return value.ListOf(out), nil

	case "type":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindRelationship {
			return value.Null, fmt.Errorf("cypher: type() requires a relationship")
		}
		id, _ := args[0].EntityID()
		typ, _, _, ok := ctx.tx.RelEndpoints(graph.RelID(id))
		if !ok {
			return value.Null, nil
		}
		return value.Str(typ), nil

	case "startnode", "endnode":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindRelationship {
			return value.Null, fmt.Errorf("cypher: %s() requires a relationship", name)
		}
		id, _ := args[0].EntityID()
		_, start, end, ok := ctx.tx.RelEndpoints(graph.RelID(id))
		if !ok {
			return value.Null, nil
		}
		if name == "startnode" {
			return value.Node(int64(start)), nil
		}
		return value.Node(int64(end)), nil

	case "properties":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return propertiesOf(ctx, args[0])

	case "keys":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return keysOf(ctx, args[0])

	case "size", "length":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		v := args[0]
		switch v.Kind() {
		case value.KindNull:
			return value.Null, nil
		case value.KindList:
			l, _ := v.AsList()
			return value.Int(int64(len(l))), nil
		case value.KindString:
			s, _ := v.AsString()
			return value.Int(int64(len([]rune(s)))), nil
		case value.KindMap:
			m, _ := v.AsMap()
			return value.Int(int64(len(m))), nil
		default:
			return value.Null, fmt.Errorf("cypher: %s() of %s", name, v.Kind())
		}

	case "head":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return listPick(args[0], 0)
	case "last":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return listPick(args[0], -1)
	case "tail":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		l, ok := args[0].AsList()
		if !ok {
			return value.Null, fmt.Errorf("cypher: tail() of %s", args[0].Kind())
		}
		if len(l) == 0 {
			return value.List(), nil
		}
		return value.ListOf(append([]value.Value(nil), l[1:]...)), nil
	case "reverse":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if s, ok := args[0].AsString(); ok {
			runes := []rune(s)
			for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
				runes[i], runes[j] = runes[j], runes[i]
			}
			return value.Str(string(runes)), nil
		}
		l, ok := args[0].AsList()
		if !ok {
			return value.Null, fmt.Errorf("cypher: reverse() of %s", args[0].Kind())
		}
		out := make([]value.Value, len(l))
		for i, v := range l {
			out[len(l)-1-i] = v
		}
		return value.ListOf(out), nil

	case "coalesce":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return value.Null, nil

	case "abs", "ceil", "floor", "round", "sqrt", "sign":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return mathFunc(name, args[0])

	case "tofloat":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return value.ToFloat(args[0])
	case "tointeger", "toint":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return value.ToInteger(args[0])
	case "tostring":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return value.ToString(args[0])
	case "toboolean":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		return value.ToBoolean(args[0])

	case "tolower", "toupper", "trim", "ltrim", "rtrim":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		s, ok := args[0].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: %s() of %s", name, args[0].Kind())
		}
		switch name {
		case "tolower":
			return value.Str(strings.ToLower(s)), nil
		case "toupper":
			return value.Str(strings.ToUpper(s)), nil
		case "trim":
			return value.Str(strings.TrimSpace(s)), nil
		case "ltrim":
			return value.Str(strings.TrimLeft(s, " \t\r\n")), nil
		default:
			return value.Str(strings.TrimRight(s, " \t\r\n")), nil
		}

	case "substring":
		if err := arity(call, args, 2, 3); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		s, ok := args[0].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: substring() of %s", args[0].Kind())
		}
		start, ok := args[1].AsInt()
		if !ok {
			return value.Null, fmt.Errorf("cypher: substring() start must be integer")
		}
		runes := []rune(s)
		if start < 0 || start > int64(len(runes)) {
			return value.Str(""), nil
		}
		end := int64(len(runes))
		if len(args) == 3 {
			n, ok := args[2].AsInt()
			if !ok {
				return value.Null, fmt.Errorf("cypher: substring() length must be integer")
			}
			if start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return value.Str(string(runes[start:end])), nil

	case "replace":
		if err := arity(call, args, 3, 3); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return value.Null, nil
		}
		s, ok1 := args[0].AsString()
		from, ok2 := args[1].AsString()
		to, ok3 := args[2].AsString()
		if !ok1 || !ok2 || !ok3 {
			return value.Null, fmt.Errorf("cypher: replace() requires strings")
		}
		return value.Str(strings.ReplaceAll(s, from, to)), nil

	case "split":
		if err := arity(call, args, 2, 2); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null, nil
		}
		s, ok1 := args[0].AsString()
		sep, ok2 := args[1].AsString()
		if !ok1 || !ok2 {
			return value.Null, fmt.Errorf("cypher: split() requires strings")
		}
		parts := strings.Split(s, sep)
		out := make([]value.Value, len(parts))
		for i, p := range parts {
			out[i] = value.Str(p)
		}
		return value.ListOf(out), nil

	case "left", "right":
		if err := arity(call, args, 2, 2); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		s, ok := args[0].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: %s() of %s", name, args[0].Kind())
		}
		n, ok := args[1].AsInt()
		if !ok || n < 0 {
			return value.Null, fmt.Errorf("cypher: %s() length must be a non-negative integer", name)
		}
		runes := []rune(s)
		if n > int64(len(runes)) {
			n = int64(len(runes))
		}
		if name == "left" {
			return value.Str(string(runes[:n])), nil
		}
		return value.Str(string(runes[len(runes)-int(n):])), nil

	case "datetime":
		if err := arity(call, args, 0, 1); err != nil {
			return value.Null, err
		}
		if len(args) == 0 {
			return value.DateTime(ctx.timeNow()), nil
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() == value.KindDateTime {
			return args[0], nil
		}
		s, ok := args[0].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: datetime() requires a string")
		}
		return value.ParseDateTime(s)

	case "timestamp":
		if err := arity(call, args, 0, 0); err != nil {
			return value.Null, err
		}
		return value.Int(ctx.timeNow().UnixMilli()), nil

	case "duration":
		if err := arity(call, args, 1, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() == value.KindDuration {
			return args[0], nil
		}
		s, ok := args[0].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: duration() requires a string")
		}
		return value.ParseDuration(s)

	case "range":
		if err := arity(call, args, 2, 3); err != nil {
			return value.Null, err
		}
		start, ok1 := args[0].AsInt()
		end, ok2 := args[1].AsInt()
		if !ok1 || !ok2 {
			return value.Null, fmt.Errorf("cypher: range() requires integers")
		}
		step := int64(1)
		if len(args) == 3 {
			var ok bool
			step, ok = args[2].AsInt()
			if !ok || step == 0 {
				return value.Null, fmt.Errorf("cypher: range() step must be a non-zero integer")
			}
		}
		var out []value.Value
		if step > 0 {
			for i := start; i <= end; i += step {
				out = append(out, value.Int(i))
			}
		} else {
			for i := start; i >= end; i += step {
				out = append(out, value.Int(i))
			}
		}
		return value.ListOf(out), nil

	case "countnodes":
		// countNodes(label) or countNodes(label, key, value) — count-store
		// access: O(1) when a property index exists on (label, key), the
		// analog of Neo4j's count store. Falls back to a label scan.
		if err := arity(call, args, 1, 3); err != nil {
			return value.Null, err
		}
		label, ok := args[0].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: countNodes() label must be a string")
		}
		if len(args) == 1 {
			return value.Int(int64(ctx.tx.CountByLabel(label))), nil
		}
		if len(args) != 3 {
			return value.Null, fmt.Errorf("cypher: countNodes() takes 1 or 3 arguments")
		}
		key, ok := args[1].AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: countNodes() key must be a string")
		}
		if n, indexed := ctx.tx.CountByProp(label, key, args[2]); indexed {
			return value.Int(int64(n)), nil
		}
		var n int64
		for _, id := range ctx.tx.NodesByLabel(label) {
			if v, has := ctx.tx.NodeProp(id, key); has {
				if eq, known := value.Equal(v, args[2]); known && eq {
					n++
				}
			}
		}
		return value.Int(n), nil

	case "degree":
		// degree(node [, type]) — extension used by rule diagnostics.
		if err := arity(call, args, 1, 2); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindNode {
			return value.Null, fmt.Errorf("cypher: degree() requires a node")
		}
		id, _ := args[0].EntityID()
		if len(args) == 2 {
			typ, ok := args[1].AsString()
			if !ok {
				return value.Null, fmt.Errorf("cypher: degree() type must be a string")
			}
			return value.Int(int64(len(ctx.tx.RelsOf(graph.NodeID(id), graph.Both, []string{typ})))), nil
		}
		return value.Int(int64(ctx.tx.Degree(graph.NodeID(id), graph.Both))), nil

	default:
		return value.Null, fmt.Errorf("cypher: unknown function %s()", name)
	}
}

func listPick(v value.Value, idx int) (value.Value, error) {
	if v.IsNull() {
		return value.Null, nil
	}
	l, ok := v.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: head()/last() of %s", v.Kind())
	}
	if len(l) == 0 {
		return value.Null, nil
	}
	if idx < 0 {
		return l[len(l)-1], nil
	}
	return l[idx], nil
}

func propertiesOf(ctx *evalCtx, v value.Value) (value.Value, error) {
	switch v.Kind() {
	case value.KindNull:
		return value.Null, nil
	case value.KindMap:
		return v, nil
	case value.KindNode:
		id, _ := v.EntityID()
		n, ok := ctx.tx.Node(graph.NodeID(id))
		if !ok {
			return value.Null, nil
		}
		return value.Map(n.Props), nil
	case value.KindRelationship:
		id, _ := v.EntityID()
		r, ok := ctx.tx.Rel(graph.RelID(id))
		if !ok {
			return value.Null, nil
		}
		return value.Map(r.Props), nil
	default:
		return value.Null, fmt.Errorf("cypher: properties() of %s", v.Kind())
	}
}

func keysOf(ctx *evalCtx, v value.Value) (value.Value, error) {
	var keys []string
	switch v.Kind() {
	case value.KindNull:
		return value.Null, nil
	case value.KindMap:
		m, _ := v.AsMap()
		for k := range m {
			keys = append(keys, k)
		}
		sortKeys(keys)
	case value.KindNode:
		id, _ := v.EntityID()
		keys = ctx.tx.NodePropKeys(graph.NodeID(id))
	case value.KindRelationship:
		id, _ := v.EntityID()
		keys = ctx.tx.RelPropKeys(graph.RelID(id))
	default:
		return value.Null, fmt.Errorf("cypher: keys() of %s", v.Kind())
	}
	out := make([]value.Value, len(keys))
	for i, k := range keys {
		out[i] = value.Str(k)
	}
	return value.ListOf(out), nil
}

func sortKeys(ks []string) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func mathFunc(name string, v value.Value) (value.Value, error) {
	if v.IsNull() {
		return value.Null, nil
	}
	if name == "abs" {
		if i, ok := v.AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return value.Int(i), nil
		}
	}
	if name == "sign" {
		f, ok := v.NumberAsFloat()
		if !ok {
			return value.Null, fmt.Errorf("cypher: sign() of %s", v.Kind())
		}
		switch {
		case f > 0:
			return value.Int(1), nil
		case f < 0:
			return value.Int(-1), nil
		default:
			return value.Int(0), nil
		}
	}
	f, ok := v.NumberAsFloat()
	if !ok {
		return value.Null, fmt.Errorf("cypher: %s() of %s", name, v.Kind())
	}
	switch name {
	case "abs":
		return value.Float(math.Abs(f)), nil
	case "ceil":
		return value.Float(math.Ceil(f)), nil
	case "floor":
		return value.Float(math.Floor(f)), nil
	case "round":
		return value.Float(math.Round(f)), nil
	case "sqrt":
		return value.Float(math.Sqrt(f)), nil
	default:
		return value.Null, fmt.Errorf("cypher: unknown math function %s", name)
	}
}
