package cypher

import "repro/internal/graph"

// statsSnapshot memoizes the store statistics a compilation consulted while
// choosing access paths. The snapshot doubles as the plan's staleness stamp:
// stale() replays exactly the reads that informed the plan and reports
// whether any of them has drifted far enough to change a costing decision,
// which is what lets cached plans adapt to data growth without re-parsing.
type statsSnapshot struct {
	nodeCount    int
	sawNodeCount bool
	labels       map[string]int
	indexes      map[indexKey]bool
}

type indexKey struct{ label, key string }

func newStatsSnapshot() *statsSnapshot {
	return &statsSnapshot{
		labels:  make(map[string]int),
		indexes: make(map[indexKey]bool),
	}
}

func (s *statsSnapshot) labelCount(tx graph.ReadView, label string) int {
	if c, ok := s.labels[label]; ok {
		return c
	}
	c := tx.CountByLabel(label)
	s.labels[label] = c
	return c
}

func (s *statsSnapshot) totalNodes(tx graph.ReadView) int {
	if !s.sawNodeCount {
		s.nodeCount = tx.NodeCount()
		s.sawNodeCount = true
	}
	return s.nodeCount
}

func (s *statsSnapshot) hasIndex(tx graph.ReadView, label, key string) bool {
	k := indexKey{label, key}
	if has, ok := s.indexes[k]; ok {
		return has
	}
	has := tx.HasIndex(label, key)
	s.indexes[k] = has
	return has
}

// stale reports whether the statistics have drifted enough since compilation
// that access-path choices should be recomputed: an index appeared or
// disappeared, or a cardinality the plan was costed on changed by more than
// 2x (with absolute slack so tiny stores don't thrash).
func (s *statsSnapshot) stale(tx graph.ReadView) bool {
	for k, had := range s.indexes {
		if tx.HasIndex(k.label, k.key) != had {
			return true
		}
	}
	if s.sawNodeCount && drifted(s.nodeCount, tx.NodeCount()) {
		return true
	}
	for l, c := range s.labels {
		if drifted(c, tx.CountByLabel(l)) {
			return true
		}
	}
	return false
}

func drifted(old, cur int) bool {
	hi, lo := old, cur
	if cur > hi {
		hi, lo = cur, old
	}
	if hi < 16 {
		return false
	}
	return hi > 2*lo
}

// accessPlan records the statically chosen way to enumerate anchor
// candidates for one pattern part, plus the cardinality estimate that drove
// the choice (surfaced by EXPLAIN). At runtime a node variable already bound
// by an earlier clause always overrides it, since a single bound node beats
// any scan.
type accessPlan struct {
	anchor int        // node position in the pattern chain
	kind   accessKind // how candidates are produced
	label  string     // accessIndex, accessLabel
	key    string     // accessIndex
	valFn  exprFn     // accessIndex: the property's compiled expression
	est    int        // estimated candidate count at plan time
}

type accessKind int

const (
	accessScan accessKind = iota
	accessLabel
	accessIndex
)

func (k accessKind) String() string {
	switch k {
	case accessIndex:
		return "index"
	case accessLabel:
		return "label scan"
	default:
		return "full scan"
	}
}
