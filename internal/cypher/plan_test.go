package cypher

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// TestParseErrorOffsets pins the byte-exact error positions the parser
// reports: Error.Pos must be the offset of the offending token in the query
// text, found here with strings.Index on a uniquely identifying fragment.
func TestParseErrorOffsets(t *testing.T) {
	cases := []struct {
		query string
		frag  string // first occurrence marks the expected offset
	}{
		{"MATCH (n) RETURN n MATCH (m)", "RETURN"}, // RETURN is the misplaced clause
		{"MATCH (n) WHERE RETURN n", "RETURN"},
		{"RETURN 1 +", ""}, // end of input: offset == len(query)
		{"MATCH (n RETURN n", "RETURN"},
		{"RETURN )", ")"},
		{"MATCH (n) RETURN n ORDER BY", ""},
		{"RETURN 1 UNION MATCH (n)", "UNION"}, // RETURN-less branch blamed on its UNION
	}
	for _, tc := range cases {
		_, err := Parse(tc.query)
		if err == nil {
			t.Errorf("%q should fail", tc.query)
			continue
		}
		var pe *Error
		if !errors.As(err, &pe) {
			t.Errorf("%q: error is %T, want *Error", tc.query, err)
			continue
		}
		want := len(tc.query)
		if tc.frag != "" {
			want = strings.Index(tc.query, tc.frag)
		}
		if pe.Pos != want {
			t.Errorf("%q: Pos = %d, want %d (%v)", tc.query, pe.Pos, want, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("offset %d", want)) {
			t.Errorf("%q: rendered error lacks offset: %v", tc.query, err)
		}
	}
}

// TestPreparedSteadyStateNoParse is the retire-the-per-event-parse check:
// once a plan is prepared, executing it any number of times — with varying
// parameters and binding values — performs zero parser invocations.
func TestPreparedSteadyStateNoParse(t *testing.T) {
	s := testGraph(t)
	plan, err := Prepare("MATCH (p:Person) WHERE p.age > $min RETURN count(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	before := ParseCount()
	for i := 0; i < 100; i++ {
		res, err := plan.Execute(tx, &Options{
			Params: map[string]value.Value{"min": value.Int(int64(i % 40))},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
	}
	if d := ParseCount() - before; d != 0 {
		t.Errorf("steady-state executions parsed %d time(s), want 0", d)
	}
	if plan.Variants() != 1 {
		t.Errorf("variants = %d, want 1", plan.Variants())
	}
}

// TestPreparedExprSteadyStateNoParse covers the trigger-guard shape: a
// CompiledExpr evaluated per event with fresh bindings never re-parses.
func TestPreparedExprSteadyStateNoParse(t *testing.T) {
	s := testGraph(t)
	ce, err := PrepareExpr("NEW.age > 21 AND NEW.age < 100")
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	before := ParseCount()
	for i := 0; i < 100; i++ {
		m := value.Map(map[string]value.Value{"age": value.Int(int64(i))})
		ok, err := ce.EvalBool(tx, &Options{Bindings: map[string]value.Value{"NEW": m}})
		if err != nil {
			t.Fatal(err)
		}
		if want := i > 21 && i < 100; ok != want {
			t.Errorf("age %d: got %v", i, ok)
		}
	}
	if d := ParseCount() - before; d != 0 {
		t.Errorf("steady-state evaluations parsed %d time(s), want 0", d)
	}
}

// TestPlanRecompileOnStatsDrift verifies cheap invalidation: a plan compiled
// against small-graph statistics recompiles (without re-parsing) after the
// statistics drift past the 2x threshold, and not before.
func TestPlanRecompileOnStatsDrift(t *testing.T) {
	s := graph.NewStore()
	seed := func(n int) {
		err := s.Update(func(tx *graph.Tx) error {
			for i := 0; i < n; i++ {
				if _, err := tx.CreateNode([]string{"Big"}, map[string]value.Value{
					"i": value.Int(int64(i))}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seed(40)
	plan, err := Prepare("MATCH (b:Big) RETURN count(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	run := func() int64 {
		tx := s.Begin(graph.ReadOnly)
		defer tx.Rollback()
		res, err := plan.Execute(tx, nil)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		return n
	}
	if got := run(); got != 40 {
		t.Fatalf("count = %d", got)
	}
	parses := ParseCount()
	compiled := PlansCompiled()
	if got := run(); got != 40 { // warm: no drift, no recompile
		t.Fatalf("count = %d", got)
	}
	if d := PlansCompiled() - compiled; d != 0 {
		t.Errorf("stable stats recompiled %d time(s)", d)
	}
	seed(400) // 40 -> 440 nodes: past the 2x drift threshold
	if got := run(); got != 440 {
		t.Fatalf("count after growth = %d", got)
	}
	if d := PlansCompiled() - compiled; d != 1 {
		t.Errorf("drift recompiled %d time(s), want 1", d)
	}
	if d := ParseCount() - parses; d != 0 {
		t.Errorf("recompile parsed %d time(s), want 0", d)
	}
}

func TestPlanCacheBasics(t *testing.T) {
	c := NewPlanCache(64)
	p1, err := c.Get("RETURN 1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get("RETURN 1")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("repeat lookup should return the cached plan")
	}
	if _, err := c.Get("RETURN ]"); err == nil {
		t.Error("parse error should surface")
	}
	st := c.Stats()
	if st.Size != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want size 1, hits 1, misses 2", st)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	// Capacity 16 with 16 shards -> one plan per shard; hammering many
	// distinct queries must keep the cache bounded and count evictions.
	c := NewPlanCache(16)
	for i := 0; i < 200; i++ {
		if _, err := c.Get(fmt.Sprintf("RETURN %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 16 {
		t.Errorf("cache holds %d plans, capacity 16", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("no evictions counted")
	}
}

// TestPlanCacheConcurrent hammers one cache from many goroutines mixing
// repeat queries (hits), a churning tail (misses + evictions) and executions
// of the returned plans. Run under -race this is the lock-free lookup path's
// soundness check.
func TestPlanCacheConcurrent(t *testing.T) {
	s := testGraph(t)
	c := NewPlanCache(32)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := s.Begin(graph.ReadOnly)
			defer tx.Rollback()
			for i := 0; i < 300; i++ {
				query := "MATCH (p:Person) RETURN count(*) AS n"
				if i%3 == 0 {
					query = fmt.Sprintf("RETURN %d + %d AS x", g, i%7)
				}
				plan, err := c.Get(query)
				if err != nil {
					errs <- err
					return
				}
				res, err := plan.Execute(tx, nil)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("rows = %d", len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*300 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*300)
	}
	if st.Hits == 0 {
		t.Error("no cache hits under repetition")
	}
}

// TestPlanCacheConcurrentSameQuery races every goroutine on one cold query:
// all must converge on working plans with exactly one cache entry.
func TestPlanCacheConcurrentSameQuery(t *testing.T) {
	s := testGraph(t)
	c := NewPlanCache(0)
	const goroutines = 8
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			tx := s.Begin(graph.ReadOnly)
			defer tx.Rollback()
			for i := 0; i < 100; i++ {
				plan, err := c.Get("MATCH (p:Person) WHERE p.age > 20 RETURN count(*) AS n")
				if err != nil {
					errs <- err
					return
				}
				res, err := plan.Execute(tx, nil)
				if err != nil {
					errs <- err
					return
				}
				if n, _ := res.Rows[0][0].AsInt(); n != 3 {
					errs <- fmt.Errorf("count = %d, want 3", n)
					return
				}
			}
		}()
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := c.Len(); n != 1 {
		t.Errorf("cache entries = %d, want 1", n)
	}
}

// TestExplainStatement runs an EXPLAIN-prefixed query through the normal
// execution path and checks it returns the plan instead of results.
func TestExplainStatement(t *testing.T) {
	s := testGraph(t)
	if err := s.CreateIndex("Person", "name"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	res, err := Run(tx, "EXPLAIN MATCH (p:Person {name: 'Alice'}) RETURN p.age", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	var out strings.Builder
	for _, r := range res.Rows {
		sv, _ := r[0].AsString()
		out.WriteString(sv)
		out.WriteByte('\n')
	}
	for _, want := range []string{"MATCH", "via index (Person.name)", "RETURN", "plan variants compiled"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explain output missing %q:\n%s", want, out.String())
		}
	}
	// EXPLAIN must not execute: a write statement explained leaves no trace.
	res, err = Run(tx, "EXPLAIN CREATE (:Ghost)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesCreated != 0 || tx.CountByLabel("Ghost") != 0 {
		t.Error("EXPLAIN executed the statement")
	}
}

// BenchmarkExecutePrepared measures the steady-state hot path: plan-cache
// hit plus compiled execution. Parser allocations must be zero here — the
// companion check is TestPreparedSteadyStateNoParse; allocs/op in this
// benchmark bound the whole per-event overhead.
func BenchmarkExecutePrepared(b *testing.B) {
	s := benchGraph(b)
	c := NewPlanCache(0)
	query := "MATCH (p:Person) WHERE p.age > $min RETURN count(*) AS n"
	opts := &Options{Params: map[string]value.Value{"min": value.Int(25)}}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	if _, err := c.Get(query); err != nil {
		b.Fatal(err)
	}
	parses := ParseCount()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := c.Get(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Execute(tx, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := ParseCount() - parses; d != 0 {
		b.Fatalf("hot path parsed %d time(s)", d)
	}
}

// BenchmarkExecuteCold measures the legacy behavior for contrast: parse and
// compile on every execution.
func BenchmarkExecuteCold(b *testing.B) {
	s := benchGraph(b)
	query := "MATCH (p:Person) WHERE p.age > $min RETURN count(*) AS n"
	opts := &Options{Params: map[string]value.Value{"min": value.Int(25)}}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tx, query, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGraph(b *testing.B) *graph.Store {
	b.Helper()
	s := graph.NewStore()
	err := s.Update(func(tx *graph.Tx) error {
		for i := 0; i < 100; i++ {
			if _, err := tx.CreateNode([]string{"Person"}, map[string]value.Value{
				"age": value.Int(int64(20 + i%40))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}
