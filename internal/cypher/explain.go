package cypher

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Explain renders a static description of how a statement would execute:
// the clause pipeline, and for each MATCH pattern the access path the
// matcher would choose for its anchor (index lookup, label scan, or full
// scan) given the store's current indexes and statistics.
func Explain(tx *graph.Tx, stmt *Statement) string {
	ctx := &evalCtx{tx: tx, query: stmt.Query}
	var sb strings.Builder
	en := newEnv()
	for i, cl := range stmt.Clauses {
		fmt.Fprintf(&sb, "%d. ", i+1)
		switch c := cl.(type) {
		case *MatchClause:
			kw := "MATCH"
			if c.Optional {
				kw = "OPTIONAL MATCH"
			}
			fmt.Fprintf(&sb, "%s\n", kw)
			for _, p := range c.Patterns {
				cp := compilePattern(en, p)
				m := &matcher{ctx: ctx, en: en, cp: cp}
				anchor := m.chooseAnchor(make(row, len(en.names)))
				fmt.Fprintf(&sb, "   pattern %s\n", describePattern(p))
				fmt.Fprintf(&sb, "   anchor: %s\n", describeAnchor(ctx, p, cp, anchor))
			}
			if c.Where != nil {
				sb.WriteString("   filter: WHERE\n")
			}
		case *UnwindClause:
			fmt.Fprintf(&sb, "UNWIND … AS %s\n", c.Var)
			en = en.clone()
			en.add(c.Var)
		case *WithClause:
			fmt.Fprintf(&sb, "WITH (%s)\n", describeProjection(c.Items, c.Star, c.Distinct, c.OrderBy != nil))
			en = projectionEnv(en, c.Items, c.Star)
		case *ReturnClause:
			fmt.Fprintf(&sb, "RETURN (%s)\n", describeProjection(c.Items, c.Star, c.Distinct, c.OrderBy != nil))
		case *CreateClause:
			fmt.Fprintf(&sb, "CREATE %d pattern(s)\n", len(c.Patterns))
			for _, p := range c.Patterns {
				compilePattern(en, p)
			}
		case *MergeClause:
			fmt.Fprintf(&sb, "MERGE %s\n", describePattern(c.Pattern))
			compilePattern(en, c.Pattern)
		case *DeleteClause:
			kw := "DELETE"
			if c.Detach {
				kw = "DETACH DELETE"
			}
			fmt.Fprintf(&sb, "%s %d expression(s)\n", kw, len(c.Exprs))
		case *ForeachClause:
			fmt.Fprintf(&sb, "FOREACH %s IN … (%d update clause(s))\n", c.Var, len(c.Body))
		case *SetClause:
			fmt.Fprintf(&sb, "SET %d item(s)\n", len(c.Items))
		case *RemoveClause:
			fmt.Fprintf(&sb, "REMOVE %d item(s)\n", len(c.Items))
		}
	}
	for i, b := range stmt.Unions {
		joint := "UNION"
		if b.All {
			joint = "UNION ALL"
		}
		fmt.Fprintf(&sb, "%s (branch %d: %d clause(s))\n", joint, i+2, len(b.Clauses))
	}
	return sb.String()
}

func projectionEnv(en *env, items []*ReturnItem, star bool) *env {
	ne := newEnv()
	if star {
		for _, n := range en.names {
			ne.add(n)
		}
	}
	for _, it := range items {
		ne.add(itemName(it))
	}
	return ne
}

func describeProjection(items []*ReturnItem, star, distinct, ordered bool) string {
	var parts []string
	if distinct {
		parts = append(parts, "DISTINCT")
	}
	if star {
		parts = append(parts, "*")
	}
	parts = append(parts, fmt.Sprintf("%d item(s)", len(items)))
	if ordered {
		parts = append(parts, "ORDER BY")
	}
	return strings.Join(parts, " ")
}

func describePattern(p *PatternPart) string {
	var sb strings.Builder
	for i, n := range p.Nodes {
		sb.WriteByte('(')
		sb.WriteString(n.Var)
		for _, l := range n.Labels {
			sb.WriteByte(':')
			sb.WriteString(l)
		}
		sb.WriteByte(')')
		if i < len(p.Rels) {
			r := p.Rels[i]
			arrow := "-"
			if r.Dir == DirLeft {
				arrow = "<-"
			}
			sb.WriteString(arrow)
			if len(r.Types) > 0 || r.VarHops {
				sb.WriteString("[")
				sb.WriteString(strings.Join(r.Types, "|"))
				if r.VarHops {
					sb.WriteString("*")
				}
				sb.WriteString("]")
			}
			if r.Dir == DirRight {
				sb.WriteString("->")
			} else {
				sb.WriteString("-")
			}
		}
	}
	return sb.String()
}

func describeAnchor(ctx *evalCtx, p *PatternPart, cp *compiledPattern, anchor int) string {
	np := p.Nodes[anchor]
	pos := fmt.Sprintf("node %d", anchor)
	for key := range np.Props {
		for _, l := range np.Labels {
			if ctx.tx.HasIndex(l, key) {
				return fmt.Sprintf("%s via index (%s.%s)", pos, l, key)
			}
		}
	}
	if len(np.Labels) > 0 {
		best := np.Labels[0]
		for _, l := range np.Labels[1:] {
			if ctx.tx.CountByLabel(l) < ctx.tx.CountByLabel(best) {
				best = l
			}
		}
		return fmt.Sprintf("%s via label scan :%s (%d nodes)", pos, best, ctx.tx.CountByLabel(best))
	}
	return fmt.Sprintf("%s via full scan (%d nodes)", pos, ctx.tx.NodeCount())
}
