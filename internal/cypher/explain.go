package cypher

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/value"
)

// Explain renders a description of the physical plan the compiler chooses
// for a statement against the store's current indexes and statistics: the
// clause pipeline, and for each MATCH the pattern execution order and the
// access path (index lookup, label scan, or full scan) with its estimated
// cardinality. The same costing code that plans execution produces the
// description.
func Explain(tx graph.ReadView, stmt *Statement) string {
	lines := explainLines(tx, stmt)
	return strings.Join(lines, "\n") + "\n"
}

// explainResult is what executing an EXPLAIN-prefixed statement returns:
// one "plan" column with a line per row.
func (p *Plan) explainResult(tx graph.ReadView, v *planVariant) *Result {
	lines := explainLines(tx, p.stmt)
	lines = append(lines, fmt.Sprintf("plan variants compiled: %d", p.Variants()))
	rows := make([][]value.Value, len(lines))
	for i, l := range lines {
		rows[i] = []value.Value{value.Str(l)}
	}
	_ = v
	return &Result{Columns: []string{"plan"}, Rows: rows}
}

func explainLines(tx graph.ReadView, stmt *Statement) []string {
	var lines []string
	lines = append(lines, explainBranch(tx, stmt, stmt.Clauses)...)
	for i, b := range stmt.Unions {
		joint := "UNION"
		if b.All {
			joint = "UNION ALL"
		}
		lines = append(lines, fmt.Sprintf("%s (branch %d)", joint, i+2))
		lines = append(lines, explainBranch(tx, stmt, b.Clauses)...)
	}
	return lines
}

// explainBranch walks one clause pipeline with the same slot assignment and
// access-path planning the compiler performs, emitting a line per step.
func explainBranch(tx graph.ReadView, stmt *Statement, clauses []Clause) []string {
	cc := &compileCtx{query: stmt.Query, tx: tx, snap: newStatsSnapshot()}
	en := newEnv()
	var lines []string
	if fc := compileFastCount(cc, clauses); fc != nil {
		switch fc.kind {
		case fcTotal:
			lines = append(lines, "fast count: total nodes (count store)")
		case fcLabel:
			lines = append(lines, fmt.Sprintf("fast count: label :%s (count store)", fc.label))
		default:
			lines = append(lines, fmt.Sprintf("fast count: :%s.%s (property count store)", fc.label, fc.key))
		}
	}
	for i, cl := range clauses {
		prefix := fmt.Sprintf("%d. ", i+1)
		switch c := cl.(type) {
		case *MatchClause:
			kw := "MATCH"
			if c.Optional {
				kw = "OPTIONAL MATCH"
			}
			lines = append(lines, prefix+kw)
			parent := en
			en = en.clone()
			cps := make([]*compiledPattern, len(c.Patterns))
			for j, p := range c.Patterns {
				cps[j] = patternSlots(en, p)
			}
			planned := true
			for _, cp := range cps {
				if err := compilePatternBody(cc, en, cp); err != nil {
					lines = append(lines, "   plan error: "+err.Error())
					planned = false
					break
				}
			}
			if !planned {
				continue
			}
			order := orderPatterns(parent, en, cps)
			for rank, idx := range order {
				cp := cps[idx]
				lines = append(lines, fmt.Sprintf("   pattern %d/%d %s",
					rank+1, len(order), describePattern(cp.part)))
				lines = append(lines, "   "+describeAccess(&cp.access))
			}
			if c.Where != nil {
				lines = append(lines, "   filter: WHERE")
			}
		case *UnwindClause:
			lines = append(lines, fmt.Sprintf("%sUNWIND … AS %s", prefix, c.Var))
			en = en.clone()
			en.add(c.Var)
		case *WithClause:
			lines = append(lines, fmt.Sprintf("%sWITH (%s)", prefix,
				describeProjection(c.Items, c.Star, c.Distinct, c.OrderBy != nil)))
			en = projectionEnv(en, c.Items, c.Star)
		case *ReturnClause:
			lines = append(lines, fmt.Sprintf("%sRETURN (%s)", prefix,
				describeProjection(c.Items, c.Star, c.Distinct, c.OrderBy != nil)))
		case *CreateClause:
			lines = append(lines, fmt.Sprintf("%sCREATE %d pattern(s)", prefix, len(c.Patterns)))
			en = en.clone()
			for _, p := range c.Patterns {
				patternSlots(en, p)
			}
		case *MergeClause:
			lines = append(lines, fmt.Sprintf("%sMERGE %s", prefix, describePattern(c.Pattern)))
			en = en.clone()
			cp := patternSlots(en, c.Pattern)
			if err := compilePatternBody(cc, en, cp); err == nil {
				lines = append(lines, "   "+describeAccess(&cp.access))
			}
		case *DeleteClause:
			kw := "DELETE"
			if c.Detach {
				kw = "DETACH DELETE"
			}
			lines = append(lines, fmt.Sprintf("%s%s %d expression(s)", prefix, kw, len(c.Exprs)))
		case *ForeachClause:
			lines = append(lines, fmt.Sprintf("%sFOREACH %s IN … (%d update clause(s))",
				prefix, c.Var, len(c.Body)))
		case *SetClause:
			lines = append(lines, fmt.Sprintf("%sSET %d item(s)", prefix, len(c.Items)))
		case *RemoveClause:
			lines = append(lines, fmt.Sprintf("%sREMOVE %d item(s)", prefix, len(c.Items)))
		}
	}
	return lines
}

func describeAccess(ap *accessPlan) string {
	switch ap.kind {
	case accessIndex:
		return fmt.Sprintf("anchor: node %d via index (%s.%s), est 1 row", ap.anchor, ap.label, ap.key)
	case accessLabel:
		return fmt.Sprintf("anchor: node %d via label scan :%s, est %d rows", ap.anchor, ap.label, ap.est)
	default:
		return fmt.Sprintf("anchor: node %d via full scan, est %d rows", ap.anchor, ap.est)
	}
}

func projectionEnv(en *env, items []*ReturnItem, star bool) *env {
	ne := newEnv()
	if star {
		for _, n := range en.names {
			ne.add(n)
		}
	}
	for _, it := range items {
		ne.add(itemName(it))
	}
	return ne
}

func describeProjection(items []*ReturnItem, star, distinct, ordered bool) string {
	var parts []string
	if distinct {
		parts = append(parts, "DISTINCT")
	}
	if star {
		parts = append(parts, "*")
	}
	parts = append(parts, fmt.Sprintf("%d item(s)", len(items)))
	if ordered {
		parts = append(parts, "ORDER BY")
	}
	return strings.Join(parts, " ")
}

func describePattern(p *PatternPart) string {
	var sb strings.Builder
	for i, n := range p.Nodes {
		sb.WriteByte('(')
		sb.WriteString(n.Var)
		for _, l := range n.Labels {
			sb.WriteByte(':')
			sb.WriteString(l)
		}
		sb.WriteByte(')')
		if i < len(p.Rels) {
			r := p.Rels[i]
			arrow := "-"
			if r.Dir == DirLeft {
				arrow = "<-"
			}
			sb.WriteString(arrow)
			if len(r.Types) > 0 || r.VarHops {
				sb.WriteString("[")
				sb.WriteString(strings.Join(r.Types, "|"))
				if r.VarHops {
					sb.WriteString("*")
				}
				sb.WriteString("]")
			}
			if r.Dir == DirRight {
				sb.WriteString("->")
			} else {
				sb.WriteString("-")
			}
		}
	}
	return sb.String()
}
