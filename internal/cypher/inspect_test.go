package cypher

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestInspectReadFootprint(t *testing.T) {
	stmt := mustParse(t, `MATCH (s:Sequence)-[:SequencedAt]->(l:Lab)-[:LocatedIn]->(r:Region)
	                     WHERE (s)-[:AssignedTo]->(:Variant) AND s.id STARTS WITH 'x'
	                     RETURN r.name, count(s)`)
	info := Inspect(stmt)
	wantLabels := []string{"Lab", "Region", "Sequence", "Variant"}
	if !reflect.DeepEqual(info.MatchedNodeLabels, wantLabels) {
		t.Errorf("labels = %v", info.MatchedNodeLabels)
	}
	wantRels := []string{"AssignedTo", "LocatedIn", "SequencedAt"}
	if !reflect.DeepEqual(info.MatchedRelTypes, wantRels) {
		t.Errorf("rel types = %v", info.MatchedRelTypes)
	}
	if len(info.CreatedNodeLabels) != 0 || info.Deletes {
		t.Error("read-only query should have no write footprint")
	}
}

func TestInspectWriteFootprint(t *testing.T) {
	stmt := mustParse(t, `MATCH (a:A)
	                     CREATE (a)-[:Linked]->(b:B)
	                     MERGE (c:Counter {id: 1}) ON CREATE SET c.v = 0 ON MATCH SET c:Seen
	                     SET a.touched = true, a += {x: 1}
	                     REMOVE a.old, a:Stale
	                     DETACH DELETE b`)
	info := Inspect(stmt)
	if !reflect.DeepEqual(info.CreatedNodeLabels, []string{"B", "Counter"}) {
		t.Errorf("created labels = %v", info.CreatedNodeLabels)
	}
	if !reflect.DeepEqual(info.CreatedRelTypes, []string{"Linked"}) {
		t.Errorf("created rels = %v", info.CreatedRelTypes)
	}
	if !reflect.DeepEqual(info.SetLabels, []string{"Seen"}) {
		t.Errorf("set labels = %v", info.SetLabels)
	}
	// SetProp keys: touched, v, and "*" from the += form.
	if !reflect.DeepEqual(info.SetPropKeys, []string{"*", "touched", "v"}) {
		t.Errorf("set props = %v", info.SetPropKeys)
	}
	if !reflect.DeepEqual(info.RemovedPropKeys, []string{"old"}) {
		t.Errorf("removed props = %v", info.RemovedPropKeys)
	}
	if !reflect.DeepEqual(info.RemovedLabels, []string{"Stale"}) {
		t.Errorf("removed labels = %v", info.RemovedLabels)
	}
	if !info.Deletes {
		t.Error("DELETE not detected")
	}
}

func TestInspectExprPatternPredicate(t *testing.T) {
	e, err := ParseExpr("(NEW)-[:HasEffect]->(:Effect {level: 'critical'}) AND NEW.x IN [1,2]")
	if err != nil {
		t.Fatal(err)
	}
	info := InspectExpr(e)
	if !reflect.DeepEqual(info.MatchedNodeLabels, []string{"Effect"}) {
		t.Errorf("labels = %v", info.MatchedNodeLabels)
	}
	if !reflect.DeepEqual(info.MatchedRelTypes, []string{"HasEffect"}) {
		t.Errorf("rel types = %v", info.MatchedRelTypes)
	}
}

func TestInspectNestedExpressions(t *testing.T) {
	stmt := mustParse(t, `UNWIND [x IN range(1, 3) | x] AS i
	                     RETURN CASE WHEN (n:Deep) THEN 1 ELSE reduce(a = 0, y IN [1] | a + y) END`)
	info := Inspect(stmt)
	if !reflect.DeepEqual(info.MatchedNodeLabels, []string{"Deep"}) {
		t.Errorf("labels through case/pattern = %v", info.MatchedNodeLabels)
	}
	e, err := ParseExpr("all(x IN xs WHERE (x)-[:Rel]->(:Target))")
	if err != nil {
		t.Fatal(err)
	}
	info = InspectExpr(e)
	if !reflect.DeepEqual(info.MatchedNodeLabels, []string{"Target"}) {
		t.Errorf("labels through quantifier = %v", info.MatchedNodeLabels)
	}
}

func TestExplain(t *testing.T) {
	s := testGraph(t)
	if err := s.CreateIndex("Person", "name"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	stmt := mustParse(t, `MATCH (p:Person {name: 'Alice'})-[:KNOWS]->(f)
	                     WHERE f.age > 20
	                     WITH f.name AS name ORDER BY name
	                     RETURN DISTINCT name`)
	out := Explain(tx, stmt)
	for _, want := range []string{
		"MATCH", "via index (Person.name)", "filter: WHERE",
		"WITH", "ORDER BY", "RETURN (DISTINCT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Label scan and full scan paths.
	stmt = mustParse(t, "MATCH (c:Company) RETURN c")
	if out := Explain(tx, stmt); !strings.Contains(out, "label scan :Company, est 1 rows") {
		t.Errorf("label scan:\n%s", out)
	}
	stmt = mustParse(t, "MATCH (n) RETURN n")
	if out := Explain(tx, stmt); !strings.Contains(out, "full scan") {
		t.Errorf("full scan:\n%s", out)
	}
	// Write clauses render too.
	stmt = mustParse(t, `MATCH (a:Person) CREATE (a)-[:X]->(:Y)
	                    MERGE (c:Counter {id: 1}) SET c.v = 1 REMOVE c.old DETACH DELETE c`)
	out = Explain(tx, stmt)
	for _, want := range []string{"CREATE 1 pattern", "MERGE", "SET 1 item", "REMOVE 1 item", "DETACH DELETE"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	stmt = mustParse(t, "UNWIND [1,2] AS x RETURN x")
	if out := Explain(tx, stmt); !strings.Contains(out, "UNWIND") {
		t.Errorf("unwind:\n%s", out)
	}
}
