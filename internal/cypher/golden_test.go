package cypher

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/cypher/cyphertest"
	"repro/internal/graph"
	"repro/internal/value"
)

// The golden corpus pins the observable behavior of the query engine: every
// case was executed once against the legacy tree-walking interpreter (before
// the compiled pipeline replaced it) and its results were recorded in
// testdata/golden.json. TestGolden re-runs the corpus through the current
// engine and requires identical results, so the compiled path is equivalence-
// tested against the retired interpreter, not merely against itself.
//
// Regenerate (only when intentionally changing semantics) with:
//
//	RKM_GOLDEN_REGEN=1 go test ./internal/cypher -run TestGolden
const goldenPath = "testdata/golden.json"

var goldenNow = cyphertest.Now

// goldenFixture builds the deterministic graph every read-only case runs
// against (write cases rebuild it per case). IDs are assigned in creation
// order, so renderings are stable across runs and engines.
func goldenFixture(t testing.TB) *graph.Store {
	t.Helper()
	s := graph.NewStore()
	if err := s.CreateIndex("Person", "name"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("City", "code"); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *graph.Tx) error {
		mk := func(labels []string, props map[string]value.Value) graph.NodeID {
			id, err := tx.CreateNode(labels, props)
			if err != nil {
				t.Fatal(err)
			}
			return id
		}
		rel := func(a, b graph.NodeID, typ string, props map[string]value.Value) {
			if _, err := tx.CreateRel(a, b, typ, props); err != nil {
				t.Fatal(err)
			}
		}
		ada := mk([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Ada"), "age": value.Int(36), "score": value.Float(9.5)})
		bob := mk([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Bob"), "age": value.Int(41)})
		cyd := mk([]string{"Person", "Admin"}, map[string]value.Value{
			"name": value.Str("Cyd"), "age": value.Int(29), "nick": value.Str("cy")})
		dee := mk([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Dee"), "age": value.Int(29)})
		lon := mk([]string{"City"}, map[string]value.Value{
			"code": value.Str("LON"), "pop": value.Int(9000000)})
		par := mk([]string{"City"}, map[string]value.Value{
			"code": value.Str("PAR"), "pop": value.Int(2100000)})
		rey := mk([]string{"City"}, map[string]value.Value{
			"code": value.Str("REY"), "pop": value.Int(130000)})
		rel(ada, bob, "KNOWS", map[string]value.Value{"since": value.Int(2019)})
		rel(bob, cyd, "KNOWS", map[string]value.Value{"since": value.Int(2021)})
		rel(cyd, dee, "KNOWS", nil)
		rel(ada, cyd, "WORKS_WITH", map[string]value.Value{"hours": value.Int(12)})
		rel(ada, lon, "LIVES_IN", nil)
		rel(bob, par, "LIVES_IN", nil)
		rel(cyd, par, "LIVES_IN", nil)
		rel(dee, rey, "LIVES_IN", nil)
		rel(lon, par, "ROUTE", map[string]value.Value{"km": value.Int(344)})
		rel(par, rey, "ROUTE", map[string]value.Value{"km": value.Int(2237)})
		for i := 0; i < 5; i++ {
			mk([]string{"Widget"}, map[string]value.Value{"n": value.Int(int64(i))})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// goldenCase aliases the shared corpus entry; the table itself lives in the
// cyphertest package so internal/core's sharded parity test can run the same
// corpus against a multi-hub ShardedKB.
type goldenCase = cyphertest.Case

func goldenCases() []goldenCase { return cyphertest.Cases() }

type goldenResult struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    []string `json:"rows"`
	Stats   string   `json:"stats,omitempty"`
	State   []string `json:"state,omitempty"`
}

// floatToken matches rendered floating-point literals inside row dumps.
var floatToken = regexp.MustCompile(`-?\d+\.\d+(?:[eE][+-]?\d+)?`)

// normalizeFloats rounds every float literal in a rendered row string to 12
// significant digits. Aggregates like stdev() accumulate in enumeration
// order, and the cost-based planner may enumerate nodes in a different order
// than the legacy interpreter the corpus was recorded from; the results can
// differ in the last ulp without being wrong.
func normalizeFloats(s string) string {
	return floatToken.ReplaceAllStringFunc(s, func(tok string) string {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return tok
		}
		return strconv.FormatFloat(f, 'g', 12, 64)
	})
}

func renderRows(res *Result, ordered bool) []string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		s := "["
		for j, v := range r {
			if j > 0 {
				s += ", "
			}
			s += v.String()
		}
		rows[i] = s + "]"
	}
	if !ordered {
		sort.Strings(rows)
	}
	return rows
}

// dumpState renders every node and relationship, sorted by ID, for write-case
// equivalence checking.
func dumpState(tx *graph.Tx) []string {
	var out []string
	ids := tx.AllNodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		labels, _ := tx.NodeLabels(id)
		sort.Strings(labels)
		n, _ := tx.Node(id)
		props := value.Map(n.Props)
		line := fmt.Sprintf("n%d %v %s", id, labels, props.String())
		out = append(out, line)
		type relLine struct {
			id   graph.RelID
			text string
		}
		var rels []relLine
		for _, h := range tx.RelsOf(id, graph.Outgoing, nil) {
			r, _ := tx.Rel(h.ID)
			props := value.Map(r.Props)
			rels = append(rels, relLine{h.ID, fmt.Sprintf("r%d n%d-[%s %s]->n%d",
				h.ID, id, h.Type, props.String(), h.Other(id))})
		}
		sort.Slice(rels, func(i, j int) bool { return rels[i].id < rels[j].id })
		for _, r := range rels {
			out = append(out, r.text)
		}
	}
	return out
}

func runGoldenCase(t *testing.T, gc goldenCase) goldenResult {
	t.Helper()
	s := goldenFixture(t)
	opts := &Options{Params: gc.Params, Bindings: gc.Bind, Now: func() time.Time { return goldenNow }}
	out := goldenResult{Name: gc.Name}
	if gc.Write {
		err := s.Update(func(tx *graph.Tx) error {
			res, err := Run(tx, gc.Query, opts)
			if err != nil {
				return err
			}
			out.Columns = res.Columns
			out.Rows = renderRows(res, gc.Ordered)
			out.Stats = fmt.Sprintf("%+v", res.Stats)
			out.State = dumpState(tx)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", gc.Name, err)
		}
		return out
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	res, err := Run(tx, gc.Query, opts)
	if err != nil {
		t.Fatalf("%s: %v", gc.Name, err)
	}
	out.Columns = res.Columns
	out.Rows = renderRows(res, gc.Ordered)
	return out
}

// TestGolden checks the current engine against the recorded behavior of the
// legacy tree-walking interpreter. Set RKM_GOLDEN_REGEN=1 to re-record.
func TestGolden(t *testing.T) {
	cases := goldenCases()
	if os.Getenv("RKM_GOLDEN_REGEN") != "" {
		var all []goldenResult
		for _, gc := range cases {
			all = append(all, runGoldenCase(t, gc))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: recorded %d cases", len(all))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden corpus missing (generate with RKM_GOLDEN_REGEN=1): %v", err)
	}
	var want []goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenResult, len(want))
	for _, w := range want {
		byName[w.Name] = w
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			w, ok := byName[gc.Name]
			if !ok {
				t.Fatalf("case %s not in golden corpus; regenerate", gc.Name)
			}
			got := runGoldenCase(t, gc)
			if fmt.Sprintf("%v", got.Columns) != fmt.Sprintf("%v", w.Columns) {
				t.Errorf("columns: got %v want %v", got.Columns, w.Columns)
			}
			if normalizeFloats(fmt.Sprintf("%v", got.Rows)) != normalizeFloats(fmt.Sprintf("%v", w.Rows)) {
				t.Errorf("rows:\n got %v\nwant %v", got.Rows, w.Rows)
			}
			if got.Stats != w.Stats {
				t.Errorf("stats: got %s want %s", got.Stats, w.Stats)
			}
			if fmt.Sprintf("%v", got.State) != fmt.Sprintf("%v", w.State) {
				t.Errorf("state:\n got %v\nwant %v", got.State, w.State)
			}
		})
	}
}
