package cypher

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

const cacheShards = 16

// cacheEntry pairs a prepared plan with its last-touched generation for
// approximate LRU eviction.
type cacheEntry struct {
	plan *Plan
	gen  atomic.Int64
}

type cacheShard struct {
	m  atomic.Pointer[map[string]*cacheEntry] // copy-on-write; readers never lock
	mu sync.Mutex                             // serializes writers
}

// PlanCache is a sharded, lock-free-on-read cache from query text to
// prepared Plans. Hits touch only two atomics, so concurrent lookups from
// many event-processing goroutines never contend; insertions copy the
// shard's map under its writer lock. Eviction is approximate LRU by touch
// generation, per shard.
type PlanCache struct {
	shards   [cacheShards]cacheShard
	perShard int
	gen      atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mEvictions *metrics.Counter
}

// NewPlanCache returns a cache holding roughly capacity plans (split across
// shards). capacity <= 0 selects the default of 1024.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 1024
	}
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &PlanCache{perShard: per}
	for i := range c.shards {
		empty := make(map[string]*cacheEntry)
		c.shards[i].m.Store(&empty)
	}
	return c
}

// SetMetrics mirrors hit/miss/eviction counts into the given counters
// (rkm_cypher_plan_cache_*). Nil counters are no-ops.
func (c *PlanCache) SetMetrics(hits, misses, evictions *metrics.Counter) {
	c.mHits, c.mMisses, c.mEvictions = hits, misses, evictions
}

func cacheHash(s string) uint32 {
	// FNV-1a.
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Get returns the prepared Plan for query, parsing it on first sight.
// Parse errors are returned and not cached.
func (c *PlanCache) Get(query string) (*Plan, error) {
	sh := &c.shards[cacheHash(query)%cacheShards]
	if e, ok := (*sh.m.Load())[query]; ok {
		e.gen.Store(c.gen.Add(1))
		c.hits.Add(1)
		c.mHits.Inc()
		return e.plan, nil
	}
	c.misses.Add(1)
	c.mMisses.Inc()
	plan, err := Prepare(query)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.m.Load()
	if e, ok := old[query]; ok {
		// Another writer inserted it while we parsed.
		e.gen.Store(c.gen.Add(1))
		return e.plan, nil
	}
	next := make(map[string]*cacheEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	e := &cacheEntry{plan: plan}
	e.gen.Store(c.gen.Add(1))
	next[query] = e
	for len(next) > c.perShard {
		oldestKey, oldestGen := "", int64(1)<<62
		for k, v := range next {
			if g := v.gen.Load(); g < oldestGen {
				oldestKey, oldestGen = k, g
			}
		}
		delete(next, oldestKey)
		c.evictions.Add(1)
		c.mEvictions.Inc()
	}
	sh.m.Store(&next)
	return plan, nil
}

// Len reports how many plans the cache currently holds.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		n += len(*c.shards[i].m.Load())
	}
	return n
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Size      int
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	return PlanCacheStats{
		Size:      c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
