package cypher

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestStdevAggregate(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "UNWIND [2, 4, 4, 4, 5, 5, 7, 9] AS x RETURN stdev(x)", nil)
	got, _ := res.Rows[0][0].AsFloat()
	// Sample standard deviation of the classic data set: ~2.138.
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("stdev = %v", got)
	}
	// One sample → 0; no samples → null.
	res = q(t, s, "UNWIND [5] AS x RETURN stdev(x)", nil)
	if f, _ := res.Rows[0][0].AsFloat(); f != 0 {
		t.Errorf("stdev of one = %v", res.Rows[0][0])
	}
	res = q(t, s, "UNWIND [] AS x RETURN stdev(x)", nil)
	if !res.Rows[0][0].IsNull() {
		t.Error("stdev of none is null")
	}
	// Nulls are skipped.
	res = q(t, s, "UNWIND [1, null, 3] AS x RETURN stdev(x)", nil)
	got, _ = res.Rows[0][0].AsFloat()
	if math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stdev skipping nulls = %v", got)
	}
	qErr(t, s, "UNWIND ['a'] AS x RETURN stdev(x)")
}

func TestSumPromotionAndErrors(t *testing.T) {
	s := graph.NewStore()
	// All ints → INTEGER.
	res := q(t, s, "UNWIND [1, 2, 3] AS x RETURN sum(x)", nil)
	if res.Rows[0][0].Kind().String() != "INTEGER" {
		t.Errorf("int sum kind: %s", res.Rows[0][0].Kind())
	}
	// Any float → FLOAT.
	res = q(t, s, "UNWIND [1, 2.5] AS x RETURN sum(x)", nil)
	if res.Rows[0][0].String() != "3.5" {
		t.Errorf("mixed sum: %s", res.Rows[0][0])
	}
	qErr(t, s, "UNWIND ['a'] AS x RETURN sum(x)")
	qErr(t, s, "UNWIND ['a'] AS x RETURN avg(x)")
}

func TestMinMaxAcrossKinds(t *testing.T) {
	s := graph.NewStore()
	// min/max use the cross-kind total order; strings sort before numbers.
	res := q(t, s, "UNWIND ['z', 1, 2.5] AS x RETURN min(x), max(x)", nil)
	if res.Rows[0][0].String() != `"z"` || res.Rows[0][1].String() != "2.5" {
		t.Errorf("cross-kind min/max: %v", res.Rows[0])
	}
	// Nulls ignored entirely.
	res = q(t, s, "UNWIND [null, null] AS x RETURN min(x), max(x)", nil)
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Error("min/max of nulls")
	}
}

func TestCollectDistinct(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "UNWIND [1, 2, 2, null, 1] AS x RETURN collect(DISTINCT x)", nil)
	l, _ := res.Rows[0][0].AsList()
	if len(l) != 2 {
		t.Errorf("collect distinct: %s", res.Rows[0][0])
	}
	res = q(t, s, "UNWIND [1, 1, 2] AS x RETURN sum(DISTINCT x), count(DISTINCT x)", nil)
	if res.Rows[0][0].String() != "3" || res.Rows[0][1].String() != "2" {
		t.Errorf("distinct aggregates: %v", res.Rows[0])
	}
}

func TestAggregateArityError(t *testing.T) {
	s := graph.NewStore()
	qErr(t, s, "UNWIND [1] AS x RETURN sum(x, x)")
	qErr(t, s, "UNWIND [1] AS x RETURN sum()")
}

func TestGroupingWithNullKeys(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, `UNWIND [{k: 'a'}, {k: null}, {k: 'a'}, {k: null}] AS m
	               RETURN m.k AS k, count(*) AS n ORDER BY n DESC`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("null keys should group together: %v", res.Rows)
	}
	if res.Rows[0][1].String() != "2" || res.Rows[1][1].String() != "2" {
		t.Errorf("group sizes: %v", res.Rows)
	}
}

func TestMultipleAggregatesShareGroups(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, `UNWIND [1, 2, 3, 4] AS x
	               RETURN x % 2 AS parity, count(*) AS n, sum(x) AS total, avg(x) AS mean
	               ORDER BY parity`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// parity 0: {2,4} → n=2, total=6, mean=3.
	if res.Rows[0][1].String() != "2" || res.Rows[0][2].String() != "6" || res.Rows[0][3].String() != "3.0" {
		t.Errorf("even group: %v", res.Rows[0])
	}
}
