package cypher

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/value"
)

// plansCompiled counts physical-plan variants compiled process-wide; the
// metrics layer exposes it as rkm_cypher_plans_compiled_total.
var plansCompiled atomic.Int64

// PlansCompiled reports how many physical-plan variants this process has
// compiled (one per statement × binding shape, plus recompilations after
// statistics drift).
func PlansCompiled() int64 { return plansCompiled.Load() }

// Plan is an immutable prepared statement: the parsed AST plus lazily
// compiled physical variants, one per (binding shape, executing store).
// Compilation happens on first Execute (it needs a read view to cost access
// paths against); the compiled variant is cached inside the Plan and
// recompiled only when the statistics it was costed on drift. Variants are
// keyed per store because shared plans (a ShardedKB's cache serves every
// shard) execute against stores with independent cardinalities: one shard's
// anchor order can be pessimal — and its drift check meaningless — on
// another. Plans are safe for concurrent use.
type Plan struct {
	query    string
	stmt     *Statement
	variants atomic.Pointer[map[variantKey]*planVariant]
	mu       sync.Mutex // serializes variant compilation
}

// variantKey addresses one compiled physical plan: the sorted binding-name
// shape joined with \x1f, plus the identity of the store the variant was
// costed against (graph.ReadView.StoreKey).
type variantKey struct {
	shape string
	store any
}

// Prepare parses a query into a reusable Plan. This is the entry point of
// the staged pipeline: parse → (lazily, per binding shape) plan + compile.
func Prepare(query string) (*Plan, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return stmt.Prepared(), nil
}

// Prepared returns the Plan attached to this parsed statement, creating it
// on first use. Callers that cache Statements therefore share compiled
// plans automatically.
func (s *Statement) Prepared() *Plan {
	if p := s.plan.Load(); p != nil {
		return p
	}
	s.plan.CompareAndSwap(nil, newPlan(s))
	return s.plan.Load()
}

func newPlan(stmt *Statement) *Plan {
	p := &Plan{query: stmt.Query, stmt: stmt}
	empty := make(map[variantKey]*planVariant)
	p.variants.Store(&empty)
	return p
}

// Statement returns the parsed AST backing the plan.
func (p *Plan) Statement() *Statement { return p.stmt }

// Query returns the original query text.
func (p *Plan) Query() string { return p.query }

// Variants reports how many compiled binding-shape variants the plan holds.
func (p *Plan) Variants() int { return len(*p.variants.Load()) }

// Execute runs the plan against the given read view — a *graph.Tx for
// single-store execution (writes included), or a *graph.MultiView for
// lock-free cross-shard reads — compiling (or recompiling, on statistics
// drift) the variant for the (binding shape, store) pair first if needed.
// The hot path — plan already compiled, statistics stable — performs no
// parsing and no AST interpretation. Write clauses require a *graph.Tx and
// fail on any other view.
func (p *Plan) Execute(tx graph.ReadView, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	names := sortedBindingNames(opts.Bindings)
	v, err := p.variant(tx, names)
	if err != nil {
		return nil, err
	}
	if p.stmt.Explain {
		return p.explainResult(tx, v), nil
	}
	return v.run(tx, p.query, opts, names)
}

func (p *Plan) variant(tx graph.ReadView, bindNames []string) (*planVariant, error) {
	key := variantKey{shape: strings.Join(bindNames, "\x1f"), store: tx.StoreKey()}
	if m := p.variants.Load(); m != nil {
		if v, ok := (*m)[key]; ok && !v.snap.stale(tx) {
			return v, nil
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.variants.Load(); m != nil {
		if v, ok := (*m)[key]; ok && !v.snap.stale(tx) {
			return v, nil
		}
	}
	v, err := compileVariant(p.stmt, bindNames, tx)
	if err != nil {
		return nil, err
	}
	old := p.variants.Load()
	next := make(map[variantKey]*planVariant, len(*old)+1)
	for k, ov := range *old {
		next[k] = ov
	}
	next[key] = v
	p.variants.Store(&next)
	plansCompiled.Add(1)
	return v, nil
}

func sortedBindingNames(bindings map[string]value.Value) []string {
	if len(bindings) == 0 {
		return nil
	}
	names := make([]string, 0, len(bindings))
	for n := range bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// planVariant is one compiled physical plan: the statement lowered to
// closure pipelines for a specific binding shape, stamped with the
// statistics snapshot its access paths were costed on.
type planVariant struct {
	bindNames []string
	main      *compiledBranch
	unions    []unionBranchPlan
	snap      *statsSnapshot
}

type unionBranchPlan struct {
	all bool
	cb  *compiledBranch
}

func compileVariant(stmt *Statement, bindNames []string, tx graph.ReadView) (*planVariant, error) {
	snap := newStatsSnapshot()
	cc := &compileCtx{query: stmt.Query, tx: tx, snap: snap}
	main, err := compileBranch(cc, stmt.Clauses, bindNames)
	if err != nil {
		return nil, err
	}
	v := &planVariant{bindNames: bindNames, main: main, snap: snap}
	for _, b := range stmt.Unions {
		cb, err := compileBranch(cc, b.Clauses, bindNames)
		if err != nil {
			return nil, err
		}
		if len(cb.columns) != len(main.columns) {
			return nil, fmt.Errorf("cypher: UNION branches return different numbers of columns")
		}
		for i := range cb.columns {
			if cb.columns[i] != main.columns[i] {
				return nil, fmt.Errorf("cypher: UNION column mismatch: %s vs %s",
					main.columns[i], cb.columns[i])
			}
		}
		v.unions = append(v.unions, unionBranchPlan{all: b.All, cb: cb})
	}
	return v, nil
}

func (v *planVariant) run(tx graph.ReadView, query string, opts *Options, names []string) (*Result, error) {
	ctx := &evalCtx{tx: tx, params: opts.Params, now: opts.Now, query: query}
	ex := &executor{ctx: ctx}
	bindVals := make([]value.Value, len(names))
	for i, n := range names {
		bindVals[i] = opts.Bindings[n]
	}
	res, err := v.main.run(ex, bindVals)
	if err != nil {
		return nil, err
	}
	dedupe := false
	for _, ub := range v.unions {
		br, err := ub.cb.run(ex, bindVals)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, br.Rows...)
		if !ub.all {
			dedupe = true
		}
	}
	if dedupe {
		rows := make([]row, len(res.Rows))
		copy(rows, res.Rows)
		rows = dedupeRows(rows)
		res.Rows = res.Rows[:len(rows)]
		copy(res.Rows, rows)
	}
	res.Stats = ex.stats
	return res, nil
}

// clauseOp is one compiled clause: a row-set transformer. RETURN ops deposit
// their result on the executor instead of forwarding rows.
type clauseOp func(ex *executor, rows []row) ([]row, error)

// compiledBranch is one compiled clause pipeline (the main statement or one
// UNION branch).
type compiledBranch struct {
	width0  int // base row width (number of pre-bound variables)
	ops     []clauseOp
	columns []string // RETURN column names; nil for result-less branches
	fast    *fastCountPlan
}

func compileBranch(cc *compileCtx, clauses []Clause, bindNames []string) (*compiledBranch, error) {
	en := newEnv()
	for _, n := range bindNames {
		en.add(n)
	}
	cb := &compiledBranch{width0: len(bindNames)}
	cb.fast = compileFastCount(cc, clauses)
	for _, cl := range clauses {
		var op clauseOp
		var err error
		switch c := cl.(type) {
		case *MatchClause:
			en, op, err = compileMatch(cc, en, c)
		case *UnwindClause:
			en, op, err = compileUnwind(cc, en, c)
		case *WithClause:
			en, op, err = compileWith(cc, en, c)
		case *ReturnClause:
			op, cb.columns, err = compileReturn(cc, en, c)
		case *CreateClause:
			en, op, err = compileCreate(cc, en, c)
		case *ForeachClause:
			op, err = compileForeach(cc, en, c)
		case *MergeClause:
			en, op, err = compileMerge(cc, en, c)
		case *DeleteClause:
			op, err = compileDelete(cc, en, c)
		case *SetClause:
			op, err = compileSet(cc, en, c.Items)
		case *RemoveClause:
			op, err = compileRemove(cc, en, c)
		default:
			err = fmt.Errorf("cypher: unhandled clause %T", cl)
		}
		if err != nil {
			return nil, err
		}
		cb.ops = append(cb.ops, op)
	}
	return cb, nil
}

func (cb *compiledBranch) run(ex *executor, bindVals []value.Value) (*Result, error) {
	if cb.fast != nil {
		if res, ok, err := cb.fast.run(ex); err != nil {
			return nil, err
		} else if ok {
			return res, nil
		}
	}
	base := make(row, cb.width0)
	copy(base, bindVals)
	rows := []row{base}
	ex.result = nil
	var err error
	for _, op := range cb.ops {
		rows, err = op(ex, rows)
		if err != nil {
			return nil, err
		}
	}
	if ex.result == nil {
		return &Result{}, nil
	}
	return ex.result, nil
}

// ---- MATCH ----

func compileMatch(cc *compileCtx, en *env, c *MatchClause) (*env, clauseOp, error) {
	newEn := en.clone()
	cps := make([]*compiledPattern, len(c.Patterns))
	for i, p := range c.Patterns {
		cps[i] = patternSlots(newEn, p)
	}
	// Bodies compile against the full post-MATCH environment so a property
	// expression may reference any sibling pattern's variable (it evaluates
	// to NULL while unbound, matching nothing — same as the interpreter).
	for _, cp := range cps {
		if err := compilePatternBody(cc, newEn, cp); err != nil {
			return nil, nil, err
		}
	}
	order := orderPatterns(en, newEn, cps)
	var whereFn exprFn
	if c.Where != nil {
		var err error
		whereFn, err = compileExpr(cc, newEn, c.Where)
		if err != nil {
			return nil, nil, err
		}
	}
	width := len(newEn.names)
	optional := c.Optional
	op := func(ex *executor, rows []row) ([]row, error) {
		var out []row
		for _, r := range rows {
			base := make(row, width)
			copy(base, r)
			matched := false
			var matchFrom func(k int, cur row, used map[graph.RelID]bool) error
			matchFrom = func(k int, cur row, used map[graph.RelID]bool) error {
				if k == len(order) {
					if whereFn != nil {
						ok, err := truthy(ex.ctx, cur, whereFn)
						if err != nil {
							return err
						}
						if !ok {
							return nil
						}
					}
					matched = true
					out = append(out, cur)
					return nil
				}
				return matchPart(ex.ctx, cur, cps[order[k]], used, func(nr row) error {
					return matchFrom(k+1, nr, used)
				})
			}
			if err := matchFrom(0, base, make(map[graph.RelID]bool)); err != nil {
				return nil, err
			}
			if !matched && optional {
				out = append(out, base) // pattern variables stay NULL
			}
		}
		return out, nil
	}
	return newEn, op, nil
}

// orderPatterns picks the execution order of a MATCH clause's pattern parts
// by estimated cost: parts sharing a variable with what is already bound run
// as anchored joins (cheapest), then parts by their access-plan estimate.
// If any part's property expressions reference a sibling part's variables,
// source order is kept — reordering would change which references see bound
// values and thus the result.
func orderPatterns(parentEn, matchEn *env, cps []*compiledPattern) []int {
	order := make([]int, 0, len(cps))
	if len(cps) == 1 {
		return append(order, 0)
	}
	parentWidth := len(parentEn.names)
	siblingSlots := make(map[int]int) // slot → pattern index that introduces it
	for i, cp := range cps {
		for _, s := range cp.slots() {
			if s >= parentWidth {
				if _, ok := siblingSlots[s]; !ok {
					siblingSlots[s] = i
				}
			}
		}
	}
	for i, cp := range cps {
		refs := make(map[string]bool)
		for _, np := range cp.part.Nodes {
			for _, e := range np.Props {
				collectVarNames(e, refs)
			}
		}
		for _, rp := range cp.part.Rels {
			for _, e := range rp.Props {
				collectVarNames(e, refs)
			}
		}
		own := make(map[int]bool)
		for _, s := range cp.slots() {
			own[s] = true
		}
		for name := range refs {
			if slot, ok := matchEn.lookup(name); ok {
				if owner, sib := siblingSlots[slot]; sib && owner != i && !own[slot] {
					// Cross-pattern property dependency: preserve source order.
					for j := range cps {
						order = append(order, j)
					}
					return order
				}
			}
		}
	}
	bound := make([]bool, len(matchEn.names))
	for i := 0; i < parentWidth; i++ {
		bound[i] = true
	}
	used := make([]bool, len(cps))
	for len(order) < len(cps) {
		best, bestCost := -1, int64(1)<<62
		for i, cp := range cps {
			if used[i] {
				continue
			}
			cost := patternOrderCost(cp, bound)
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		order = append(order, best)
		used[best] = true
		for _, s := range cps[best].slots() {
			bound[s] = true
		}
	}
	return order
}

func patternOrderCost(cp *compiledPattern, bound []bool) int64 {
	for _, s := range cp.nodeSlots {
		if s >= 0 && s < len(bound) && bound[s] {
			return 0 // anchored join on an already bound node
		}
	}
	switch cp.access.kind {
	case accessIndex:
		return 1
	case accessLabel:
		return 2 + int64(cp.access.est)
	default:
		return 2 + 2*int64(cp.access.est)
	}
}

// collectVarNames gathers every variable referenced anywhere in e. Shadowed
// inner variables (comprehensions, reduce) are included; the over-
// approximation only forces source order, never an invalid reorder.
func collectVarNames(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case *Variable:
		out[x.Name] = true
	case *PropAccess:
		collectVarNames(x.X, out)
	case *IndexExpr:
		collectVarNames(x.X, out)
		collectVarNames(x.Idx, out)
	case *SliceExpr:
		collectVarNames(x.X, out)
		if x.From != nil {
			collectVarNames(x.From, out)
		}
		if x.To != nil {
			collectVarNames(x.To, out)
		}
	case *UnaryOp:
		collectVarNames(x.X, out)
	case *BinaryOp:
		collectVarNames(x.L, out)
		collectVarNames(x.R, out)
	case *FuncCall:
		for _, a := range x.Args {
			collectVarNames(a, out)
		}
	case *CaseExpr:
		if x.Test != nil {
			collectVarNames(x.Test, out)
		}
		for _, w := range x.Whens {
			collectVarNames(w.Cond, out)
			collectVarNames(w.Then, out)
		}
		if x.Else != nil {
			collectVarNames(x.Else, out)
		}
	case *ListLit:
		for _, el := range x.Elems {
			collectVarNames(el, out)
		}
	case *MapLit:
		for _, v := range x.Vals {
			collectVarNames(v, out)
		}
	case *ListComp:
		collectVarNames(x.List, out)
		if x.Where != nil {
			collectVarNames(x.Where, out)
		}
		if x.Proj != nil {
			collectVarNames(x.Proj, out)
		}
	case *ListPredicate:
		collectVarNames(x.List, out)
		collectVarNames(x.Where, out)
	case *ReduceExpr:
		collectVarNames(x.Init, out)
		collectVarNames(x.List, out)
		collectVarNames(x.Body, out)
	case *PatternExpr:
		for _, np := range x.Pattern.Nodes {
			if np.Var != "" {
				out[np.Var] = true
			}
			for _, e := range np.Props {
				collectVarNames(e, out)
			}
		}
		for _, rp := range x.Pattern.Rels {
			if rp.Var != "" {
				out[rp.Var] = true
			}
			for _, e := range rp.Props {
				collectVarNames(e, out)
			}
		}
	}
}

// ---- UNWIND ----

func compileUnwind(cc *compileCtx, en *env, c *UnwindClause) (*env, clauseOp, error) {
	listFn, err := compileExpr(cc, en, c.List)
	if err != nil {
		return nil, nil, err
	}
	newEn := en.clone()
	slot := newEn.add(c.Var)
	width := len(newEn.names)
	op := func(ex *executor, rows []row) ([]row, error) {
		var out []row
		for _, r := range rows {
			lv, err := listFn(ex.ctx, r)
			if err != nil {
				return nil, err
			}
			if lv.IsNull() {
				continue
			}
			elems, ok := lv.AsList()
			if !ok {
				// UNWIND of a single value behaves as a singleton list.
				elems = []value.Value{lv}
			}
			for _, e := range elems {
				nr := make(row, width)
				copy(nr, r)
				nr[slot] = e
				out = append(out, nr)
			}
		}
		return out, nil
	}
	return newEn, op, nil
}

// ---- WITH / RETURN ----

func starItems(en *env) []*ReturnItem {
	items := make([]*ReturnItem, 0, len(en.names))
	for _, name := range en.names {
		items = append(items, &ReturnItem{Expr: &Variable{Name: name}, Alias: name, Text: name})
	}
	return items
}

func itemName(it *ReturnItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if v, ok := it.Expr.(*Variable); ok {
		return v.Name
	}
	return it.Text
}

func compileWith(cc *compileCtx, en *env, c *WithClause) (*env, clauseOp, error) {
	items := c.Items
	if c.Star {
		items = append(starItems(en), c.Items...)
	}
	newEn, proj, err := compileProjection(cc, en, items, c.Distinct, c.OrderBy, c.Skip, c.Limit)
	if err != nil {
		return nil, nil, err
	}
	var whereFn exprFn
	if c.Where != nil {
		if whereFn, err = compileExpr(cc, newEn, c.Where); err != nil {
			return nil, nil, err
		}
	}
	op := func(ex *executor, rows []row) ([]row, error) {
		out, err := proj.run(ex, rows)
		if err != nil {
			return nil, err
		}
		if whereFn != nil {
			kept := out[:0]
			for _, r := range out {
				ok, err := truthy(ex.ctx, r, whereFn)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, r)
				}
			}
			out = kept
		}
		return out, nil
	}
	return newEn, op, nil
}

func compileReturn(cc *compileCtx, en *env, c *ReturnClause) (clauseOp, []string, error) {
	items := c.Items
	if c.Star {
		items = append(starItems(en), c.Items...)
	}
	_, proj, err := compileProjection(cc, en, items, c.Distinct, c.OrderBy, c.Skip, c.Limit)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = itemName(it)
	}
	op := func(ex *executor, rows []row) ([]row, error) {
		out, err := proj.run(ex, rows)
		if err != nil {
			return nil, err
		}
		resRows := make([][]value.Value, len(out))
		for i, r := range out {
			resRows[i] = r
		}
		ex.result = &Result{Columns: cols, Rows: resRows}
		return nil, nil
	}
	return op, cols, nil
}

// projPlan is a compiled projection: item closures, aggregation feeds, sort
// keys, and SKIP/LIMIT bounds.
type projPlan struct {
	nItems   int
	itemFns  []exprFn // compiled against the input environment
	distinct bool

	aggregates bool
	aggCalls   []*FuncCall
	aggArgs    []exprFn // parallel to aggCalls; nil for count(*)
	keyItems   []int    // aggregate-free item indexes (grouping keys)

	sortFns  []exprFn
	sortDesc []bool
	skipFn   exprFn
	limitFn  exprFn

	// Non-aggregating ORDER BY: sort runs on combined rows carrying the
	// surviving input bindings after the projected columns (Cypher's ORDER
	// BY scoping).
	comb      bool
	carries   []carryPair
	combWidth int
}

type carryPair struct{ from, to int }

func compileProjection(cc *compileCtx, en *env, items []*ReturnItem,
	distinct bool, orderBy []*SortItem, skip, limit Expr) (*env, *projPlan, error) {
	newEn := newEnv()
	for _, it := range items {
		newEn.add(itemName(it))
	}
	if len(newEn.names) != len(items) {
		return nil, nil, fmt.Errorf("cypher: duplicate column name in projection")
	}

	p := &projPlan{nItems: len(items), distinct: distinct}
	itemAggs := make([][]*FuncCall, len(items))
	for i, it := range items {
		var calls []*FuncCall
		collectAggregates(it.Expr, &calls)
		itemAggs[i] = calls
		if len(calls) > 0 {
			p.aggregates = true
		}
	}
	p.itemFns = make([]exprFn, len(items))
	for i, it := range items {
		fn, err := compileExpr(cc, en, it.Expr)
		if err != nil {
			return nil, nil, err
		}
		p.itemFns[i] = fn
	}
	if p.aggregates {
		for i := range items {
			if len(itemAggs[i]) == 0 {
				p.keyItems = append(p.keyItems, i)
			}
			for _, call := range itemAggs[i] {
				p.aggCalls = append(p.aggCalls, call)
				if call.Star {
					p.aggArgs = append(p.aggArgs, nil)
					continue
				}
				if len(call.Args) != 1 {
					return nil, nil, fmt.Errorf("cypher: %s() takes exactly one argument", call.Name)
				}
				argFn, err := compileExpr(cc, en, call.Args[0])
				if err != nil {
					return nil, nil, err
				}
				p.aggArgs = append(p.aggArgs, argFn)
			}
		}
	}

	var err error
	if p.skipFn, err = compileBound(cc, skip); err != nil {
		return nil, nil, err
	}
	if p.limitFn, err = compileBound(cc, limit); err != nil {
		return nil, nil, err
	}

	sortEn := newEn
	if !p.aggregates && len(orderBy) > 0 {
		// Combined-row sort: projected columns followed by carried inputs.
		p.comb = true
		combEn := newEn.clone()
		for i, name := range en.names {
			if _, taken := combEn.lookup(name); !taken {
				p.carries = append(p.carries, carryPair{from: i, to: combEn.add(name)})
			}
		}
		p.combWidth = len(combEn.names)
		sortEn = combEn
	}
	for _, s := range orderBy {
		fn, err := compileExpr(cc, sortEn, s.Expr)
		if err != nil {
			return nil, nil, err
		}
		p.sortFns = append(p.sortFns, fn)
		p.sortDesc = append(p.sortDesc, s.Desc)
	}
	return newEn, p, nil
}

func compileBound(cc *compileCtx, e Expr) (exprFn, error) {
	if e == nil {
		return nil, nil
	}
	// SKIP/LIMIT expressions are evaluated in an empty scope, per Cypher.
	return compileExpr(cc, newEnv(), e)
}

func (p *projPlan) run(ex *executor, rows []row) ([]row, error) {
	if !p.comb {
		out, err := p.project(ex, rows)
		if err != nil {
			return nil, err
		}
		return p.orderSkipLimit(ex, out)
	}
	comb := make([]row, 0, len(rows))
	for _, r := range rows {
		nr := make(row, p.combWidth)
		for i, fn := range p.itemFns {
			v, err := fn(ex.ctx, r)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		for _, c := range p.carries {
			nr[c.to] = r[c.from]
		}
		comb = append(comb, nr)
	}
	if p.distinct {
		comb = dedupePrefix(comb, p.nItems)
	}
	comb, err := p.orderSkipLimit(ex, comb)
	if err != nil {
		return nil, err
	}
	out := make([]row, len(comb))
	for i, r := range comb {
		out[i] = r[:p.nItems:p.nItems]
	}
	return out, nil
}

func (p *projPlan) project(ex *executor, rows []row) ([]row, error) {
	if !p.aggregates {
		out := make([]row, 0, len(rows))
		for _, r := range rows {
			nr := make(row, p.nItems)
			for i, fn := range p.itemFns {
				v, err := fn(ex.ctx, r)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			}
			out = append(out, nr)
		}
		if p.distinct {
			out = dedupeRows(out)
		}
		return out, nil
	}

	// Aggregating projection: group by the aggregate-free items.
	type group struct {
		rep  row // representative input row
		keys map[int]value.Value
		aggs map[*FuncCall]aggregator
	}
	groups := make(map[string]*group)
	var order []string

	for _, r := range rows {
		keyVals := make(map[int]value.Value, len(p.keyItems))
		hk := ""
		for _, i := range p.keyItems {
			v, err := p.itemFns[i](ex.ctx, r)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			k := v.HashKey()
			hk += fmt.Sprintf("%d:%s;", len(k), k)
		}
		g, ok := groups[hk]
		if !ok {
			g = &group{rep: r, keys: keyVals, aggs: make(map[*FuncCall]aggregator)}
			for _, call := range p.aggCalls {
				g.aggs[call] = newAggregator(call)
			}
			groups[hk] = g
			order = append(order, hk)
		}
		for ci, call := range p.aggCalls {
			agg := g.aggs[call]
			if p.aggArgs[ci] == nil {
				if err := agg.add(value.Bool(true)); err != nil {
					return nil, err
				}
				continue
			}
			v, err := p.aggArgs[ci](ex.ctx, r)
			if err != nil {
				return nil, err
			}
			if err := agg.add(v); err != nil {
				return nil, err
			}
		}
	}

	// With no grouping keys and no input rows, aggregates still produce one
	// row (count(*) of nothing is 0).
	if len(groups) == 0 && len(p.keyItems) == 0 {
		g := &group{rep: row{}, keys: map[int]value.Value{}, aggs: make(map[*FuncCall]aggregator)}
		for _, call := range p.aggCalls {
			g.aggs[call] = newAggregator(call)
		}
		groups[""] = g
		order = append(order, "")
	}

	out := make([]row, 0, len(groups))
	for _, hk := range order {
		g := groups[hk]
		sub := make(map[*FuncCall]value.Value, len(g.aggs))
		for call, agg := range g.aggs {
			sub[call] = agg.result()
		}
		saved := ex.ctx.aggSub
		ex.ctx.aggSub = sub
		nr := make(row, p.nItems)
		for i, fn := range p.itemFns {
			if v, ok := g.keys[i]; ok {
				nr[i] = v
				continue
			}
			v, err := fn(ex.ctx, g.rep)
			if err != nil {
				ex.ctx.aggSub = saved
				return nil, err
			}
			nr[i] = v
		}
		ex.ctx.aggSub = saved
		out = append(out, nr)
	}
	if p.distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

func (p *projPlan) orderSkipLimit(ex *executor, rows []row) ([]row, error) {
	if len(p.sortFns) > 0 {
		type keyed struct {
			r    row
			keys []value.Value
		}
		ks := make([]keyed, len(rows))
		for i, r := range rows {
			keys := make([]value.Value, len(p.sortFns))
			for j, fn := range p.sortFns {
				v, err := fn(ex.ctx, r)
				if err != nil {
					return nil, err
				}
				keys[j] = v
			}
			ks[i] = keyed{r: r, keys: keys}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j := range p.sortFns {
				c := value.Compare(ks[a].keys[j], ks[b].keys[j])
				if c == 0 {
					continue
				}
				if p.sortDesc[j] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for i := range ks {
			rows[i] = ks[i].r
		}
	}
	if p.skipFn != nil {
		n, err := evalBound(ex.ctx, p.skipFn, "SKIP")
		if err != nil {
			return nil, err
		}
		if n >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if p.limitFn != nil {
		n, err := evalBound(ex.ctx, p.limitFn, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < int64(len(rows)) {
			rows = rows[:n]
		}
	}
	return rows, nil
}

func evalBound(ctx *evalCtx, fn exprFn, what string) (int64, error) {
	v, err := fn(ctx, nil)
	if err != nil {
		return 0, err
	}
	n, ok := v.AsInt()
	if !ok || n < 0 {
		return 0, fmt.Errorf("cypher: %s requires a non-negative integer", what)
	}
	return n, nil
}

// dedupePrefix keeps the first row for each distinct prefix of width n.
func dedupePrefix(rows []row, n int) []row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		hk := ""
		for _, v := range r[:n] {
			k := v.HashKey()
			hk += fmt.Sprintf("%d:%s;", len(k), k)
		}
		if seen[hk] {
			continue
		}
		seen[hk] = true
		out = append(out, r)
	}
	return out
}

func dedupeRows(rows []row) []row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		hk := ""
		for _, v := range r {
			k := v.HashKey()
			hk += fmt.Sprintf("%d:%s;", len(k), k)
		}
		if seen[hk] {
			continue
		}
		seen[hk] = true
		out = append(out, r)
	}
	return out
}

// collectAggregates gathers the aggregate function calls inside an item.
func collectAggregates(e Expr, out *[]*FuncCall) {
	switch x := e.(type) {
	case *FuncCall:
		if isAggregateFunc(x.Name) {
			*out = append(*out, x)
			return // aggregates cannot nest
		}
		for _, a := range x.Args {
			collectAggregates(a, out)
		}
	case *PropAccess:
		collectAggregates(x.X, out)
	case *IndexExpr:
		collectAggregates(x.X, out)
		collectAggregates(x.Idx, out)
	case *SliceExpr:
		collectAggregates(x.X, out)
		if x.From != nil {
			collectAggregates(x.From, out)
		}
		if x.To != nil {
			collectAggregates(x.To, out)
		}
	case *UnaryOp:
		collectAggregates(x.X, out)
	case *BinaryOp:
		collectAggregates(x.L, out)
		collectAggregates(x.R, out)
	case *CaseExpr:
		if x.Test != nil {
			collectAggregates(x.Test, out)
		}
		for _, w := range x.Whens {
			collectAggregates(w.Cond, out)
			collectAggregates(w.Then, out)
		}
		if x.Else != nil {
			collectAggregates(x.Else, out)
		}
	case *ListLit:
		for _, el := range x.Elems {
			collectAggregates(el, out)
		}
	case *MapLit:
		for _, v := range x.Vals {
			collectAggregates(v, out)
		}
	case *ListComp:
		collectAggregates(x.List, out)
	case *ListPredicate:
		collectAggregates(x.List, out)
	case *ReduceExpr:
		collectAggregates(x.Init, out)
		collectAggregates(x.List, out)
	}
}

// ---- CREATE / MERGE / FOREACH ----

func compileCreate(cc *compileCtx, en *env, c *CreateClause) (*env, clauseOp, error) {
	newEn := en.clone()
	cps := make([]*compiledPattern, len(c.Patterns))
	for i, p := range c.Patterns {
		if p.Var != "" {
			return nil, nil, fmt.Errorf("cypher: path variables are not supported in CREATE")
		}
		cps[i] = patternSlots(newEn, p)
	}
	for _, cp := range cps {
		if err := compilePatternBody(cc, newEn, cp); err != nil {
			return nil, nil, err
		}
	}
	width := len(newEn.names)
	op := func(ex *executor, rows []row) ([]row, error) {
		out := make([]row, 0, len(rows))
		for _, r := range rows {
			nr := make(row, width)
			copy(nr, r)
			for _, cp := range cps {
				var err error
				nr, err = ex.createPattern(nr, cp)
				if err != nil {
					return nil, err
				}
			}
			out = append(out, nr)
		}
		return out, nil
	}
	return newEn, op, nil
}

func compileMerge(cc *compileCtx, en *env, c *MergeClause) (*env, clauseOp, error) {
	newEn := en.clone()
	cp, err := compileFullPattern(cc, newEn, c.Pattern)
	if err != nil {
		return nil, nil, err
	}
	onMatch, err := compileSetItems(cc, newEn, c.OnMatchSet)
	if err != nil {
		return nil, nil, err
	}
	onCreate, err := compileSetItems(cc, newEn, c.OnCreateSet)
	if err != nil {
		return nil, nil, err
	}
	width := len(newEn.names)
	op := func(ex *executor, rows []row) ([]row, error) {
		var out []row
		for _, r := range rows {
			base := make(row, width)
			copy(base, r)
			if cp.nullBound(base) {
				return nil, fmt.Errorf("cypher: MERGE on a NULL-bound variable")
			}
			var matches []row
			err := matchPart(ex.ctx, base, cp, nil, func(nr row) error {
				matches = append(matches, nr)
				return nil
			})
			if err != nil {
				return nil, err
			}
			if len(matches) > 0 {
				for _, mr := range matches {
					if err := ex.applySetOps(mr, onMatch); err != nil {
						return nil, err
					}
					out = append(out, mr)
				}
				continue
			}
			created, err := ex.createPattern(base, cp)
			if err != nil {
				return nil, err
			}
			if err := ex.applySetOps(created, onCreate); err != nil {
				return nil, err
			}
			out = append(out, created)
		}
		return out, nil
	}
	return newEn, op, nil
}

// compileForeach compiles the nested update clauses once; at runtime the
// body pipeline runs per list element per input row. Variables introduced
// inside the body (and the loop variable) are not visible afterwards.
func compileForeach(cc *compileCtx, en *env, c *ForeachClause) (clauseOp, error) {
	listFn, err := compileExpr(cc, en, c.List)
	if err != nil {
		return nil, err
	}
	inner := en.clone()
	slot := inner.add(c.Var)
	innerWidth := len(inner.names)
	bodyEn := inner
	var bodyOps []clauseOp
	for _, cl := range c.Body {
		var op clauseOp
		switch bc := cl.(type) {
		case *CreateClause:
			bodyEn, op, err = compileCreate(cc, bodyEn, bc)
		case *MergeClause:
			bodyEn, op, err = compileMerge(cc, bodyEn, bc)
		case *SetClause:
			op, err = compileSet(cc, bodyEn, bc.Items)
		case *RemoveClause:
			op, err = compileRemove(cc, bodyEn, bc)
		case *DeleteClause:
			op, err = compileDelete(cc, bodyEn, bc)
		case *ForeachClause:
			op, err = compileForeach(cc, bodyEn, bc)
		default:
			err = fmt.Errorf("cypher: clause %T not allowed in FOREACH", cl)
		}
		if err != nil {
			return nil, err
		}
		bodyOps = append(bodyOps, op)
	}
	op := func(ex *executor, rows []row) ([]row, error) {
		for _, r := range rows {
			lv, err := listFn(ex.ctx, r)
			if err != nil {
				return nil, err
			}
			if lv.IsNull() {
				continue
			}
			elems, ok := lv.AsList()
			if !ok {
				return nil, fmt.Errorf("cypher: FOREACH requires a list, got %s", lv.Kind())
			}
			for _, el := range elems {
				ir := make(row, innerWidth)
				copy(ir, r)
				ir[slot] = el
				bodyRows := []row{ir}
				for _, bop := range bodyOps {
					bodyRows, err = bop(ex, bodyRows)
					if err != nil {
						return nil, err
					}
				}
			}
		}
		return rows, nil
	}
	return op, nil
}

// ---- DELETE / SET / REMOVE ----

func compileDelete(cc *compileCtx, en *env, c *DeleteClause) (clauseOp, error) {
	fns := make([]exprFn, len(c.Exprs))
	for i, e := range c.Exprs {
		fn, err := compileExpr(cc, en, e)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	detach := c.Detach
	op := func(ex *executor, rows []row) ([]row, error) {
		for _, r := range rows {
			for _, fn := range fns {
				v, err := fn(ex.ctx, r)
				if err != nil {
					return nil, err
				}
				if err := ex.deleteEntity(v, detach); err != nil {
					return nil, err
				}
			}
		}
		return rows, nil
	}
	return op, nil
}

// setOp is one compiled SET item.
type setOp struct {
	kind   SetItemKind
	slot   int
	target string
	key    string
	labels []string
	valFn  exprFn // nil for SetLabels
}

func compileSetItems(cc *compileCtx, en *env, items []*SetItem) ([]setOp, error) {
	ops := make([]setOp, 0, len(items))
	for _, it := range items {
		slot, ok := en.lookup(it.Target)
		if !ok {
			return nil, fmt.Errorf("cypher: variable `%s` not defined in SET", it.Target)
		}
		op := setOp{kind: it.Kind, slot: slot, target: it.Target, key: it.Key, labels: it.Labels}
		if it.Value != nil {
			fn, err := compileExpr(cc, en, it.Value)
			if err != nil {
				return nil, err
			}
			op.valFn = fn
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func compileSet(cc *compileCtx, en *env, items []*SetItem) (clauseOp, error) {
	ops, err := compileSetItems(cc, en, items)
	if err != nil {
		return nil, err
	}
	op := func(ex *executor, rows []row) ([]row, error) {
		for _, r := range rows {
			if err := ex.applySetOps(r, ops); err != nil {
				return nil, err
			}
		}
		return rows, nil
	}
	return op, nil
}

// removeOp is one compiled REMOVE item.
type removeOp struct {
	slot   int
	target string
	key    string
	labels []string
}

func compileRemove(cc *compileCtx, en *env, c *RemoveClause) (clauseOp, error) {
	ops := make([]removeOp, 0, len(c.Items))
	for _, it := range c.Items {
		slot, ok := en.lookup(it.Target)
		if !ok {
			return nil, fmt.Errorf("cypher: variable `%s` not defined in REMOVE", it.Target)
		}
		ops = append(ops, removeOp{slot: slot, target: it.Target, key: it.Key, labels: it.Labels})
	}
	op := func(ex *executor, rows []row) ([]row, error) {
		for _, r := range rows {
			for i := range ops {
				if err := ex.applyRemoveOp(r, &ops[i]); err != nil {
					return nil, err
				}
			}
		}
		return rows, nil
	}
	return op, nil
}

// ---- fast count ----

// fastCountPlan answers `MATCH (v:Label {k: const}) RETURN count(...)` from
// label and property indexes without materializing candidates — the analog
// of Neo4j's count store, which is what keeps the paper's naive per-event
// triggers (Fig. 9) at near-constant per-event cost.
type fastCountPlan struct {
	kind  fcKind
	label string
	key   string
	valFn exprFn
	col   string
}

type fcKind int

const (
	fcTotal fcKind = iota
	fcLabel
	fcProp
)

func compileFastCount(cc *compileCtx, clauses []Clause) *fastCountPlan {
	if len(clauses) != 2 {
		return nil
	}
	m, ok := clauses[0].(*MatchClause)
	if !ok || m.Optional || m.Where != nil || len(m.Patterns) != 1 {
		return nil
	}
	part := m.Patterns[0]
	if part.Var != "" || len(part.Rels) != 0 || len(part.Nodes) != 1 {
		return nil
	}
	np := part.Nodes[0]
	ret, ok := clauses[1].(*ReturnClause)
	if !ok || ret.Distinct || ret.Star || len(ret.Items) != 1 ||
		ret.OrderBy != nil || ret.Skip != nil || ret.Limit != nil {
		return nil
	}
	call, ok := ret.Items[0].Expr.(*FuncCall)
	if !ok || call.Name != "count" || call.Distinct {
		return nil
	}
	if !call.Star {
		if len(call.Args) != 1 {
			return nil
		}
		v, ok := call.Args[0].(*Variable)
		if !ok || v.Name != np.Var {
			return nil
		}
	}
	col := ret.Items[0].Alias
	if col == "" {
		col = ret.Items[0].Text
	}
	plan := &fastCountPlan{col: col}
	switch {
	case len(np.Props) == 0 && len(np.Labels) == 0:
		plan.kind = fcTotal
	case len(np.Props) == 0 && len(np.Labels) == 1:
		plan.kind = fcLabel
		plan.label = np.Labels[0]
	case len(np.Props) == 1 && len(np.Labels) == 1:
		plan.kind = fcProp
		plan.label = np.Labels[0]
		for k, e := range np.Props {
			plan.key = k
			// The constant must be expressible without row variables;
			// otherwise the general path handles it.
			fn, err := compileExpr(&compileCtx{query: cc.query, tx: cc.tx, snap: cc.snap}, newEnv(), e)
			if err != nil {
				return nil
			}
			plan.valFn = fn
		}
	default:
		return nil
	}
	return plan
}

// run answers the count, or reports ok=false to fall back to the general
// pipeline (unknown property value, or a runtime evaluation error such as a
// missing parameter — the general path surfaces the real error if any).
func (p *fastCountPlan) run(ex *executor) (*Result, bool, error) {
	var count int
	switch p.kind {
	case fcTotal:
		count = ex.ctx.tx.NodeCount()
	case fcLabel:
		count = ex.ctx.tx.CountByLabel(p.label)
	default:
		want, err := p.valFn(ex.ctx, nil)
		if err != nil {
			return nil, false, nil
		}
		c, has := ex.ctx.tx.CountByProp(p.label, p.key, want)
		if !has {
			return nil, false, nil
		}
		count = c
	}
	return &Result{Columns: []string{p.col}, Rows: [][]value.Value{{value.Int(int64(count))}}}, true, nil
}
