package cypher

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/value"
)

// CompiledExpr is a prepared standalone expression: parsed once, compiled
// lazily per binding shape, recompiled only on statistics drift (pattern
// predicates consult the planner). The trigger engine holds one per rule
// guard and the composite-event layer one per BY key, so steady-state
// evaluation performs no parsing and no AST interpretation.
type CompiledExpr struct {
	src      string
	expr     Expr
	variants atomic.Pointer[map[variantKey]*exprVariant]
	mu       sync.Mutex
}

type exprVariant struct {
	names []string
	fn    exprFn
	snap  *statsSnapshot
}

// PrepareExpr parses and wraps a standalone expression.
func PrepareExpr(src string) (*CompiledExpr, error) {
	e, err := ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return NewCompiledExpr(e, src), nil
}

// NewCompiledExpr wraps an already parsed expression. src is used for
// positioned error messages and may be empty.
func NewCompiledExpr(e Expr, src string) *CompiledExpr {
	ce := &CompiledExpr{src: src, expr: e}
	empty := make(map[variantKey]*exprVariant)
	ce.variants.Store(&empty)
	return ce
}

// Expr returns the parsed AST (for footprint inspection).
func (ce *CompiledExpr) Expr() Expr { return ce.expr }

// Source returns the original expression text.
func (ce *CompiledExpr) Source() string { return ce.src }

// Eval evaluates the expression with opts.Bindings visible as variables.
func (ce *CompiledExpr) Eval(tx graph.ReadView, opts *Options) (value.Value, error) {
	if opts == nil {
		opts = &Options{}
	}
	names := sortedBindingNames(opts.Bindings)
	v, err := ce.variant(tx, names)
	if err != nil {
		return value.Null, err
	}
	r := make(row, len(names))
	for i, n := range names {
		r[i] = opts.Bindings[n]
	}
	ctx := &evalCtx{tx: tx, params: opts.Params, now: opts.Now, query: ce.src}
	return v.fn(ctx, r)
}

// EvalBool evaluates the expression under ternary guard semantics: only an
// exactly-TRUE result is true.
func (ce *CompiledExpr) EvalBool(tx graph.ReadView, opts *Options) (bool, error) {
	v, err := ce.Eval(tx, opts)
	if err != nil {
		return false, err
	}
	b, known := v.Truthy()
	return known && b, nil
}

func (ce *CompiledExpr) variant(tx graph.ReadView, names []string) (*exprVariant, error) {
	key := variantKey{shape: strings.Join(names, "\x1f"), store: tx.StoreKey()}
	if m := ce.variants.Load(); m != nil {
		if v, ok := (*m)[key]; ok && !v.snap.stale(tx) {
			return v, nil
		}
	}
	ce.mu.Lock()
	defer ce.mu.Unlock()
	if m := ce.variants.Load(); m != nil {
		if v, ok := (*m)[key]; ok && !v.snap.stale(tx) {
			return v, nil
		}
	}
	snap := newStatsSnapshot()
	cc := &compileCtx{query: ce.src, tx: tx, snap: snap}
	en := newEnv()
	for _, n := range names {
		en.add(n)
	}
	fn, err := compileExpr(cc, en, ce.expr)
	if err != nil {
		return nil, err
	}
	v := &exprVariant{names: names, fn: fn, snap: snap}
	old := ce.variants.Load()
	next := make(map[variantKey]*exprVariant, len(*old)+1)
	for k, ov := range *old {
		next[k] = ov
	}
	next[key] = v
	ce.variants.Store(&next)
	return v, nil
}
