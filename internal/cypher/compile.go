package cypher

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/value"
)

// exprFn is a compiled expression: evaluation against a row with no AST
// interpretation. Compilation resolves variables to row slots, fixes the
// dispatch per node, and pre-builds inner environments, so the hot path is a
// chain of direct closure calls.
type exprFn func(ctx *evalCtx, r row) (value.Value, error)

// compileCtx carries what compilation needs: the query text for positioned
// errors and the statistics snapshot access-path planning draws from (and
// records its reads into, for later staleness checks).
type compileCtx struct {
	query string
	tx    graph.ReadView // statistics source during compilation
	snap  *statsSnapshot // records every statistic consulted
}

// compileExpr lowers an expression AST to a closure. Variable resolution
// happens here, so a reference to an undefined variable is reported at
// compile time with its byte offset.
func compileExpr(cc *compileCtx, en *env, e Expr) (exprFn, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(*evalCtx, row) (value.Value, error) { return v, nil }, nil

	case *Variable:
		i, ok := en.lookup(x.Name)
		if !ok {
			return nil, errAt(cc.query, x.pos, "variable `%s` not defined", x.Name)
		}
		return func(_ *evalCtx, r row) (value.Value, error) { return r[i], nil }, nil

	case *Param:
		name := x.Name
		return func(ctx *evalCtx, _ row) (value.Value, error) {
			v, ok := ctx.params[name]
			if !ok {
				return value.Null, fmt.Errorf("cypher: parameter $%s not supplied", name)
			}
			return v, nil
		}, nil

	case *PropAccess:
		xf, err := compileExpr(cc, en, x.X)
		if err != nil {
			return nil, err
		}
		key := x.Key
		return func(ctx *evalCtx, r row) (value.Value, error) {
			base, err := xf(ctx, r)
			if err != nil {
				return value.Null, err
			}
			return propOf(ctx, base, key)
		}, nil

	case *IndexExpr:
		xf, err := compileExpr(cc, en, x.X)
		if err != nil {
			return nil, err
		}
		idxf, err := compileExpr(cc, en, x.Idx)
		if err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, r row) (value.Value, error) {
			base, err := xf(ctx, r)
			if err != nil {
				return value.Null, err
			}
			idx, err := idxf(ctx, r)
			if err != nil {
				return value.Null, err
			}
			return indexValue(ctx, base, idx)
		}, nil

	case *SliceExpr:
		xf, err := compileExpr(cc, en, x.X)
		if err != nil {
			return nil, err
		}
		var fromF, toF exprFn
		if x.From != nil {
			if fromF, err = compileExpr(cc, en, x.From); err != nil {
				return nil, err
			}
		}
		if x.To != nil {
			if toF, err = compileExpr(cc, en, x.To); err != nil {
				return nil, err
			}
		}
		return func(ctx *evalCtx, r row) (value.Value, error) {
			base, err := xf(ctx, r)
			if err != nil {
				return value.Null, err
			}
			if base.IsNull() {
				return value.Null, nil
			}
			list, ok := base.AsList()
			if !ok {
				return value.Null, fmt.Errorf("cypher: cannot slice %s", base.Kind())
			}
			from, to := int64(0), int64(len(list))
			if fromF != nil {
				v, err := fromF(ctx, r)
				if err != nil {
					return value.Null, err
				}
				if v.IsNull() {
					return value.Null, nil
				}
				if from, ok = v.AsInt(); !ok {
					return value.Null, fmt.Errorf("cypher: slice bound must be an integer")
				}
			}
			if toF != nil {
				v, err := toF(ctx, r)
				if err != nil {
					return value.Null, err
				}
				if v.IsNull() {
					return value.Null, nil
				}
				if to, ok = v.AsInt(); !ok {
					return value.Null, fmt.Errorf("cypher: slice bound must be an integer")
				}
			}
			return sliceValue(list, from, to), nil
		}, nil

	case *UnaryOp:
		xf, err := compileExpr(cc, en, x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpNeg:
			return func(ctx *evalCtx, r row) (value.Value, error) {
				v, err := xf(ctx, r)
				if err != nil {
					return value.Null, err
				}
				return value.Neg(v)
			}, nil
		case OpNot:
			return func(ctx *evalCtx, r row) (value.Value, error) {
				v, err := xf(ctx, r)
				if err != nil {
					return value.Null, err
				}
				b, known := v.Truthy()
				if !known {
					return value.Null, nil
				}
				return value.Bool(!b), nil
			}, nil
		case OpIsNull:
			return func(ctx *evalCtx, r row) (value.Value, error) {
				v, err := xf(ctx, r)
				if err != nil {
					return value.Null, err
				}
				return value.Bool(v.IsNull()), nil
			}, nil
		case OpIsNotNull:
			return func(ctx *evalCtx, r row) (value.Value, error) {
				v, err := xf(ctx, r)
				if err != nil {
					return value.Null, err
				}
				return value.Bool(!v.IsNull()), nil
			}, nil
		default:
			return nil, fmt.Errorf("cypher: unknown unary op")
		}

	case *BinaryOp:
		return compileBinary(cc, en, x)

	case *FuncCall:
		return compileFuncCall(cc, en, x)

	case *CaseExpr:
		return compileCase(cc, en, x)

	case *ListLit:
		fns := make([]exprFn, len(x.Elems))
		for i, el := range x.Elems {
			f, err := compileExpr(cc, en, el)
			if err != nil {
				return nil, err
			}
			fns[i] = f
		}
		return func(ctx *evalCtx, r row) (value.Value, error) {
			out := make([]value.Value, len(fns))
			for i, f := range fns {
				v, err := f(ctx, r)
				if err != nil {
					return value.Null, err
				}
				out[i] = v
			}
			return value.ListOf(out), nil
		}, nil

	case *MapLit:
		fns := make([]exprFn, len(x.Vals))
		for i, ve := range x.Vals {
			f, err := compileExpr(cc, en, ve)
			if err != nil {
				return nil, err
			}
			fns[i] = f
		}
		keys := x.Keys
		return func(ctx *evalCtx, r row) (value.Value, error) {
			m := make(map[string]value.Value, len(keys))
			for i, k := range keys {
				v, err := fns[i](ctx, r)
				if err != nil {
					return value.Null, err
				}
				m[k] = v
			}
			return value.Map(m), nil
		}, nil

	case *ListComp:
		return compileListComp(cc, en, x)

	case *ListPredicate:
		return compileListPredicate(cc, en, x)

	case *ReduceExpr:
		return compileReduce(cc, en, x)

	case *PatternExpr:
		return compilePatternExpr(cc, en, x)

	default:
		return nil, fmt.Errorf("cypher: unhandled expression %T", e)
	}
}

func compileBinary(cc *compileCtx, en *env, x *BinaryOp) (exprFn, error) {
	if x.Op == OpAnd || x.Op == OpOr || x.Op == OpXor {
		return compileLogic(cc, en, x)
	}
	lf, err := compileExpr(cc, en, x.L)
	if err != nil {
		return nil, err
	}
	rf, err := compileExpr(cc, en, x.R)
	if err != nil {
		return nil, err
	}
	// Fix the operator implementation at compile time.
	var apply func(ctx *evalCtx, l, rv value.Value) (value.Value, error)
	switch x.Op {
	case OpAdd:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return value.Add(l, rv) }
	case OpSub:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return value.Sub(l, rv) }
	case OpMul:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return value.Mul(l, rv) }
	case OpDiv:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return value.Div(l, rv) }
	case OpMod:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return value.Mod(l, rv) }
	case OpPow:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return value.Pow(l, rv) }
	case OpEq:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			eq, known := value.Equal(l, rv)
			if !known {
				return value.Null, nil
			}
			return value.Bool(eq), nil
		}
	case OpNeq:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			eq, known := value.Equal(l, rv)
			if !known {
				return value.Null, nil
			}
			return value.Bool(!eq), nil
		}
	case OpLt:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			less, known := value.Less3(l, rv)
			if !known {
				return value.Null, nil
			}
			return value.Bool(less), nil
		}
	case OpGt:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			less, known := value.Less3(rv, l)
			if !known {
				return value.Null, nil
			}
			return value.Bool(less), nil
		}
	case OpLte:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			less, known := value.Less3(rv, l)
			if !known {
				return value.Null, nil
			}
			return value.Bool(!less), nil
		}
	case OpGte:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			less, known := value.Less3(l, rv)
			if !known {
				return value.Null, nil
			}
			return value.Bool(!less), nil
		}
	case OpIn:
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) { return evalIn(l, rv) }
	case OpStartsWith, OpEndsWith, OpContains:
		op := x.Op
		apply = func(_ *evalCtx, l, rv value.Value) (value.Value, error) {
			return evalStringPredicate(op, l, rv)
		}
	case OpRegex:
		apply = func(ctx *evalCtx, l, rv value.Value) (value.Value, error) {
			return evalRegex(ctx, l, rv)
		}
	default:
		return nil, fmt.Errorf("cypher: unknown binary op")
	}
	return func(ctx *evalCtx, r row) (value.Value, error) {
		l, err := lf(ctx, r)
		if err != nil {
			return value.Null, err
		}
		rv, err := rf(ctx, r)
		if err != nil {
			return value.Null, err
		}
		return apply(ctx, l, rv)
	}, nil
}

// compileLogic builds AND/OR/XOR with ternary short-circuit semantics.
func compileLogic(cc *compileCtx, en *env, x *BinaryOp) (exprFn, error) {
	lf, err := compileExpr(cc, en, x.L)
	if err != nil {
		return nil, err
	}
	rf, err := compileExpr(cc, en, x.R)
	if err != nil {
		return nil, err
	}
	op, pos, query := x.Op, x.pos, cc.query
	return func(ctx *evalCtx, r row) (value.Value, error) {
		l, err := lf(ctx, r)
		if err != nil {
			return value.Null, err
		}
		lb, lk := l.Truthy()
		if !lk && !l.IsNull() {
			return value.Null, errAt(query, pos, "boolean operator on non-boolean value %s", l.Kind())
		}
		switch op {
		case OpAnd:
			if lk && !lb {
				return value.Bool(false), nil
			}
		case OpOr:
			if lk && lb {
				return value.Bool(true), nil
			}
		}
		rv, err := rf(ctx, r)
		if err != nil {
			return value.Null, err
		}
		rb, rk := rv.Truthy()
		if !rk && !rv.IsNull() {
			return value.Null, errAt(query, pos, "boolean operator on non-boolean value %s", rv.Kind())
		}
		switch op {
		case OpAnd:
			switch {
			case rk && !rb:
				return value.Bool(false), nil
			case lk && rk:
				return value.Bool(true), nil
			default:
				return value.Null, nil
			}
		case OpOr:
			switch {
			case rk && rb:
				return value.Bool(true), nil
			case lk && rk:
				return value.Bool(false), nil
			default:
				return value.Null, nil
			}
		default: // XOR
			if !lk || !rk {
				return value.Null, nil
			}
			return value.Bool(lb != rb), nil
		}
	}, nil
}

// compileFuncCall compiles function invocation. Aggregate calls compile to a
// lookup of the pre-computed group value (set by the projection machinery
// during finalization); anywhere else they are a compile-time error.
func compileFuncCall(cc *compileCtx, en *env, x *FuncCall) (exprFn, error) {
	if isAggregateFunc(x.Name) {
		call, pos, name, query := x, x.pos, x.Name, cc.query
		return func(ctx *evalCtx, _ row) (value.Value, error) {
			if ctx.aggSub != nil {
				if v, ok := ctx.aggSub[call]; ok {
					return v, nil
				}
			}
			return value.Null, errAt(query, pos, "aggregate function %s() not allowed here", name)
		}, nil
	}
	fns := make([]exprFn, len(x.Args))
	for i, a := range x.Args {
		f, err := compileExpr(cc, en, a)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	call := x
	return func(ctx *evalCtx, r row) (value.Value, error) {
		args := make([]value.Value, len(fns))
		for i, f := range fns {
			v, err := f(ctx, r)
			if err != nil {
				return value.Null, err
			}
			args[i] = v
		}
		return applyFunc(ctx, call, args)
	}, nil
}

func compileCase(cc *compileCtx, en *env, x *CaseExpr) (exprFn, error) {
	var testF exprFn
	var err error
	if x.Test != nil {
		if testF, err = compileExpr(cc, en, x.Test); err != nil {
			return nil, err
		}
	}
	conds := make([]exprFn, len(x.Whens))
	thens := make([]exprFn, len(x.Whens))
	for i, w := range x.Whens {
		if conds[i], err = compileExpr(cc, en, w.Cond); err != nil {
			return nil, err
		}
		if thens[i], err = compileExpr(cc, en, w.Then); err != nil {
			return nil, err
		}
	}
	var elseF exprFn
	if x.Else != nil {
		if elseF, err = compileExpr(cc, en, x.Else); err != nil {
			return nil, err
		}
	}
	return func(ctx *evalCtx, r row) (value.Value, error) {
		if testF != nil {
			test, err := testF(ctx, r)
			if err != nil {
				return value.Null, err
			}
			for i := range conds {
				v, err := conds[i](ctx, r)
				if err != nil {
					return value.Null, err
				}
				if eq, known := value.Equal(test, v); known && eq {
					return thens[i](ctx, r)
				}
			}
		} else {
			for i := range conds {
				v, err := conds[i](ctx, r)
				if err != nil {
					return value.Null, err
				}
				if b, known := v.Truthy(); known && b {
					return thens[i](ctx, r)
				}
			}
		}
		if elseF != nil {
			return elseF(ctx, r)
		}
		return value.Null, nil
	}, nil
}

func compileListComp(cc *compileCtx, en *env, x *ListComp) (exprFn, error) {
	listF, err := compileExpr(cc, en, x.List)
	if err != nil {
		return nil, err
	}
	inner := en.clone()
	slot := inner.add(x.Var)
	width := len(inner.names)
	var whereF, projF exprFn
	if x.Where != nil {
		if whereF, err = compileExpr(cc, inner, x.Where); err != nil {
			return nil, err
		}
	}
	if x.Proj != nil {
		if projF, err = compileExpr(cc, inner, x.Proj); err != nil {
			return nil, err
		}
	}
	return func(ctx *evalCtx, r row) (value.Value, error) {
		lv, err := listF(ctx, r)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() {
			return value.Null, nil
		}
		list, ok := lv.AsList()
		if !ok {
			return value.Null, fmt.Errorf("cypher: list comprehension over %s", lv.Kind())
		}
		out := make([]value.Value, 0, len(list))
		ir := make(row, width)
		for _, el := range list {
			copy(ir, r)
			ir[slot] = el
			if whereF != nil {
				cond, err := whereF(ctx, ir)
				if err != nil {
					return value.Null, err
				}
				if b, known := cond.Truthy(); !known || !b {
					continue
				}
			}
			if projF != nil {
				v, err := projF(ctx, ir)
				if err != nil {
					return value.Null, err
				}
				out = append(out, v)
			} else {
				out = append(out, el)
			}
		}
		return value.ListOf(out), nil
	}, nil
}

func compileListPredicate(cc *compileCtx, en *env, x *ListPredicate) (exprFn, error) {
	listF, err := compileExpr(cc, en, x.List)
	if err != nil {
		return nil, err
	}
	inner := en.clone()
	slot := inner.add(x.Var)
	width := len(inner.names)
	whereF, err := compileExpr(cc, inner, x.Where)
	if err != nil {
		return nil, err
	}
	kind := x.Kind
	return func(ctx *evalCtx, r row) (value.Value, error) {
		lv, err := listF(ctx, r)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() {
			return value.Null, nil
		}
		list, ok := lv.AsList()
		if !ok {
			return value.Null, fmt.Errorf("cypher: quantifier over %s", lv.Kind())
		}
		ir := make(row, width)
		trueCount, unknown := 0, false
		for _, el := range list {
			copy(ir, r)
			ir[slot] = el
			v, err := whereF(ctx, ir)
			if err != nil {
				return value.Null, err
			}
			b, known := v.Truthy()
			switch {
			case !known:
				unknown = true
			case b:
				trueCount++
				switch kind {
				case QuantAny:
					return value.Bool(true), nil
				case QuantNone:
					return value.Bool(false), nil
				}
			default: // known false
				if kind == QuantAll {
					return value.Bool(false), nil
				}
			}
		}
		if unknown {
			return value.Null, nil
		}
		switch kind {
		case QuantAll:
			return value.Bool(true), nil
		case QuantAny:
			return value.Bool(false), nil
		case QuantNone:
			return value.Bool(true), nil
		default: // QuantSingle
			return value.Bool(trueCount == 1), nil
		}
	}, nil
}

func compileReduce(cc *compileCtx, en *env, x *ReduceExpr) (exprFn, error) {
	initF, err := compileExpr(cc, en, x.Init)
	if err != nil {
		return nil, err
	}
	listF, err := compileExpr(cc, en, x.List)
	if err != nil {
		return nil, err
	}
	inner := en.clone()
	accSlot := inner.add(x.Acc)
	varSlot := inner.add(x.Var)
	width := len(inner.names)
	bodyF, err := compileExpr(cc, inner, x.Body)
	if err != nil {
		return nil, err
	}
	return func(ctx *evalCtx, r row) (value.Value, error) {
		acc, err := initF(ctx, r)
		if err != nil {
			return value.Null, err
		}
		lv, err := listF(ctx, r)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() {
			return value.Null, nil
		}
		list, ok := lv.AsList()
		if !ok {
			return value.Null, fmt.Errorf("cypher: reduce over %s", lv.Kind())
		}
		ir := make(row, width)
		copy(ir, r)
		for _, el := range list {
			ir[accSlot] = acc
			ir[varSlot] = el
			acc, err = bodyF(ctx, ir)
			if err != nil {
				return value.Null, err
			}
		}
		return acc, nil
	}, nil
}

// compilePatternExpr compiles an existential pattern predicate. The pattern
// (including its access path) is planned once at compile time instead of on
// every evaluation, which matters for guards using `(n)-[:T]->()` syntax.
func compilePatternExpr(cc *compileCtx, en *env, x *PatternExpr) (exprFn, error) {
	local := en.clone()
	cp, err := compileFullPattern(cc, local, x.Pattern)
	if err != nil {
		return nil, err
	}
	width := len(local.names)
	return func(ctx *evalCtx, r row) (value.Value, error) {
		base := make(row, width)
		copy(base, r)
		found := false
		err := matchPart(ctx, base, cp, nil, func(row) error {
			found = true
			return errStop
		})
		if err != nil && err != errStop {
			return value.Null, err
		}
		return value.Bool(found), nil
	}, nil
}

// truthy evaluates a compiled predicate under WHERE semantics: only an
// exactly-TRUE result keeps the row.
func truthy(ctx *evalCtx, r row, pred exprFn) (bool, error) {
	v, err := pred(ctx, r)
	if err != nil {
		return false, err
	}
	b, known := v.Truthy()
	return known && b, nil
}
