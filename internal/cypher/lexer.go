package cypher

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input eagerly; the parser then walks the slice.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByteAt(1) == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return errAt(l.src, l.pos, "unterminated block comment")
			}
			l.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case ':':
		l.pos++
		return token{tokColon, ":", start}, nil
	case ';':
		l.pos++
		return token{tokSemi, ";", start}, nil
	case '|':
		l.pos++
		return token{tokPipe, "|", start}, nil
	case '.':
		if l.peekByteAt(1) == '.' {
			l.pos += 2
			return token{tokDotDot, "..", start}, nil
		}
		if l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return token{tokDot, ".", start}, nil
	case '+':
		if l.peekByteAt(1) == '=' {
			l.pos += 2
			return token{tokPlusEq, "+=", start}, nil
		}
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		if l.peekByteAt(1) == '>' {
			l.pos += 2
			return token{tokArrowR, "->", start}, nil
		}
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '%':
		l.pos++
		return token{tokPercent, "%", start}, nil
	case '^':
		l.pos++
		return token{tokCaret, "^", start}, nil
	case '=':
		if l.peekByteAt(1) == '~' {
			l.pos += 2
			return token{tokRegexEq, "=~", start}, nil
		}
		l.pos++
		return token{tokEq, "=", start}, nil
	case '<':
		switch l.peekByteAt(1) {
		case '>':
			l.pos += 2
			return token{tokNeq, "<>", start}, nil
		case '=':
			l.pos += 2
			return token{tokLte, "<=", start}, nil
		case '-':
			l.pos += 2
			return token{tokArrowL, "<-", start}, nil
		default:
			l.pos++
			return token{tokLt, "<", start}, nil
		}
	case '>':
		if l.peekByteAt(1) == '=' {
			l.pos += 2
			return token{tokGte, ">=", start}, nil
		}
		l.pos++
		return token{tokGt, ">", start}, nil
	case '\'', '"':
		return l.lexString(c)
	case '`':
		return l.lexBacktickIdent()
	case '$':
		l.pos++
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentStart(r) {
			return token{}, errAt(l.src, start, "expected parameter name after $")
		}
		name := l.lexIdentText()
		return token{tokParam, name, start}, nil
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber()
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if isIdentStart(r) {
		text := l.lexIdentText()
		if keywords[strings.ToUpper(text)] {
			return token{tokKeyword, text, start}, nil
		}
		return token{tokIdent, text, start}, nil
	}
	return token{}, errAt(l.src, start, "unexpected character %q", string(r))
}

func (l *lexer) lexIdentText() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexBacktickIdent() (token, error) {
	start := l.pos
	l.pos++ // opening backtick
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '`' {
			if l.peekByteAt(1) == '`' { // escaped backtick
				sb.WriteByte('`')
				l.pos += 2
				continue
			}
			l.pos++
			return token{tokIdent, sb.String(), start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, errAt(l.src, start, "unterminated backtick identifier")
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{tokString, sb.String(), start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, errAt(l.src, start, "unterminated string")
			}
			esc := l.src[l.pos]
			l.pos++
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '\'', '"', '`':
				sb.WriteByte(esc)
			case 'u':
				if l.pos+4 > len(l.src) {
					return token{}, errAt(l.src, l.pos, "bad unicode escape")
				}
				var r rune
				for i := 0; i < 4; i++ {
					d := l.src[l.pos+i]
					var v rune
					switch {
					case d >= '0' && d <= '9':
						v = rune(d - '0')
					case d >= 'a' && d <= 'f':
						v = rune(d-'a') + 10
					case d >= 'A' && d <= 'F':
						v = rune(d-'A') + 10
					default:
						return token{}, errAt(l.src, l.pos, "bad unicode escape")
					}
					r = r*16 + v
				}
				l.pos += 4
				sb.WriteRune(r)
			default:
				return token{}, errAt(l.src, l.pos-1, "unknown escape \\%c", esc)
			}
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, errAt(l.src, start, "unterminated string")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	isFloat := false
	// Hex literal.
	if l.peekByte() == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.pos += 2
		for isHexDigit(l.peekByte()) {
			l.pos++
		}
		return token{tokInt, l.src[start:l.pos], start}, nil
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	// Fractional part, but not the range operator "..".
	if l.peekByte() == '.' && l.peekByteAt(1) != '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9' {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		save := l.pos
		l.pos++
		if c := l.peekByte(); c == '+' || c == '-' {
			l.pos++
		}
		if d := l.peekByte(); d >= '0' && d <= '9' {
			isFloat = true
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind, l.src[start:l.pos], start}, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
