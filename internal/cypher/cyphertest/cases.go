// Package cyphertest holds the golden equivalence corpus shared by the
// query-engine tests: internal/cypher's TestGolden checks every case
// against the recorded behavior of the retired tree-walking interpreter,
// and internal/core's sharded parity test re-runs the same corpus against
// a multi-hub ShardedKB (bridges included) and requires results identical
// to the single-store KnowledgeBase. Keeping the table here lets both
// consumers import it without an import cycle (core imports cypher).
package cyphertest

import (
	"time"

	"repro/internal/value"
)

// Now is the fixed clock every corpus run uses, so datetime()/timestamp()
// render identically across engines and stores.
var Now = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// Case is one corpus entry. The fixture it runs against (4 Persons, 3
// Cities, 5 Widgets, 10 relationships, indexes on Person.name and
// City.code) is built by each consumer — see internal/cypher's
// goldenFixture and internal/core's sharded parity fixture, which must
// create the same entities in the same order.
type Case struct {
	Name    string
	Query   string
	Params  map[string]value.Value
	Bind    map[string]value.Value
	Ordered bool // compare row order exactly (ORDER BY queries)
	Write   bool // run in a write tx against a fresh fixture, dump final state
}

// Cases returns the corpus. The table is append-only in spirit: renaming or
// deleting a case invalidates the recorded golden results.
func Cases() []Case {
	p := map[string]value.Value{
		"who":  value.Str("Ada"),
		"min":  value.Int(30),
		"list": value.ListOf([]value.Value{value.Int(1), value.Int(2), value.Int(3)}),
	}
	bindNew := map[string]value.Value{"NEW": value.Node(1), "OLD": value.Null}
	return []Case{
		// -- basic matching and predicates --
		{Name: "all-persons", Query: "MATCH (p:Person) RETURN p.name"},
		{Name: "full-scan", Query: "MATCH (n) RETURN count(*)"},
		{Name: "index-eq", Query: "MATCH (p:Person {name: 'Ada'}) RETURN p.age, p.score"},
		{Name: "index-eq-param", Query: "MATCH (p:Person {name: $who}) RETURN p.age", Params: p},
		{Name: "where-and-or", Query: "MATCH (p:Person) WHERE p.age > 30 AND (p.nick IS NULL OR p.age < 40) RETURN p.name"},
		{Name: "where-ternary-null", Query: "MATCH (p:Person) WHERE p.nick = 'cy' RETURN p.name"},
		{Name: "where-in", Query: "MATCH (p:Person) WHERE p.age IN [29, 36] RETURN p.name"},
		{Name: "where-in-param", Query: "MATCH (w:Widget) WHERE w.n IN $list RETURN w.n", Params: p},
		{Name: "string-preds", Query: "MATCH (p:Person) WHERE p.name STARTS WITH 'A' OR p.name ENDS WITH 'e' OR p.name CONTAINS 'y' RETURN p.name"},
		{Name: "regex", Query: "MATCH (c:City) WHERE c.code =~ '[LP].*' RETURN c.code"},
		{Name: "multi-label", Query: "MATCH (a:Person:Admin) RETURN a.name"},
		{Name: "not-null-check", Query: "MATCH (p:Person) WHERE p.nick IS NOT NULL RETURN p.name, p.nick"},
		{Name: "xor-not", Query: "MATCH (p:Person) WHERE (p.age > 30) XOR (p.name = 'Dee') RETURN p.name"},
		{Name: "arith", Query: "MATCH (p:Person {name: 'Ada'}) RETURN p.age + 4, p.age - 6, p.age * 2, p.age / 4, p.age % 5, 2 ^ 3, -p.age"},
		{Name: "comparison-chain", Query: "MATCH (p:Person) WHERE 29 <= p.age < 40 RETURN p.name"},

		// -- relationships, directions, joins --
		{Name: "rel-basic", Query: "MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN a.name, b.name, k.since"},
		{Name: "rel-undirected", Query: "MATCH (a:Person {name: 'Bob'})-[:KNOWS]-(b) RETURN b.name"},
		{Name: "rel-incoming", Query: "MATCH (a:Person)<-[:KNOWS]-(b:Person {name: 'Ada'}) RETURN a.name"},
		{Name: "rel-types-alt", Query: "MATCH (a:Person {name: 'Ada'})-[r:KNOWS|WORKS_WITH]->(b) RETURN type(r), b.name"},
		{Name: "rel-prop-filter", Query: "MATCH (a)-[k:KNOWS {since: 2019}]->(b) RETURN a.name, b.name"},
		{Name: "chain-anon", Query: "MATCH (a:Person)-[:KNOWS]->()-[:KNOWS]->(c) RETURN a.name, c.name"},
		{Name: "multi-pattern-join", Query: "MATCH (a:Person)-[:LIVES_IN]->(c:City), (b:Person)-[:LIVES_IN]->(c) WHERE a.name < b.name RETURN a.name, b.name, c.code"},
		{Name: "multi-pattern-cross", Query: "MATCH (a:Person {name: 'Ada'}), (c:City {code: 'REY'}) RETURN a.name, c.code"},
		{Name: "varhops", Query: "MATCH (a:Person {name: 'Ada'})-[:KNOWS*1..3]->(b) RETURN b.name"},
		{Name: "varhops-counted", Query: "MATCH (a:Person {name: 'Ada'})-[rs:KNOWS*2..2]->(b) RETURN size(rs), b.name"},
		{Name: "path-var", Query: "MATCH pth = (a:Person {name: 'Ada'})-[:KNOWS]->(b) RETURN size(pth), b.name"},
		{Name: "rel-uniqueness", Query: "MATCH (a)-[r1:KNOWS]->(b)-[r2:KNOWS]->(c) RETURN a.name, b.name, c.name"},
		{Name: "degree-fn", Query: "MATCH (p:Person {name: 'Ada'}) RETURN degree(p), degree(p, 'KNOWS')"},

		// -- OPTIONAL MATCH --
		{Name: "optional-hit-miss", Query: "MATCH (p:Person) OPTIONAL MATCH (p)-[:WORKS_WITH]->(w) RETURN p.name, w.name"},
		{Name: "optional-null-prop", Query: "MATCH (c:City) OPTIONAL MATCH (c)<-[:LIVES_IN]-(p:Person {age: 29}) RETURN c.code, p.name"},
		{Name: "optional-then-where", Query: "MATCH (p:Person) OPTIONAL MATCH (p)-[:LIVES_IN]->(c:City) WHERE c.pop > 3000000 RETURN p.name, c.code"},

		// -- UNWIND / WITH --
		{Name: "unwind-literal", Query: "UNWIND [3, 1, 2] AS x RETURN x", Ordered: true},
		{Name: "unwind-null-skip", Query: "UNWIND [1, null, 2] AS x RETURN x"},
		{Name: "unwind-param", Query: "UNWIND $list AS x RETURN x * 10", Params: p, Ordered: true},
		{Name: "unwind-nested", Query: "UNWIND [[1,2],[3]] AS xs UNWIND xs AS x RETURN x", Ordered: true},
		{Name: "with-filter", Query: "MATCH (p:Person) WITH p, p.age AS a WHERE a >= $min RETURN p.name, a", Params: p},
		{Name: "with-distinct", Query: "MATCH (p:Person) WITH DISTINCT p.age AS a RETURN a"},
		{Name: "with-star", Query: "MATCH (p:Person {name: 'Ada'}) WITH * RETURN p.name"},
		{Name: "with-orderby-limit", Query: "MATCH (p:Person) WITH p ORDER BY p.age DESC, p.name LIMIT 2 RETURN p.name", Ordered: true},
		{Name: "with-chain-agg", Query: "MATCH (p:Person)-[:LIVES_IN]->(c:City) WITH c, count(p) AS residents WHERE residents > 1 RETURN c.code, residents"},

		// -- projections, ORDER BY, SKIP/LIMIT, DISTINCT --
		{Name: "orderby-pre-projection", Query: "MATCH (p:Person) RETURN p.name ORDER BY p.age DESC, p.name ASC", Ordered: true},
		{Name: "orderby-alias", Query: "MATCH (p:Person) RETURN p.name AS n, p.age AS a ORDER BY a, n", Ordered: true},
		{Name: "skip-limit", Query: "MATCH (p:Person) RETURN p.name ORDER BY p.name SKIP 1 LIMIT 2", Ordered: true},
		{Name: "limit-expr", Query: "MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 1 + 1", Ordered: true},
		{Name: "distinct-rows", Query: "MATCH (p:Person) RETURN DISTINCT p.age"},
		{Name: "return-star", Query: "MATCH (c:City {code: 'LON'}) RETURN *"},
		{Name: "duplicate-free-columns", Query: "MATCH (p:Person {name: 'Ada'}) RETURN p.age AS x, p.age + 1 AS y"},

		// -- aggregation --
		{Name: "agg-global", Query: "MATCH (p:Person) RETURN count(*), count(p.nick), sum(p.age), min(p.age), max(p.age)"},
		{Name: "agg-avg-stdev", Query: "MATCH (p:Person) RETURN avg(p.age), stdev(p.age)"},
		{Name: "agg-grouped", Query: "MATCH (p:Person) RETURN p.age AS a, count(*) ORDER BY a", Ordered: true},
		{Name: "agg-collect", Query: "MATCH (p:Person) WITH p ORDER BY p.name RETURN collect(p.name)", Ordered: true},
		{Name: "agg-distinct", Query: "MATCH (p:Person) RETURN count(DISTINCT p.age)"},
		{Name: "agg-empty-input", Query: "MATCH (p:Person {name: 'Nobody'}) RETURN count(*), sum(p.age), collect(p.name)"},
		{Name: "agg-expr-around", Query: "MATCH (p:Person) RETURN count(*) + 100, max(p.age) - min(p.age)"},
		{Name: "agg-key-and-agg-mixed", Query: "MATCH (p:Person)-[:LIVES_IN]->(c:City) RETURN c.code AS code, collect(p.name), count(*) ORDER BY code", Ordered: true},

		// -- fast-count store --
		{Name: "fastcount-all", Query: "MATCH (n) RETURN count(n)"},
		{Name: "fastcount-label", Query: "MATCH (p:Person) RETURN count(p)"},
		{Name: "fastcount-prop", Query: "MATCH (p:Person {name: 'Ada'}) RETURN count(p)"},
		{Name: "fastcount-star", Query: "MATCH (w:Widget) RETURN count(*)"},
		{Name: "countnodes-fn", Query: "RETURN countNodes('Person'), countNodes('Person', 'name', 'Ada')"},

		// -- expressions: CASE, lists, maps, slices, reduce, quantifiers --
		{Name: "case-searched", Query: "MATCH (p:Person) RETURN p.name, CASE WHEN p.age < 30 THEN 'young' WHEN p.age < 40 THEN 'mid' ELSE 'senior' END"},
		{Name: "case-simple", Query: "MATCH (p:Person) RETURN p.name, CASE p.age WHEN 29 THEN 'twentynine' ELSE 'other' END"},
		{Name: "list-literal-index", Query: "RETURN [1, 2, 3][0], [1, 2, 3][-1], [1, 2, 3][5]"},
		{Name: "list-slice", Query: "RETURN [1,2,3,4][1..3], [1,2,3,4][..2], [1,2,3,4][-2..]"},
		{Name: "map-literal", Query: "RETURN {a: 1, b: 'two', c: [3]}"},
		{Name: "map-index", Query: "RETURN {a: 1}['a'], {a: 1}['b']"},
		{Name: "list-comp", Query: "RETURN [x IN range(1, 6) WHERE x % 2 = 0 | x * x]"},
		{Name: "list-comp-novar", Query: "RETURN [x IN [1,2,3]]"},
		{Name: "quantifiers", Query: "RETURN all(x IN [2,4] WHERE x % 2 = 0), any(x IN [1,2] WHERE x > 1), none(x IN [1] WHERE x > 5), single(x IN [1,2,3] WHERE x = 2)"},
		{Name: "quantifier-null", Query: "RETURN any(x IN [1, null] WHERE x > 5)"},
		{Name: "reduce", Query: "RETURN reduce(acc = 0, x IN [1,2,3,4] | acc + x)"},
		{Name: "reduce-over-prop", Query: "MATCH (p:Person {name: 'Ada'}) RETURN reduce(s = '', c IN ['a','b'] | s + c) + p.name"},
		{Name: "exists-pattern", Query: "MATCH (p:Person) WHERE (p)-[:WORKS_WITH]->() RETURN p.name"},
		{Name: "exists-fn", Query: "MATCH (p:Person) WHERE exists((p)-[:LIVES_IN]->(:City {code: 'PAR'})) RETURN p.name"},
		{Name: "not-exists", Query: "MATCH (p:Person) WHERE NOT (p)-[:WORKS_WITH]->() RETURN p.name"},

		// -- functions --
		{Name: "fn-entity", Query: "MATCH (a:Person {name: 'Ada'})-[r:KNOWS]->(b) RETURN id(a) >= 0, labels(a), type(r), id(startnode(r)) = id(a), id(endnode(r)) = id(b)"},
		{Name: "fn-props-keys", Query: "MATCH (p:Person {name: 'Cyd'}) RETURN properties(p), keys(p)"},
		{Name: "fn-strings", Query: "RETURN toLower('AbC'), toUpper('x'), trim('  hi  '), replace('aaa', 'a', 'b'), split('a,b', ','), left('hello', 2), right('hello', 3), reverse('abc'), substring('hello', 1, 3)"},
		{Name: "fn-numbers", Query: "RETURN abs(-3), ceil(1.2), floor(1.8), round(2.5), sqrt(16), sign(-2), toFloat('1.5'), toInteger('7'), toString(42), toBoolean('true')"},
		{Name: "fn-lists", Query: "RETURN size([1,2]), head([1,2]), last([1,2]), tail([1,2,3]), range(1, 7, 2), coalesce(null, 2, 3)"},
		{Name: "fn-temporal", Query: "RETURN timestamp(), datetime().year, datetime().epochSeconds, duration('90m')"},
		{Name: "fn-datetime-fields", Query: "WITH datetime('2024-06-15T10:30:00Z') AS d RETURN d.year, d.month, d.day, d.hour, d.minute, d.second"},

		// -- parameters and pre-bindings (rule-style) --
		{Name: "param-everywhere", Query: "MATCH (p:Person) WHERE p.name = $who RETURN p.age >= $min", Params: p},
		{Name: "bindings-new", Query: "RETURN NEW.name, NEW.age, OLD IS NULL", Bind: bindNew},
		{Name: "bindings-match", Query: "MATCH (NEW)-[:KNOWS]->(b) RETURN b.name", Bind: bindNew},

		// -- UNION --
		{Name: "union-dedupe", Query: "MATCH (p:Person {age: 29}) RETURN p.name AS n UNION MATCH (p:Person {name: 'Cyd'}) RETURN p.name AS n"},
		{Name: "union-all", Query: "RETURN 1 AS x UNION ALL RETURN 1 AS x UNION ALL RETURN 2 AS x"},

		// -- writes --
		{Name: "create-basic", Query: "CREATE (a:Thing {k: 1})-[:REL {w: 2}]->(b:Thing {k: 2}) RETURN a.k, b.k", Write: true},
		{Name: "create-from-match", Query: "MATCH (p:Person {name: 'Ada'}) CREATE (p)-[:TAGGED]->(t:Tag {name: 'vip'}) RETURN t.name", Write: true},
		{Name: "create-unwind", Query: "UNWIND [1,2,3] AS i CREATE (n:Num {v: i * 10}) RETURN n.v", Write: true},
		{Name: "merge-match-existing", Query: "MERGE (p:Person {name: 'Ada'}) ON CREATE SET p.created = true ON MATCH SET p.seen = 7 RETURN p.seen, p.created", Write: true},
		{Name: "merge-create-new", Query: "MERGE (p:Person {name: 'Eve'}) ON CREATE SET p.created = true RETURN p.name, p.created", Write: true},
		{Name: "merge-rel", Query: "MATCH (a:Person {name: 'Ada'}), (b:Person {name: 'Dee'}) MERGE (a)-[k:KNOWS]->(b) ON CREATE SET k.since = 2026 RETURN k.since", Write: true},
		{Name: "set-forms", Query: "MATCH (p:Person {name: 'Bob'}) SET p.age = 42, p:Senior SET p += {mood: 'fine'} RETURN p.age, labels(p), p.mood", Write: true},
		{Name: "set-replace-props", Query: "MATCH (c:City {code: 'REY'}) SET c = {code: 'REY', fresh: true} RETURN properties(c)", Write: true},
		{Name: "set-null-target", Query: "OPTIONAL MATCH (p:Person {name: 'Zed'}) SET p.x = 1 RETURN p", Write: true},
		{Name: "remove-forms", Query: "MATCH (p:Person {name: 'Cyd'}) REMOVE p.nick, p:Admin RETURN p.nick, labels(p)", Write: true},
		{Name: "delete-rel", Query: "MATCH (a:Person {name: 'Ada'})-[r:WORKS_WITH]->() DELETE r RETURN count(r)", Write: true},
		{Name: "detach-delete", Query: "MATCH (w:Widget) DETACH DELETE w", Write: true},
		{Name: "foreach", Query: "MATCH (c:City {code: 'LON'}) FOREACH (i IN range(1, 3) | CREATE (:Probe {n: i})) RETURN c.code", Write: true},
		{Name: "foreach-nested", Query: "FOREACH (i IN [1, 2] | FOREACH (j IN [10] | CREATE (:Cell {v: i + j})))", Write: true},
		{Name: "write-then-read", Query: "CREATE (x:Tmp {v: 1}) WITH x SET x.v = x.v + 1 RETURN x.v", Write: true},
	}
}
