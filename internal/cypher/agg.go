package cypher

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// aggregator accumulates values of one aggregate call within one group.
type aggregator interface {
	add(v value.Value) error
	result() value.Value
}

func newAggregator(call *FuncCall) aggregator {
	var inner aggregator
	switch call.Name {
	case "count":
		inner = &countAgg{star: call.Star}
	case "sum":
		inner = &sumAgg{}
	case "avg":
		inner = &avgAgg{}
	case "min":
		inner = &minMaxAgg{min: true}
	case "max":
		inner = &minMaxAgg{}
	case "collect":
		inner = &collectAgg{}
	case "stdev":
		inner = &stdevAgg{}
	default:
		inner = &countAgg{}
	}
	if call.Distinct {
		return &distinctAgg{inner: inner, seen: make(map[string]bool)}
	}
	return inner
}

type distinctAgg struct {
	inner aggregator
	seen  map[string]bool
}

func (a *distinctAgg) add(v value.Value) error {
	if v.IsNull() {
		return a.inner.add(v) // inner aggregators skip nulls themselves
	}
	k := v.HashKey()
	if a.seen[k] {
		return nil
	}
	a.seen[k] = true
	return a.inner.add(v)
}

func (a *distinctAgg) result() value.Value { return a.inner.result() }

type countAgg struct {
	star bool
	n    int64
}

func (a *countAgg) add(v value.Value) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAgg) result() value.Value { return value.Int(a.n) }

type sumAgg struct {
	isFloat bool
	i       int64
	f       float64
}

func (a *sumAgg) add(v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		iv, _ := v.AsInt()
		a.i += iv
		a.f += float64(iv)
		return nil
	case value.KindFloat:
		fv, _ := v.AsFloat()
		a.isFloat = true
		a.f += fv
		return nil
	default:
		return fmt.Errorf("cypher: sum() of %s", v.Kind())
	}
}

func (a *sumAgg) result() value.Value {
	if a.isFloat {
		return value.Float(a.f)
	}
	return value.Int(a.i)
}

type avgAgg struct {
	n   int64
	sum float64
}

func (a *avgAgg) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.NumberAsFloat()
	if !ok {
		return fmt.Errorf("cypher: avg() of %s", v.Kind())
	}
	a.n++
	a.sum += f
	return nil
}

func (a *avgAgg) result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	return value.Float(a.sum / float64(a.n))
}

type minMaxAgg struct {
	min  bool
	best value.Value
	set  bool
}

func (a *minMaxAgg) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.set {
		a.best = v
		a.set = true
		return nil
	}
	c := value.Compare(v, a.best)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAgg) result() value.Value {
	if !a.set {
		return value.Null
	}
	return a.best
}

type collectAgg struct {
	vals []value.Value
}

func (a *collectAgg) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	a.vals = append(a.vals, v)
	return nil
}

func (a *collectAgg) result() value.Value { return value.ListOf(a.vals) }

// stdevAgg computes the sample standard deviation with Welford's algorithm.
type stdevAgg struct {
	n    int64
	mean float64
	m2   float64
}

func (a *stdevAgg) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.NumberAsFloat()
	if !ok {
		return fmt.Errorf("cypher: stdev() of %s", v.Kind())
	}
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
	return nil
}

func (a *stdevAgg) result() value.Value {
	if a.n < 2 {
		if a.n == 0 {
			return value.Null
		}
		return value.Float(0)
	}
	return value.Float(math.Sqrt(a.m2 / float64(a.n-1)))
}
