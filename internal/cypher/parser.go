package cypher

import (
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/value"
)

type parser struct {
	src  string
	toks []token
	pos  int
}

// parseCount counts Parse/ParseExpr invocations process-wide. Plan-cache
// tests use it to prove the hot path performs zero parses in steady state.
var parseCount atomic.Int64

// ParseCount reports how many times this process has parsed a query or
// standalone expression.
func ParseCount() int64 { return parseCount.Load() }

// Parse parses a full statement (a clause pipeline). A leading EXPLAIN
// marks the statement so Execute describes the physical plan instead of
// running it.
func Parse(src string) (*Statement, error) {
	parseCount.Add(1)
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt := &Statement{Query: src}
	// EXPLAIN is not a reserved keyword (it stays usable as an identifier);
	// a leading bare identifier can only be this prefix, since no clause
	// starts with one.
	if p.at(tokIdent) && strings.EqualFold(p.cur().text, "EXPLAIN") {
		p.advance()
		stmt.Explain = true
	}
	clauses, err := p.parseClauses()
	if err != nil {
		return nil, err
	}
	stmt.Clauses = clauses
	for p.atKeyword("UNION") {
		branch := UnionBranch{pos: p.cur().pos}
		p.advance()
		if p.at(tokIdent) && strings.EqualFold(p.cur().text, "ALL") {
			p.advance()
			branch.All = true
		}
		branch.Clauses, err = p.parseClauses()
		if err != nil {
			return nil, err
		}
		stmt.Unions = append(stmt.Unions, branch)
	}
	if p.at(tokSemi) {
		p.advance()
	}
	if !p.at(tokEOF) {
		return nil, p.errHere("unexpected %s after statement", p.cur())
	}
	if len(stmt.Clauses) == 0 {
		return nil, errAt(src, 0, "empty query")
	}
	if err := validateClauseOrder(src, stmt.Clauses); err != nil {
		return nil, err
	}
	for _, b := range stmt.Unions {
		if err := validateClauseOrder(src, b.Clauses); err != nil {
			return nil, err
		}
		if len(b.Clauses) == 0 {
			return nil, errAt(src, b.pos, "empty UNION branch")
		}
		if _, ok := b.Clauses[len(b.Clauses)-1].(*ReturnClause); !ok {
			return nil, errAt(src, b.pos, "every UNION branch must end in RETURN")
		}
	}
	if len(stmt.Unions) > 0 {
		if _, ok := stmt.Clauses[len(stmt.Clauses)-1].(*ReturnClause); !ok {
			return nil, errAt(src, stmt.Unions[0].pos, "every UNION branch must end in RETURN")
		}
	}
	return stmt, nil
}

// parseClauses parses a clause pipeline up to EOF, ';' or UNION.
func (p *parser) parseClauses() ([]Clause, error) {
	var out []Clause
	for !p.at(tokEOF) && !p.at(tokSemi) && !p.atKeyword("UNION") {
		cl, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		out = append(out, cl)
	}
	return out, nil
}

// ParseExpr parses a standalone expression (used for rule guards).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	parseCount.Add(1)
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errHere("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func validateClauseOrder(src string, clauses []Clause) error {
	for i, cl := range clauses {
		if r, ok := cl.(*ReturnClause); ok && i != len(clauses)-1 {
			return errAt(src, r.pos, "RETURN must be the final clause")
		}
		var preds []Expr
		switch c := cl.(type) {
		case *MatchClause:
			preds = append(preds, c.Where)
		case *WithClause:
			preds = append(preds, c.Where)
		case *UnwindClause:
			preds = append(preds, c.List)
		}
		for _, p := range preds {
			if p == nil {
				continue
			}
			var aggs []*FuncCall
			collectAggregates(p, &aggs)
			if len(aggs) > 0 {
				return errAt(src, aggs[0].pos,
					"aggregate function %s() is not allowed in this context", aggs[0].Name)
			}
		}
	}
	return nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokenKind) bool {
	return p.toks[p.pos].kind == k
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errHere("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errHere("expected %s, found %s", what, p.cur())
	}
	t := p.cur()
	p.advance()
	return t, nil
}

func (p *parser) errHere(format string, args ...any) error {
	return errAt(p.src, p.cur().pos, format, args...)
}

// symbolName accepts an identifier or a keyword used as a name (labels,
// property keys and relationship types may collide with keywords).
func (p *parser) symbolName() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	if t.kind == tokKeyword {
		p.advance()
		return t.text, nil
	}
	return "", p.errHere("expected name, found %s", t)
}

func (p *parser) parseClause() (Clause, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, p.errHere("expected clause keyword, found %s", t)
	}
	switch strings.ToUpper(t.text) {
	case "MATCH":
		p.advance()
		return p.parseMatch(false)
	case "OPTIONAL":
		p.advance()
		if err := p.expectKeyword("MATCH"); err != nil {
			return nil, err
		}
		return p.parseMatch(true)
	case "UNWIND":
		p.advance()
		return p.parseUnwind()
	case "WITH":
		p.advance()
		return p.parseWith()
	case "RETURN":
		pos := t.pos
		p.advance()
		r, err := p.parseReturn()
		if err != nil {
			return nil, err
		}
		r.pos = pos
		return r, nil
	case "CREATE":
		p.advance()
		pats, err := p.parsePatternList()
		if err != nil {
			return nil, err
		}
		return &CreateClause{Patterns: pats}, nil
	case "MERGE":
		p.advance()
		return p.parseMerge()
	case "DELETE":
		p.advance()
		return p.parseDelete(false)
	case "DETACH":
		p.advance()
		if err := p.expectKeyword("DELETE"); err != nil {
			return nil, err
		}
		return p.parseDelete(true)
	case "SET":
		p.advance()
		items, err := p.parseSetItems()
		if err != nil {
			return nil, err
		}
		return &SetClause{Items: items}, nil
	case "REMOVE":
		p.advance()
		return p.parseRemove()
	case "FOREACH":
		p.advance()
		return p.parseForeach()
	default:
		return nil, p.errHere("unexpected keyword %s", t.text)
	}
}

func (p *parser) parseMatch(optional bool) (Clause, error) {
	pats, err := p.parsePatternList()
	if err != nil {
		return nil, err
	}
	m := &MatchClause{Optional: optional, Patterns: pats}
	if p.acceptKeyword("WHERE") {
		m.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (p *parser) parseUnwind() (Clause, error) {
	list, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	name, err := p.symbolName()
	if err != nil {
		return nil, err
	}
	return &UnwindClause{List: list, Var: name}, nil
}

func (p *parser) parseWith() (Clause, error) {
	w := &WithClause{}
	w.Distinct = p.acceptKeyword("DISTINCT")
	if p.at(tokStar) {
		p.advance()
		w.Star = true
		// WITH *, extra, items
		if p.at(tokComma) {
			p.advance()
			items, err := p.parseReturnItems()
			if err != nil {
				return nil, err
			}
			w.Items = items
		}
	} else {
		items, err := p.parseReturnItems()
		if err != nil {
			return nil, err
		}
		w.Items = items
	}
	var err error
	w.OrderBy, w.Skip, w.Limit, err = p.parseOrderSkipLimit()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		w.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (p *parser) parseReturn() (*ReturnClause, error) {
	r := &ReturnClause{}
	r.Distinct = p.acceptKeyword("DISTINCT")
	if p.at(tokStar) {
		p.advance()
		r.Star = true
		if p.at(tokComma) {
			p.advance()
			items, err := p.parseReturnItems()
			if err != nil {
				return nil, err
			}
			r.Items = items
		}
	} else {
		items, err := p.parseReturnItems()
		if err != nil {
			return nil, err
		}
		r.Items = items
	}
	var err error
	r.OrderBy, r.Skip, r.Limit, err = p.parseOrderSkipLimit()
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseOrderSkipLimit() ([]*SortItem, Expr, Expr, error) {
	var orderBy []*SortItem
	var skip, limit Expr
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, nil, nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, nil, err
			}
			item := &SortItem{Expr: e}
			if p.acceptKeyword("DESC") || p.acceptKeyword("DESCENDING") {
				item.Desc = true
			} else if p.acceptKeyword("ASC") || p.acceptKeyword("ASCENDING") {
				// ascending is the default
			}
			orderBy = append(orderBy, item)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}
	if p.acceptKeyword("SKIP") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, nil, nil, err
		}
		skip = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, nil, nil, err
		}
		limit = e
	}
	return orderBy, skip, limit, nil
}

func (p *parser) parseReturnItems() ([]*ReturnItem, error) {
	var items []*ReturnItem
	for {
		start := p.cur().pos
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		end := p.cur().pos
		text := strings.TrimSpace(p.src[start:min(end, len(p.src))])
		item := &ReturnItem{Expr: e, Text: text}
		if p.acceptKeyword("AS") {
			alias, err := p.symbolName()
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		}
		items = append(items, item)
		if !p.at(tokComma) {
			return items, nil
		}
		p.advance()
	}
}

func (p *parser) parseMerge() (Clause, error) {
	pat, err := p.parsePatternPart()
	if err != nil {
		return nil, err
	}
	m := &MergeClause{Pattern: pat}
	for p.atKeyword("ON") {
		p.advance()
		switch {
		case p.acceptKeyword("CREATE"):
			if err := p.expectKeyword("SET"); err != nil {
				return nil, err
			}
			items, err := p.parseSetItems()
			if err != nil {
				return nil, err
			}
			m.OnCreateSet = append(m.OnCreateSet, items...)
		case p.acceptKeyword("MATCH"):
			if err := p.expectKeyword("SET"); err != nil {
				return nil, err
			}
			items, err := p.parseSetItems()
			if err != nil {
				return nil, err
			}
			m.OnMatchSet = append(m.OnMatchSet, items...)
		default:
			return nil, p.errHere("expected CREATE or MATCH after ON")
		}
	}
	return m, nil
}

func (p *parser) parseDelete(detach bool) (Clause, error) {
	var exprs []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	return &DeleteClause{Detach: detach, Exprs: exprs}, nil
}

func (p *parser) parseSetItems() ([]*SetItem, error) {
	var items []*SetItem
	for {
		item, err := p.parseSetItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.at(tokComma) {
			return items, nil
		}
		p.advance()
	}
}

func (p *parser) parseSetItem() (*SetItem, error) {
	name, err := p.symbolName()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokDot):
		p.advance()
		key, err := p.symbolName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &SetItem{Kind: SetProp, Target: name, Key: key, Value: val}, nil
	case p.at(tokColon):
		var labels []string
		for p.at(tokColon) {
			p.advance()
			l, err := p.symbolName()
			if err != nil {
				return nil, err
			}
			labels = append(labels, l)
		}
		return &SetItem{Kind: SetLabels, Target: name, Labels: labels}, nil
	case p.at(tokPlusEq):
		p.advance()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &SetItem{Kind: SetMergeProps, Target: name, Value: val}, nil
	case p.at(tokEq):
		p.advance()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &SetItem{Kind: SetAllProps, Target: name, Value: val}, nil
	default:
		return nil, p.errHere("expected '.', ':', '=' or '+=' in SET item")
	}
}

func (p *parser) parseRemove() (Clause, error) {
	var items []*RemoveItem
	for {
		name, err := p.symbolName()
		if err != nil {
			return nil, err
		}
		item := &RemoveItem{Target: name}
		switch {
		case p.at(tokDot):
			p.advance()
			key, err := p.symbolName()
			if err != nil {
				return nil, err
			}
			item.Key = key
		case p.at(tokColon):
			for p.at(tokColon) {
				p.advance()
				l, err := p.symbolName()
				if err != nil {
					return nil, err
				}
				item.Labels = append(item.Labels, l)
			}
		default:
			return nil, p.errHere("expected '.' or ':' in REMOVE item")
		}
		items = append(items, item)
		if !p.at(tokComma) {
			return &RemoveClause{Items: items}, nil
		}
		p.advance()
	}
}

func (p *parser) parseForeach() (Clause, error) {
	if _, err := p.expect(tokLParen, "( after FOREACH"); err != nil {
		return nil, err
	}
	name, err := p.symbolName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	list, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPipe, "| in FOREACH"); err != nil {
		return nil, err
	}
	fe := &ForeachClause{Var: name, List: list}
	for !p.at(tokRParen) {
		if p.at(tokEOF) {
			return nil, p.errHere("unterminated FOREACH")
		}
		cl, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		switch cl.(type) {
		case *CreateClause, *MergeClause, *SetClause, *RemoveClause, *DeleteClause, *ForeachClause:
		default:
			return nil, p.errHere("FOREACH bodies may only contain update clauses")
		}
		fe.Body = append(fe.Body, cl)
	}
	p.advance() // )
	return fe, nil
}

// ---- Patterns ----

func (p *parser) parsePatternList() ([]*PatternPart, error) {
	var parts []*PatternPart
	for {
		part, err := p.parsePatternPart()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		if !p.at(tokComma) {
			return parts, nil
		}
		p.advance()
	}
}

func (p *parser) parsePatternPart() (*PatternPart, error) {
	part := &PatternPart{}
	// Optional path variable: ident '=' '('
	if p.at(tokIdent) && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokEq {
		part.Var = p.cur().text
		p.advance()
		p.advance()
	}
	n, err := p.parseNodePattern()
	if err != nil {
		return nil, err
	}
	part.Nodes = append(part.Nodes, n)
	for p.at(tokMinus) || p.at(tokArrowL) {
		rel, err := p.parseRelPattern()
		if err != nil {
			return nil, err
		}
		next, err := p.parseNodePattern()
		if err != nil {
			return nil, err
		}
		part.Rels = append(part.Rels, rel)
		part.Nodes = append(part.Nodes, next)
	}
	return part, nil
}

func (p *parser) parseNodePattern() (*NodePattern, error) {
	start, err := p.expect(tokLParen, "(")
	if err != nil {
		return nil, err
	}
	n := &NodePattern{pos: start.pos}
	if p.at(tokIdent) {
		n.Var = p.cur().text
		p.advance()
	}
	for p.at(tokColon) {
		p.advance()
		label, err := p.symbolName()
		if err != nil {
			return nil, err
		}
		n.Labels = append(n.Labels, label)
	}
	if p.at(tokLBrace) {
		props, err := p.parsePropMap()
		if err != nil {
			return nil, err
		}
		n.Props = props
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseRelPattern() (*RelPattern, error) {
	r := &RelPattern{Dir: DirBoth, MinHops: 1, MaxHops: 1, pos: p.cur().pos}
	leftArrow := false
	switch {
	case p.at(tokArrowL):
		leftArrow = true
		p.advance()
	case p.at(tokMinus):
		p.advance()
	default:
		return nil, p.errHere("expected relationship pattern")
	}
	if p.at(tokLBracket) {
		p.advance()
		if p.at(tokIdent) {
			r.Var = p.cur().text
			p.advance()
		}
		if p.at(tokColon) {
			for {
				p.advance() // ':' or '|'
				// allow both | and |: as alternation separators
				if p.at(tokColon) {
					p.advance()
				}
				typ, err := p.symbolName()
				if err != nil {
					return nil, err
				}
				r.Types = append(r.Types, typ)
				if !p.at(tokPipe) {
					break
				}
			}
		}
		if p.at(tokStar) {
			p.advance()
			r.VarHops = true
			r.MinHops = 1
			r.MaxHops = -1
			if p.at(tokInt) {
				n, err := strconv.Atoi(p.cur().text)
				if err != nil {
					return nil, p.errHere("bad hop count")
				}
				p.advance()
				r.MinHops = n
				r.MaxHops = n
				if p.at(tokDotDot) {
					p.advance()
					r.MaxHops = -1
					if p.at(tokInt) {
						m, err := strconv.Atoi(p.cur().text)
						if err != nil {
							return nil, p.errHere("bad hop count")
						}
						p.advance()
						r.MaxHops = m
					}
				}
			} else if p.at(tokDotDot) {
				p.advance()
				r.MinHops = 0
				if p.at(tokInt) {
					m, err := strconv.Atoi(p.cur().text)
					if err != nil {
						return nil, p.errHere("bad hop count")
					}
					p.advance()
					r.MaxHops = m
				}
			} else {
				r.MinHops = 1
				r.MaxHops = -1
			}
		}
		if p.at(tokLBrace) {
			props, err := p.parsePropMap()
			if err != nil {
				return nil, err
			}
			r.Props = props
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.at(tokArrowR):
		if leftArrow {
			return nil, p.errHere("relationship cannot point both ways")
		}
		p.advance()
		r.Dir = DirRight
	case p.at(tokMinus):
		p.advance()
		if leftArrow {
			r.Dir = DirLeft
		} else {
			r.Dir = DirBoth
		}
	default:
		return nil, p.errHere("expected '->' or '-' to close relationship pattern")
	}
	return r, nil
}

func (p *parser) parsePropMap() (map[string]Expr, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	props := make(map[string]Expr)
	if p.at(tokRBrace) {
		p.advance()
		return props, nil
	}
	for {
		var key string
		switch {
		case p.at(tokIdent) || p.at(tokKeyword):
			key = p.cur().text
			p.advance()
		case p.at(tokString):
			key = p.cur().text
			p.advance()
		default:
			return nil, p.errHere("expected property key")
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		props[key] = val
		if p.at(tokComma) {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRBrace, "}"); err != nil {
			return nil, err
		}
		return props, nil
	}
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		pos := p.cur().pos
		p.advance()
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &BinaryOp{Op: OpOr, L: l, R: r, pos: pos}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("XOR") {
		pos := p.cur().pos
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryOp{Op: OpXor, L: l, R: r, pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		pos := p.cur().pos
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryOp{Op: OpAnd, L: l, R: r, pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var compOps = map[tokenKind]BinaryOpKind{
	tokEq: OpEq, tokNeq: OpNeq, tokLt: OpLt, tokGt: OpGt,
	tokLte: OpLte, tokGte: OpGte,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	// Postfix predicates and (possibly chained) comparisons.
	var chain Expr
	prev := l
	for {
		t := p.cur()
		if op, ok := compOps[t.kind]; ok {
			p.advance()
			r, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			cmp := &BinaryOp{Op: op, L: prev, R: r, pos: t.pos}
			if chain == nil {
				chain = Expr(cmp)
			} else {
				chain = &BinaryOp{Op: OpAnd, L: chain, R: cmp, pos: t.pos}
			}
			prev = r
			continue
		}
		break
	}
	if chain != nil {
		return chain, nil
	}
	// Other predicate forms bind at comparison level.
	switch {
	case p.atKeyword("IS"):
		p.advance()
		if p.acceptKeyword("NOT") {
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &UnaryOp{Op: OpIsNotNull, X: l}, nil
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &UnaryOp{Op: OpIsNull, X: l}, nil
	case p.atKeyword("IN"):
		pos := p.cur().pos
		p.advance()
		r, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: OpIn, L: l, R: r, pos: pos}, nil
	case p.atKeyword("STARTS"):
		pos := p.cur().pos
		p.advance()
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		r, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: OpStartsWith, L: l, R: r, pos: pos}, nil
	case p.atKeyword("ENDS"):
		pos := p.cur().pos
		p.advance()
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		r, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: OpEndsWith, L: l, R: r, pos: pos}, nil
	case p.atKeyword("CONTAINS"):
		pos := p.cur().pos
		p.advance()
		r, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: OpContains, L: l, R: r, pos: pos}, nil
	case p.at(tokRegexEq):
		pos := p.cur().pos
		p.advance()
		r, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: OpRegex, L: l, R: r, pos: pos}, nil
	}
	return l, nil
}

func (p *parser) parseAddSub() (Expr, error) {
	l, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		t := p.cur()
		p.advance()
		r, err := p.parseMulDiv()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.kind == tokMinus {
			op = OpSub
		}
		l = &BinaryOp{Op: op, L: l, R: r, pos: t.pos}
	}
	return l, nil
}

func (p *parser) parseMulDiv() (Expr, error) {
	l, err := p.parsePow()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) || p.at(tokPercent) {
		t := p.cur()
		p.advance()
		r, err := p.parsePow()
		if err != nil {
			return nil, err
		}
		var op BinaryOpKind
		switch t.kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		default:
			op = OpMod
		}
		l = &BinaryOp{Op: op, L: l, R: r, pos: t.pos}
	}
	return l, nil
}

func (p *parser) parsePow() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.at(tokCaret) {
		t := p.cur()
		p.advance()
		r, err := p.parsePow() // right-associative
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: OpPow, L: l, R: r, pos: t.pos}, nil
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.at(tokMinus):
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals for nicer ASTs.
		if lit, ok := x.(*Literal); ok {
			if neg, err := negLiteral(lit.Val); err == nil {
				return &Literal{Val: neg}, nil
			}
		}
		return &UnaryOp{Op: OpNeg, X: x}, nil
	case p.at(tokPlus):
		p.advance()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func negLiteral(v value.Value) (value.Value, error) {
	return value.Neg(v)
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokDot):
			p.advance()
			key, err := p.symbolName()
			if err != nil {
				return nil, err
			}
			x = &PropAccess{X: x, Key: key}
		case p.at(tokLBracket):
			p.advance()
			if p.at(tokDotDot) { // x[..to]
				p.advance()
				var to Expr
				if !p.at(tokRBracket) {
					to, err = p.parseExpr()
					if err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(tokRBracket, "]"); err != nil {
					return nil, err
				}
				x = &SliceExpr{X: x, To: to}
				continue
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.at(tokDotDot) {
				p.advance()
				var to Expr
				if !p.at(tokRBracket) {
					to, err = p.parseExpr()
					if err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(tokRBracket, "]"); err != nil {
					return nil, err
				}
				x = &SliceExpr{X: x, From: idx, To: to}
				continue
			}
			if _, err := p.expect(tokRBracket, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		var i int64
		var err error
		if strings.HasPrefix(t.text, "0x") || strings.HasPrefix(t.text, "0X") {
			i, err = strconv.ParseInt(t.text[2:], 16, 64)
		} else {
			i, err = strconv.ParseInt(t.text, 10, 64)
		}
		if err != nil {
			return nil, errAt(p.src, t.pos, "bad integer literal %q", t.text)
		}
		return &Literal{Val: value.Int(i)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(p.src, t.pos, "bad float literal %q", t.text)
		}
		return &Literal{Val: value.Float(f)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: value.Str(t.text)}, nil
	case tokParam:
		p.advance()
		return &Param{Name: t.text}, nil
	case tokKeyword:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.advance()
			return &Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: value.Bool(false)}, nil
		case "NULL":
			p.advance()
			return &Literal{Val: value.Null}, nil
		case "CASE":
			p.advance()
			return p.parseCase()
		case "EXISTS":
			p.advance()
			return p.parseExists(t.pos)
		case "COUNT", "NOT":
			// COUNT is not a keyword in our table; NOT handled earlier.
			return nil, p.errHere("unexpected keyword %s", t.text)
		default:
			return nil, p.errHere("unexpected keyword %s in expression", t.text)
		}
	case tokIdent:
		// Function call or variable.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokLParen {
			return p.parseFuncCall()
		}
		p.advance()
		return &Variable{Name: t.text, pos: t.pos}, nil
	case tokLBracket:
		return p.parseListAtom()
	case tokLBrace:
		return p.parseMapLit()
	case tokLParen:
		// Could be a parenthesized expression or a pattern expression.
		if pe, ok, err := p.tryParsePatternExpr(); err != nil {
			return nil, err
		} else if ok {
			return pe, nil
		}
		p.advance() // (
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errHere("unexpected %s in expression", t)
}

// tryParsePatternExpr speculatively parses a pattern expression like
// (n)-[:R]->(:L {k: v}). It only commits when the parse succeeds and the
// pattern is more than a bare parenthesized variable.
func (p *parser) tryParsePatternExpr() (Expr, bool, error) {
	save := p.pos
	part, err := p.parsePatternPart()
	if err != nil {
		p.pos = save
		return nil, false, nil
	}
	if len(part.Rels) == 0 && len(part.Nodes) == 1 &&
		len(part.Nodes[0].Labels) == 0 && part.Nodes[0].Props == nil {
		// Just "(x)" — treat as parenthesized expression instead.
		p.pos = save
		return nil, false, nil
	}
	return &PatternExpr{Pattern: part}, true, nil
}

func (p *parser) parseExists(pos int) (Expr, error) {
	if _, err := p.expect(tokLParen, "( after EXISTS"); err != nil {
		return nil, err
	}
	// EXISTS(pattern) or EXISTS(expr.prop).
	save := p.pos
	if part, err := p.parsePatternPart(); err == nil && (len(part.Rels) > 0 || len(part.Nodes[0].Labels) > 0 || part.Nodes[0].Props != nil) {
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return &PatternExpr{Pattern: part}, nil
	}
	p.pos = save
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &UnaryOp{Op: OpIsNotNull, X: e}, nil
}

var quantifiers = map[string]ListPredicateKind{
	"all": QuantAll, "any": QuantAny, "none": QuantNone, "single": QuantSingle,
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := p.cur()
	p.advance() // name
	p.advance() // (
	lower := strings.ToLower(name.text)
	if kind, isQuant := quantifiers[lower]; isQuant &&
		p.at(tokIdent) && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokKeyword && strings.EqualFold(p.toks[p.pos+1].text, "IN") {
		return p.parseListPredicate(kind)
	}
	if lower == "reduce" {
		return p.parseReduce()
	}
	call := &FuncCall{Name: lower, pos: name.pos}
	if p.at(tokStar) {
		p.advance()
		call.Star = true
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	call.Distinct = p.acceptKeyword("DISTINCT")
	if p.at(tokRParen) {
		p.advance()
		return call, nil
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
}

func (p *parser) parseCase() (Expr, error) {
	c := &CaseExpr{}
	if !p.atKeyword("WHEN") {
		test, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Test = test
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseListPredicate parses the tail of all/any/none/single(v IN list
// WHERE cond); the opening parenthesis is already consumed.
func (p *parser) parseListPredicate(kind ListPredicateKind) (Expr, error) {
	v, err := p.symbolName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	list, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &ListPredicate{Kind: kind, Var: v, List: list, Where: cond}, nil
}

// parseReduce parses the tail of reduce(acc = init, v IN list | body); the
// opening parenthesis is already consumed.
func (p *parser) parseReduce() (Expr, error) {
	acc, err := p.symbolName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq, "= in reduce()"); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ", in reduce()"); err != nil {
		return nil, err
	}
	v, err := p.symbolName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	list, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPipe, "| in reduce()"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &ReduceExpr{Acc: acc, Init: init, Var: v, List: list, Body: body}, nil
}

func (p *parser) parseListAtom() (Expr, error) {
	p.advance() // [
	// List comprehension: [ident IN expr ...]
	if p.at(tokIdent) && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		name := p.cur().text
		p.advance()
		p.advance() // IN
		list, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		comp := &ListComp{Var: name, List: list}
		if p.acceptKeyword("WHERE") {
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			comp.Where = w
		}
		if p.at(tokPipe) {
			p.advance()
			proj, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			comp.Proj = proj
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		return comp, nil
	}
	lit := &ListLit{}
	if p.at(tokRBracket) {
		p.advance()
		return lit, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		lit.Elems = append(lit.Elems, e)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		return lit, nil
	}
}

func (p *parser) parseMapLit() (Expr, error) {
	p.advance() // {
	m := &MapLit{}
	if p.at(tokRBrace) {
		p.advance()
		return m, nil
	}
	for {
		var key string
		switch {
		case p.at(tokIdent) || p.at(tokKeyword):
			key = p.cur().text
			p.advance()
		case p.at(tokString):
			key = p.cur().text
			p.advance()
		default:
			return nil, p.errHere("expected map key")
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		m.Keys = append(m.Keys, key)
		m.Vals = append(m.Vals, val)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRBrace, "}"); err != nil {
			return nil, err
		}
		return m, nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
