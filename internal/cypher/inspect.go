package cypher

import "sort"

// StatementInfo summarizes the static read/write footprint of a statement:
// which labels and relationship types it matches, which it creates, which
// labels and properties it sets. Rule engines use it to classify rules
// (intra-hub vs inter-hub, single-state vs multi-state) and to build the
// triggering graph for termination analysis.
type StatementInfo struct {
	MatchedNodeLabels []string
	MatchedRelTypes   []string
	CreatedNodeLabels []string
	CreatedRelTypes   []string
	SetLabels         []string
	SetPropKeys       []string
	RemovedLabels     []string
	RemovedPropKeys   []string
	Deletes           bool
}

// Inspect computes the static footprint of a parsed statement.
func Inspect(stmt *Statement) *StatementInfo {
	info := &StatementInfo{}
	for _, cl := range stmt.Clauses {
		switch c := cl.(type) {
		case *MatchClause:
			for _, p := range c.Patterns {
				info.addMatchedPattern(p)
			}
			if c.Where != nil {
				info.addExpr(c.Where)
			}
		case *WithClause:
			info.addItems(c.Items)
			if c.Where != nil {
				info.addExpr(c.Where)
			}
		case *ReturnClause:
			info.addItems(c.Items)
		case *UnwindClause:
			info.addExpr(c.List)
		case *CreateClause:
			for _, p := range c.Patterns {
				info.addCreatedPattern(p)
			}
		case *MergeClause:
			// MERGE both reads and may create its pattern.
			info.addMatchedPattern(c.Pattern)
			info.addCreatedPattern(c.Pattern)
			info.addSetItems(c.OnCreateSet)
			info.addSetItems(c.OnMatchSet)
		case *SetClause:
			info.addSetItems(c.Items)
		case *RemoveClause:
			for _, it := range c.Items {
				if it.Key != "" {
					info.RemovedPropKeys = append(info.RemovedPropKeys, it.Key)
				}
				info.RemovedLabels = append(info.RemovedLabels, it.Labels...)
			}
		case *DeleteClause:
			info.Deletes = true
		case *ForeachClause:
			info.addExpr(c.List)
			sub := Inspect(&Statement{Clauses: c.Body})
			info.MatchedNodeLabels = append(info.MatchedNodeLabels, sub.MatchedNodeLabels...)
			info.MatchedRelTypes = append(info.MatchedRelTypes, sub.MatchedRelTypes...)
			info.CreatedNodeLabels = append(info.CreatedNodeLabels, sub.CreatedNodeLabels...)
			info.CreatedRelTypes = append(info.CreatedRelTypes, sub.CreatedRelTypes...)
			info.SetLabels = append(info.SetLabels, sub.SetLabels...)
			info.SetPropKeys = append(info.SetPropKeys, sub.SetPropKeys...)
			info.RemovedLabels = append(info.RemovedLabels, sub.RemovedLabels...)
			info.RemovedPropKeys = append(info.RemovedPropKeys, sub.RemovedPropKeys...)
			if sub.Deletes {
				info.Deletes = true
			}
		}
	}
	info.dedupe()
	return info
}

// ResultColumns returns the column names a statement's final RETURN
// produces, or nil for write-only statements. RETURN * yields nil because
// the columns depend on runtime bindings.
func ResultColumns(stmt *Statement) []string {
	if len(stmt.Clauses) == 0 {
		return nil
	}
	ret, ok := stmt.Clauses[len(stmt.Clauses)-1].(*ReturnClause)
	if !ok || ret.Star {
		return nil
	}
	cols := make([]string, len(ret.Items))
	for i, it := range ret.Items {
		cols[i] = itemName(it)
	}
	return cols
}

// InspectExpr computes the footprint of a standalone expression (pattern
// predicates contribute matched labels).
func InspectExpr(e Expr) *StatementInfo {
	info := &StatementInfo{}
	info.addExpr(e)
	info.dedupe()
	return info
}

func (info *StatementInfo) addMatchedPattern(p *PatternPart) {
	for _, n := range p.Nodes {
		info.MatchedNodeLabels = append(info.MatchedNodeLabels, n.Labels...)
		for _, e := range n.Props {
			info.addExpr(e)
		}
	}
	for _, r := range p.Rels {
		info.MatchedRelTypes = append(info.MatchedRelTypes, r.Types...)
		for _, e := range r.Props {
			info.addExpr(e)
		}
	}
}

func (info *StatementInfo) addCreatedPattern(p *PatternPart) {
	for _, n := range p.Nodes {
		info.CreatedNodeLabels = append(info.CreatedNodeLabels, n.Labels...)
	}
	for _, r := range p.Rels {
		info.CreatedRelTypes = append(info.CreatedRelTypes, r.Types...)
	}
}

func (info *StatementInfo) addSetItems(items []*SetItem) {
	for _, it := range items {
		switch it.Kind {
		case SetProp:
			info.SetPropKeys = append(info.SetPropKeys, it.Key)
			info.addExpr(it.Value)
		case SetLabels:
			info.SetLabels = append(info.SetLabels, it.Labels...)
		case SetAllProps, SetMergeProps:
			info.SetPropKeys = append(info.SetPropKeys, "*")
			info.addExpr(it.Value)
		}
	}
}

func (info *StatementInfo) addItems(items []*ReturnItem) {
	for _, it := range items {
		info.addExpr(it.Expr)
	}
}

func (info *StatementInfo) addExpr(e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *PatternExpr:
		info.addMatchedPattern(x.Pattern)
	case *PropAccess:
		info.addExpr(x.X)
	case *IndexExpr:
		info.addExpr(x.X)
		info.addExpr(x.Idx)
	case *SliceExpr:
		info.addExpr(x.X)
		if x.From != nil {
			info.addExpr(x.From)
		}
		if x.To != nil {
			info.addExpr(x.To)
		}
	case *UnaryOp:
		info.addExpr(x.X)
	case *BinaryOp:
		info.addExpr(x.L)
		info.addExpr(x.R)
	case *FuncCall:
		for _, a := range x.Args {
			info.addExpr(a)
		}
	case *CaseExpr:
		if x.Test != nil {
			info.addExpr(x.Test)
		}
		for _, w := range x.Whens {
			info.addExpr(w.Cond)
			info.addExpr(w.Then)
		}
		if x.Else != nil {
			info.addExpr(x.Else)
		}
	case *ListLit:
		for _, el := range x.Elems {
			info.addExpr(el)
		}
	case *MapLit:
		for _, v := range x.Vals {
			info.addExpr(v)
		}
	case *ListComp:
		info.addExpr(x.List)
		if x.Where != nil {
			info.addExpr(x.Where)
		}
		if x.Proj != nil {
			info.addExpr(x.Proj)
		}
	case *ListPredicate:
		info.addExpr(x.List)
		info.addExpr(x.Where)
	case *ReduceExpr:
		info.addExpr(x.Init)
		info.addExpr(x.List)
		info.addExpr(x.Body)
	}
}

func (info *StatementInfo) dedupe() {
	info.MatchedNodeLabels = uniqSorted(info.MatchedNodeLabels)
	info.MatchedRelTypes = uniqSorted(info.MatchedRelTypes)
	info.CreatedNodeLabels = uniqSorted(info.CreatedNodeLabels)
	info.CreatedRelTypes = uniqSorted(info.CreatedRelTypes)
	info.SetLabels = uniqSorted(info.SetLabels)
	info.SetPropKeys = uniqSorted(info.SetPropKeys)
	info.RemovedLabels = uniqSorted(info.RemovedLabels)
	info.RemovedPropKeys = uniqSorted(info.RemovedPropKeys)
}

func uniqSorted(ss []string) []string {
	if len(ss) == 0 {
		return nil
	}
	sort.Strings(ss)
	out := ss[:1]
	for _, s := range ss[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
