package cypher

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// fnCase asserts one RETURN expression's rendering.
type fnCase struct {
	expr string
	want string
}

func runCases(t *testing.T, s *graph.Store, cases []fnCase) {
	t.Helper()
	for _, c := range cases {
		res := q(t, s, "RETURN "+c.expr+" AS v", nil)
		if got := res.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
}

func TestMathFunctions(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"abs(-5)", "5"},
		{"abs(-2.5)", "2.5"},
		{"ceil(1.2)", "2.0"},
		{"floor(1.8)", "1.0"},
		{"round(1.5)", "2.0"},
		{"sqrt(16)", "4.0"},
		{"sign(-3)", "-1"},
		{"sign(0)", "0"},
		{"sign(2.5)", "1"},
		{"abs(null) IS NULL", "true"},
	})
	qErr(t, s, "RETURN sqrt('x')")
	qErr(t, s, "RETURN sign([1])")
	qErr(t, s, "RETURN abs(1, 2)")
}

func TestListFunctions(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"head([])", "null"},
		{"last([])", "null"},
		{"tail([])", "[]"},
		{"tail([1,2,3])", "[2, 3]"},
		{"reverse([1,2,3])", "[3, 2, 1]"},
		{"size('héllo')", "5"}, // runes, not bytes
		{"size({a: 1, b: 2})", "2"},
		{"range(0, 10, 5)", "[0, 5, 10]"},
		{"range(3, 1, -1)", "[3, 2, 1]"},
		{"range(5, 4)", "[]"},
		{"head(null) IS NULL", "true"},
		{"reverse(null) IS NULL", "true"},
	})
	qErr(t, s, "RETURN range(1, 5, 0)")
	qErr(t, s, "RETURN tail(42)")
	qErr(t, s, "RETURN size(42)")
}

func TestStringFunctionEdgeCases(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"substring('hello', 0, 0)", `""`},
		{"substring('hello', 10)", `""`},
		{"substring('héllo', 1, 2)", `"él"`},
		{"left('hi', 10)", `"hi"`},
		{"right('hello', 2)", `"lo"`},
		{"ltrim('  x  ')", `"x  "`},
		{"rtrim('  x  ')", `"  x"`},
		{"split('a', ',')", `["a"]`},
		{"replace(null, 'a', 'b') IS NULL", "true"},
		{"toUpper(null) IS NULL", "true"},
	})
	qErr(t, s, "RETURN left('x', -1)")
	qErr(t, s, "RETURN substring(5, 1)")
}

func TestEntityFunctions(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person {name: 'Alice'})
	               RETURN properties(p).name, keys(p), degree(p), degree(p, 'KNOWS')`, nil)
	r := res.Rows[0]
	if r[0].String() != `"Alice"` {
		t.Errorf("properties().name: %s", r[0])
	}
	if r[1].String() != `["age", "name"]` {
		t.Errorf("keys: %s", r[1])
	}
	if r[2].String() != "2" || r[3].String() != "1" {
		t.Errorf("degree: %s / %s", r[2], r[3])
	}
	// properties/keys of maps.
	res = q(t, s, "RETURN keys({b: 1, a: 2}), properties({x: 1})", nil)
	if res.Rows[0][0].String() != `["a", "b"]` || res.Rows[0][1].String() != "{x: 1}" {
		t.Errorf("map forms: %v", res.Rows[0])
	}
	// Rel properties via the rel value.
	res = q(t, s, "MATCH ()-[r:KNOWS {since: 2010}]->() RETURN properties(r), keys(r)", nil)
	if res.Rows[0][0].String() != "{since: 2010}" {
		t.Errorf("rel properties: %v", res.Rows[0])
	}
	qErr(t, s, "RETURN degree(5)")
	qErr(t, s, "RETURN labels(5)")
	qErr(t, s, "MATCH (p:Person) RETURN type(p)")
}

func TestNullPropagationThroughFunctions(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"id(null) IS NULL", "true"},
		{"labels(null) IS NULL", "true"},
		{"type(null) IS NULL", "true"},
		{"startNode(null) IS NULL", "true"},
		{"properties(null) IS NULL", "true"},
		{"keys(null) IS NULL", "true"},
		{"size(null) IS NULL", "true"},
		{"datetime(null) IS NULL", "true"},
		{"duration(null) IS NULL", "true"},
		{"toString(null) IS NULL", "true"},
	})
}

func TestUnknownFunctionError(t *testing.T) {
	s := graph.NewStore()
	err := qErr(t, s, "RETURN frobnicate(1)")
	if !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("error should name the function: %v", err)
	}
}

func TestIndexingAndSlicing(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"[10,20,30][0]", "10"},
		{"[10,20,30][-1]", "30"},
		{"[10,20,30][5]", "null"},
		{"[10,20,30][1..]", "[20, 30]"},
		{"[10,20,30][..2]", "[10, 20]"},
		{"[10,20,30][-2..]", "[20, 30]"},
		{"[10,20,30][2..1]", "[]"},
		{"{a: 7}['a']", "7"},
		{"{a: 7}['b']", "null"},
		{"null[0] IS NULL", "true"},
	})
	qErr(t, s, "RETURN 5[0]")
	qErr(t, s, "RETURN [1]['x']")
	qErr(t, s, "RETURN {a:1}[0]")
	// Indexing into a node by property name.
	gs := testGraph(t)
	res := q(t, gs, "MATCH (p:Person {name:'Bob'}) RETURN p['age']", nil)
	if res.Rows[0][0].String() != "29" {
		t.Errorf("node indexing: %v", res.Rows[0])
	}
}

func TestDateTimePropertiesAndArithmetic(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"datetime('2023-04-01T10:30:45Z').year", "2023"},
		{"datetime('2023-04-01T10:30:45Z').month", "4"},
		{"datetime('2023-04-01T10:30:45Z').hour", "10"},
		{"datetime('2023-04-01T10:30:45Z').minute", "30"},
		{"datetime('2023-04-01T10:30:45Z').second", "45"},
		{"datetime('2023-04-02') - datetime('2023-04-01')", "24h0m0s"},
		{"(datetime('2023-04-01') + duration('P1D')).day", "2"},
		{"duration('PT1H') * 3", "3h0m0s"},
		{"duration('PT3H') / 3", "1h0m0s"},
	})
	qErr(t, s, "RETURN datetime('2023-04-01').weekday")
}

func TestCaseSimpleForm(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END", `"two"`},
		{"CASE 9 WHEN 1 THEN 'one' END", "null"},
		{"CASE null WHEN null THEN 'n' ELSE 'x' END", `"x"`}, // null = null is unknown
	})
}

func TestXorOperator(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"true XOR false", "true"},
		{"true XOR true", "false"},
		{"(true XOR null) IS NULL", "true"},
	})
}

func TestRegexOperator(t *testing.T) {
	s := graph.NewStore()
	runCases(t, s, []fnCase{
		{"'hello' =~ 'h.*'", "true"},
		{"'hello' =~ 'ell'", "false"}, // whole-string semantics
		{"'hello' =~ '.*ell.*'", "true"},
		{"'S:E484K' =~ 'S:[A-Z]\\\\d+[A-Z]'", "true"},
		{"('x' =~ null) IS NULL", "true"},
		{"(null =~ '.*') IS NULL", "true"},
		{"(5 =~ '.*') IS NULL", "true"},
	})
	qErr(t, s, "RETURN 'x' =~ '['")
	// Regex in a WHERE against graph data.
	gs := testGraph(t)
	res := q(t, gs, "MATCH (p:Person) WHERE p.name =~ '[AB].*' RETURN p.name ORDER BY p.name", nil)
	if joined(res, 0) != `"Alice","Bob"` {
		t.Errorf("regex where: %v", res.Rows)
	}
}
