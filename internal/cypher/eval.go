package cypher

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// evalCtx carries everything compiled-expression evaluation needs: the
// transaction, query parameters, the clock, and (during aggregation
// finalization) the computed values of aggregate sub-expressions.
type evalCtx struct {
	tx         graph.ReadView
	params     map[string]value.Value
	now        func() time.Time
	query      string
	aggSub     map[*FuncCall]value.Value // aggregate results during finalize
	regexCache map[string]*regexp.Regexp // compiled =~ patterns
}

func (c *evalCtx) timeNow() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// env maps variable names to row slots. Environments are immutable once
// built; clauses derive new environments when they change the projection.
type env struct {
	names []string
	index map[string]int
}

func newEnv() *env {
	return &env{index: make(map[string]int)}
}

func (e *env) clone() *env {
	ne := &env{names: append([]string(nil), e.names...), index: make(map[string]int, len(e.index))}
	for k, v := range e.index {
		ne.index[k] = v
	}
	return ne
}

// add binds name to a new slot and returns its index. Adding an existing
// name returns the existing slot.
func (e *env) add(name string) int {
	if i, ok := e.index[name]; ok {
		return i
	}
	i := len(e.names)
	e.names = append(e.names, name)
	e.index[name] = i
	return i
}

func (e *env) lookup(name string) (int, bool) {
	i, ok := e.index[name]
	return i, ok
}

type row = []value.Value

// propOf resolves entity, map and temporal property access.
func propOf(ctx *evalCtx, base value.Value, key string) (value.Value, error) {
	switch base.Kind() {
	case value.KindNull:
		return value.Null, nil
	case value.KindNode:
		id, _ := base.EntityID()
		v, ok := ctx.tx.NodeProp(graph.NodeID(id), key)
		if !ok {
			return value.Null, nil
		}
		return v, nil
	case value.KindRelationship:
		id, _ := base.EntityID()
		v, ok := ctx.tx.RelProp(graph.RelID(id), key)
		if !ok {
			return value.Null, nil
		}
		return v, nil
	case value.KindMap:
		m, _ := base.AsMap()
		if v, ok := m[key]; ok {
			return v, nil
		}
		return value.Null, nil
	case value.KindDateTime:
		t, _ := base.AsDateTime()
		switch key {
		case "year":
			return value.Int(int64(t.Year())), nil
		case "month":
			return value.Int(int64(t.Month())), nil
		case "day":
			return value.Int(int64(t.Day())), nil
		case "hour":
			return value.Int(int64(t.Hour())), nil
		case "minute":
			return value.Int(int64(t.Minute())), nil
		case "second":
			return value.Int(int64(t.Second())), nil
		case "epochSeconds":
			return value.Int(t.Unix()), nil
		case "epochMillis":
			return value.Int(t.UnixMilli()), nil
		}
		return value.Null, fmt.Errorf("cypher: unknown datetime field .%s", key)
	default:
		return value.Null, fmt.Errorf("cypher: cannot access .%s on %s", key, base.Kind())
	}
}

// indexValue applies the [] operator to already evaluated operands.
func indexValue(ctx *evalCtx, base, idx value.Value) (value.Value, error) {
	if base.IsNull() || idx.IsNull() {
		return value.Null, nil
	}
	switch base.Kind() {
	case value.KindList:
		list, _ := base.AsList()
		i, ok := idx.AsInt()
		if !ok {
			return value.Null, fmt.Errorf("cypher: list index must be an integer, got %s", idx.Kind())
		}
		if i < 0 {
			i += int64(len(list))
		}
		if i < 0 || i >= int64(len(list)) {
			return value.Null, nil
		}
		return list[i], nil
	case value.KindMap, value.KindNode, value.KindRelationship:
		key, ok := idx.AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: map key must be a string, got %s", idx.Kind())
		}
		return propOf(ctx, base, key)
	default:
		return value.Null, fmt.Errorf("cypher: cannot index %s", base.Kind())
	}
}

// sliceValue applies [from..to] to an evaluated list with evaluated bounds.
func sliceValue(list []value.Value, from, to int64) value.Value {
	n := int64(len(list))
	if from < 0 {
		from += n
	}
	if to < 0 {
		to += n
	}
	from = clamp(from, 0, n)
	to = clamp(to, 0, n)
	if from >= to {
		return value.List()
	}
	return value.ListOf(append([]value.Value(nil), list[from:to]...))
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func evalIn(l, list value.Value) (value.Value, error) {
	if list.IsNull() {
		return value.Null, nil
	}
	elems, ok := list.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: IN requires a list, got %s", list.Kind())
	}
	sawUnknown := l.IsNull()
	for _, e := range elems {
		eq, known := value.Equal(l, e)
		if !known {
			sawUnknown = true
			continue
		}
		if eq {
			return value.Bool(true), nil
		}
	}
	if sawUnknown {
		return value.Null, nil
	}
	return value.Bool(false), nil
}

func evalStringPredicate(op BinaryOpKind, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	ls, ok1 := l.AsString()
	rs, ok2 := r.AsString()
	if !ok1 || !ok2 {
		return value.Null, nil
	}
	switch op {
	case OpStartsWith:
		return value.Bool(strings.HasPrefix(ls, rs)), nil
	case OpEndsWith:
		return value.Bool(strings.HasSuffix(ls, rs)), nil
	default:
		return value.Bool(strings.Contains(ls, rs)), nil
	}
}

// evalRegex implements the =~ operator; compiled patterns are cached per
// evaluation context.
func evalRegex(ctx *evalCtx, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	s, ok1 := l.AsString()
	pat, ok2 := r.AsString()
	if !ok1 || !ok2 {
		return value.Null, nil
	}
	re, ok := ctx.regexCache[pat]
	if !ok {
		// Cypher's =~ requires the whole string to match, so the pattern
		// is compiled with implicit anchors.
		var err error
		re, err = regexp.Compile("^(?:" + pat + ")$")
		if err != nil {
			return value.Null, fmt.Errorf("cypher: bad regular expression %q: %v", pat, err)
		}
		if ctx.regexCache == nil {
			ctx.regexCache = make(map[string]*regexp.Regexp)
		}
		ctx.regexCache[pat] = re
	}
	return value.Bool(re.MatchString(s)), nil
}
