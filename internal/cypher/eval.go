package cypher

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// evalCtx carries everything expression evaluation needs: the transaction,
// query parameters, the clock, and (during aggregation finalization) the
// computed values of aggregate sub-expressions.
type evalCtx struct {
	tx         *graph.Tx
	params     map[string]value.Value
	now        func() time.Time
	query      string
	aggSub     map[*FuncCall]value.Value // aggregate results during finalize
	regexCache map[string]*regexp.Regexp // compiled =~ patterns
}

func (c *evalCtx) timeNow() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// env maps variable names to row slots. Environments are immutable once
// built; clauses derive new environments when they change the projection.
type env struct {
	names []string
	index map[string]int
}

func newEnv() *env {
	return &env{index: make(map[string]int)}
}

func (e *env) clone() *env {
	ne := &env{names: append([]string(nil), e.names...), index: make(map[string]int, len(e.index))}
	for k, v := range e.index {
		ne.index[k] = v
	}
	return ne
}

// add binds name to a new slot and returns its index. Adding an existing
// name returns the existing slot.
func (e *env) add(name string) int {
	if i, ok := e.index[name]; ok {
		return i
	}
	i := len(e.names)
	e.names = append(e.names, name)
	e.index[name] = i
	return i
}

func (e *env) lookup(name string) (int, bool) {
	i, ok := e.index[name]
	return i, ok
}

type row = []value.Value

// evalExpr evaluates an expression against a row.
func evalExpr(ctx *evalCtx, en *env, r row, e Expr) (value.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Variable:
		i, ok := en.lookup(x.Name)
		if !ok {
			return value.Null, errAt(ctx.query, x.pos, "variable `%s` not defined", x.Name)
		}
		return r[i], nil
	case *Param:
		v, ok := ctx.params[x.Name]
		if !ok {
			return value.Null, fmt.Errorf("cypher: parameter $%s not supplied", x.Name)
		}
		return v, nil
	case *PropAccess:
		base, err := evalExpr(ctx, en, r, x.X)
		if err != nil {
			return value.Null, err
		}
		return propOf(ctx, base, x.Key)
	case *IndexExpr:
		return evalIndex(ctx, en, r, x)
	case *SliceExpr:
		return evalSlice(ctx, en, r, x)
	case *UnaryOp:
		return evalUnary(ctx, en, r, x)
	case *BinaryOp:
		return evalBinary(ctx, en, r, x)
	case *FuncCall:
		if ctx.aggSub != nil {
			if v, ok := ctx.aggSub[x]; ok {
				return v, nil
			}
		}
		if isAggregateFunc(x.Name) {
			return value.Null, errAt(ctx.query, x.pos,
				"aggregate function %s() not allowed here", x.Name)
		}
		return evalFunc(ctx, en, r, x)
	case *CaseExpr:
		return evalCase(ctx, en, r, x)
	case *ListLit:
		out := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := evalExpr(ctx, en, r, el)
			if err != nil {
				return value.Null, err
			}
			out[i] = v
		}
		return value.ListOf(out), nil
	case *MapLit:
		m := make(map[string]value.Value, len(x.Keys))
		for i, k := range x.Keys {
			v, err := evalExpr(ctx, en, r, x.Vals[i])
			if err != nil {
				return value.Null, err
			}
			m[k] = v
		}
		return value.Map(m), nil
	case *ListComp:
		return evalListComp(ctx, en, r, x)
	case *ListPredicate:
		return evalListPredicate(ctx, en, r, x)
	case *ReduceExpr:
		return evalReduce(ctx, en, r, x)
	case *PatternExpr:
		ok, err := patternExists(ctx, en, r, x.Pattern)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(ok), nil
	default:
		return value.Null, fmt.Errorf("cypher: unhandled expression %T", e)
	}
}

// propOf resolves entity, map and temporal property access.
func propOf(ctx *evalCtx, base value.Value, key string) (value.Value, error) {
	switch base.Kind() {
	case value.KindNull:
		return value.Null, nil
	case value.KindNode:
		id, _ := base.EntityID()
		v, ok := ctx.tx.NodeProp(graph.NodeID(id), key)
		if !ok {
			return value.Null, nil
		}
		return v, nil
	case value.KindRelationship:
		id, _ := base.EntityID()
		v, ok := ctx.tx.RelProp(graph.RelID(id), key)
		if !ok {
			return value.Null, nil
		}
		return v, nil
	case value.KindMap:
		m, _ := base.AsMap()
		if v, ok := m[key]; ok {
			return v, nil
		}
		return value.Null, nil
	case value.KindDateTime:
		t, _ := base.AsDateTime()
		switch key {
		case "year":
			return value.Int(int64(t.Year())), nil
		case "month":
			return value.Int(int64(t.Month())), nil
		case "day":
			return value.Int(int64(t.Day())), nil
		case "hour":
			return value.Int(int64(t.Hour())), nil
		case "minute":
			return value.Int(int64(t.Minute())), nil
		case "second":
			return value.Int(int64(t.Second())), nil
		case "epochSeconds":
			return value.Int(t.Unix()), nil
		case "epochMillis":
			return value.Int(t.UnixMilli()), nil
		}
		return value.Null, fmt.Errorf("cypher: unknown datetime field .%s", key)
	default:
		return value.Null, fmt.Errorf("cypher: cannot access .%s on %s", key, base.Kind())
	}
}

func evalIndex(ctx *evalCtx, en *env, r row, x *IndexExpr) (value.Value, error) {
	base, err := evalExpr(ctx, en, r, x.X)
	if err != nil {
		return value.Null, err
	}
	idx, err := evalExpr(ctx, en, r, x.Idx)
	if err != nil {
		return value.Null, err
	}
	if base.IsNull() || idx.IsNull() {
		return value.Null, nil
	}
	switch base.Kind() {
	case value.KindList:
		list, _ := base.AsList()
		i, ok := idx.AsInt()
		if !ok {
			return value.Null, fmt.Errorf("cypher: list index must be an integer, got %s", idx.Kind())
		}
		if i < 0 {
			i += int64(len(list))
		}
		if i < 0 || i >= int64(len(list)) {
			return value.Null, nil
		}
		return list[i], nil
	case value.KindMap, value.KindNode, value.KindRelationship:
		key, ok := idx.AsString()
		if !ok {
			return value.Null, fmt.Errorf("cypher: map key must be a string, got %s", idx.Kind())
		}
		return propOf(ctx, base, key)
	default:
		return value.Null, fmt.Errorf("cypher: cannot index %s", base.Kind())
	}
}

func evalSlice(ctx *evalCtx, en *env, r row, x *SliceExpr) (value.Value, error) {
	base, err := evalExpr(ctx, en, r, x.X)
	if err != nil {
		return value.Null, err
	}
	if base.IsNull() {
		return value.Null, nil
	}
	list, ok := base.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: cannot slice %s", base.Kind())
	}
	from, to := int64(0), int64(len(list))
	if x.From != nil {
		v, err := evalExpr(ctx, en, r, x.From)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		if from, ok = v.AsInt(); !ok {
			return value.Null, fmt.Errorf("cypher: slice bound must be an integer")
		}
	}
	if x.To != nil {
		v, err := evalExpr(ctx, en, r, x.To)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		if to, ok = v.AsInt(); !ok {
			return value.Null, fmt.Errorf("cypher: slice bound must be an integer")
		}
	}
	n := int64(len(list))
	if from < 0 {
		from += n
	}
	if to < 0 {
		to += n
	}
	from = clamp(from, 0, n)
	to = clamp(to, 0, n)
	if from >= to {
		return value.List(), nil
	}
	return value.ListOf(append([]value.Value(nil), list[from:to]...)), nil
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func evalUnary(ctx *evalCtx, en *env, r row, x *UnaryOp) (value.Value, error) {
	v, err := evalExpr(ctx, en, r, x.X)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case OpNeg:
		return value.Neg(v)
	case OpNot:
		b, known := v.Truthy()
		if !known {
			return value.Null, nil
		}
		return value.Bool(!b), nil
	case OpIsNull:
		return value.Bool(v.IsNull()), nil
	case OpIsNotNull:
		return value.Bool(!v.IsNull()), nil
	default:
		return value.Null, fmt.Errorf("cypher: unknown unary op")
	}
}

func evalBinary(ctx *evalCtx, en *env, r row, x *BinaryOp) (value.Value, error) {
	// AND/OR/XOR need ternary short-circuit logic.
	switch x.Op {
	case OpAnd, OpOr, OpXor:
		return evalLogic(ctx, en, r, x)
	}
	l, err := evalExpr(ctx, en, r, x.L)
	if err != nil {
		return value.Null, err
	}
	rv, err := evalExpr(ctx, en, r, x.R)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case OpAdd:
		return value.Add(l, rv)
	case OpSub:
		return value.Sub(l, rv)
	case OpMul:
		return value.Mul(l, rv)
	case OpDiv:
		return value.Div(l, rv)
	case OpMod:
		return value.Mod(l, rv)
	case OpPow:
		return value.Pow(l, rv)
	case OpEq:
		eq, known := value.Equal(l, rv)
		if !known {
			return value.Null, nil
		}
		return value.Bool(eq), nil
	case OpNeq:
		eq, known := value.Equal(l, rv)
		if !known {
			return value.Null, nil
		}
		return value.Bool(!eq), nil
	case OpLt:
		less, known := value.Less3(l, rv)
		if !known {
			return value.Null, nil
		}
		return value.Bool(less), nil
	case OpGt:
		less, known := value.Less3(rv, l)
		if !known {
			return value.Null, nil
		}
		return value.Bool(less), nil
	case OpLte:
		less, known := value.Less3(rv, l)
		if !known {
			return value.Null, nil
		}
		return value.Bool(!less), nil
	case OpGte:
		less, known := value.Less3(l, rv)
		if !known {
			return value.Null, nil
		}
		return value.Bool(!less), nil
	case OpIn:
		return evalIn(l, rv)
	case OpStartsWith, OpEndsWith, OpContains:
		return evalStringPredicate(x.Op, l, rv)
	case OpRegex:
		return evalRegex(ctx, l, rv)
	default:
		return value.Null, fmt.Errorf("cypher: unknown binary op")
	}
}

func evalLogic(ctx *evalCtx, en *env, r row, x *BinaryOp) (value.Value, error) {
	l, err := evalExpr(ctx, en, r, x.L)
	if err != nil {
		return value.Null, err
	}
	lb, lk := l.Truthy()
	if !lk && !l.IsNull() {
		return value.Null, errAt(ctx.query, x.pos, "boolean operator on non-boolean value %s", l.Kind())
	}
	switch x.Op {
	case OpAnd:
		if lk && !lb {
			return value.Bool(false), nil
		}
	case OpOr:
		if lk && lb {
			return value.Bool(true), nil
		}
	}
	rv, err := evalExpr(ctx, en, r, x.R)
	if err != nil {
		return value.Null, err
	}
	rb, rk := rv.Truthy()
	if !rk && !rv.IsNull() {
		return value.Null, errAt(ctx.query, x.pos, "boolean operator on non-boolean value %s", rv.Kind())
	}
	switch x.Op {
	case OpAnd:
		switch {
		case rk && !rb:
			return value.Bool(false), nil
		case lk && rk:
			return value.Bool(true), nil
		default:
			return value.Null, nil
		}
	case OpOr:
		switch {
		case rk && rb:
			return value.Bool(true), nil
		case lk && rk:
			return value.Bool(false), nil
		default:
			return value.Null, nil
		}
	default: // XOR
		if !lk || !rk {
			return value.Null, nil
		}
		return value.Bool(lb != rb), nil
	}
}

func evalIn(l, list value.Value) (value.Value, error) {
	if list.IsNull() {
		return value.Null, nil
	}
	elems, ok := list.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: IN requires a list, got %s", list.Kind())
	}
	sawUnknown := l.IsNull()
	for _, e := range elems {
		eq, known := value.Equal(l, e)
		if !known {
			sawUnknown = true
			continue
		}
		if eq {
			return value.Bool(true), nil
		}
	}
	if sawUnknown {
		return value.Null, nil
	}
	return value.Bool(false), nil
}

func evalStringPredicate(op BinaryOpKind, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	ls, ok1 := l.AsString()
	rs, ok2 := r.AsString()
	if !ok1 || !ok2 {
		return value.Null, nil
	}
	switch op {
	case OpStartsWith:
		return value.Bool(strings.HasPrefix(ls, rs)), nil
	case OpEndsWith:
		return value.Bool(strings.HasSuffix(ls, rs)), nil
	default:
		return value.Bool(strings.Contains(ls, rs)), nil
	}
}

// evalRegex implements the =~ operator; compiled patterns are cached per
// evaluation context.
func evalRegex(ctx *evalCtx, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	s, ok1 := l.AsString()
	pat, ok2 := r.AsString()
	if !ok1 || !ok2 {
		return value.Null, nil
	}
	re, ok := ctx.regexCache[pat]
	if !ok {
		// Cypher's =~ requires the whole string to match, so the pattern
		// is compiled with implicit anchors.
		var err error
		re, err = regexp.Compile("^(?:" + pat + ")$")
		if err != nil {
			return value.Null, fmt.Errorf("cypher: bad regular expression %q: %v", pat, err)
		}
		if ctx.regexCache == nil {
			ctx.regexCache = make(map[string]*regexp.Regexp)
		}
		ctx.regexCache[pat] = re
	}
	return value.Bool(re.MatchString(s)), nil
}

func evalCase(ctx *evalCtx, en *env, r row, x *CaseExpr) (value.Value, error) {
	if x.Test != nil {
		test, err := evalExpr(ctx, en, r, x.Test)
		if err != nil {
			return value.Null, err
		}
		for _, w := range x.Whens {
			v, err := evalExpr(ctx, en, r, w.Cond)
			if err != nil {
				return value.Null, err
			}
			if eq, known := value.Equal(test, v); known && eq {
				return evalExpr(ctx, en, r, w.Then)
			}
		}
	} else {
		for _, w := range x.Whens {
			v, err := evalExpr(ctx, en, r, w.Cond)
			if err != nil {
				return value.Null, err
			}
			if b, known := v.Truthy(); known && b {
				return evalExpr(ctx, en, r, w.Then)
			}
		}
	}
	if x.Else != nil {
		return evalExpr(ctx, en, r, x.Else)
	}
	return value.Null, nil
}

func evalListComp(ctx *evalCtx, en *env, r row, x *ListComp) (value.Value, error) {
	lv, err := evalExpr(ctx, en, r, x.List)
	if err != nil {
		return value.Null, err
	}
	if lv.IsNull() {
		return value.Null, nil
	}
	list, ok := lv.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: list comprehension over %s", lv.Kind())
	}
	inner := en.clone()
	slot := inner.add(x.Var)
	out := make([]value.Value, 0, len(list))
	for _, el := range list {
		ir := make(row, len(inner.names))
		copy(ir, r)
		ir[slot] = el
		if x.Where != nil {
			cond, err := evalExpr(ctx, inner, ir, x.Where)
			if err != nil {
				return value.Null, err
			}
			if b, known := cond.Truthy(); !known || !b {
				continue
			}
		}
		if x.Proj != nil {
			v, err := evalExpr(ctx, inner, ir, x.Proj)
			if err != nil {
				return value.Null, err
			}
			out = append(out, v)
		} else {
			out = append(out, el)
		}
	}
	return value.ListOf(out), nil
}

// evalListPredicate implements the quantified predicates with Cypher's
// ternary logic: unknown element predicates make the quantifier unknown
// unless the outcome is already decided.
func evalListPredicate(ctx *evalCtx, en *env, r row, x *ListPredicate) (value.Value, error) {
	lv, err := evalExpr(ctx, en, r, x.List)
	if err != nil {
		return value.Null, err
	}
	if lv.IsNull() {
		return value.Null, nil
	}
	list, ok := lv.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: quantifier over %s", lv.Kind())
	}
	inner := en.clone()
	slot := inner.add(x.Var)
	trueCount, unknown := 0, false
	for _, el := range list {
		ir := make(row, len(inner.names))
		copy(ir, r)
		ir[slot] = el
		v, err := evalExpr(ctx, inner, ir, x.Where)
		if err != nil {
			return value.Null, err
		}
		b, known := v.Truthy()
		switch {
		case !known:
			unknown = true
		case b:
			trueCount++
			switch x.Kind {
			case QuantAny:
				return value.Bool(true), nil
			case QuantNone:
				return value.Bool(false), nil
			}
		default: // known false
			if x.Kind == QuantAll {
				return value.Bool(false), nil
			}
		}
	}
	if unknown {
		return value.Null, nil
	}
	switch x.Kind {
	case QuantAll:
		return value.Bool(true), nil
	case QuantAny:
		return value.Bool(false), nil
	case QuantNone:
		return value.Bool(true), nil
	default: // QuantSingle
		return value.Bool(trueCount == 1), nil
	}
}

// evalReduce folds the list through the body with the accumulator bound.
func evalReduce(ctx *evalCtx, en *env, r row, x *ReduceExpr) (value.Value, error) {
	acc, err := evalExpr(ctx, en, r, x.Init)
	if err != nil {
		return value.Null, err
	}
	lv, err := evalExpr(ctx, en, r, x.List)
	if err != nil {
		return value.Null, err
	}
	if lv.IsNull() {
		return value.Null, nil
	}
	list, ok := lv.AsList()
	if !ok {
		return value.Null, fmt.Errorf("cypher: reduce over %s", lv.Kind())
	}
	inner := en.clone()
	accSlot := inner.add(x.Acc)
	varSlot := inner.add(x.Var)
	ir := make(row, len(inner.names))
	copy(ir, r)
	for _, el := range list {
		ir[accSlot] = acc
		ir[varSlot] = el
		acc, err = evalExpr(ctx, inner, ir, x.Body)
		if err != nil {
			return value.Null, err
		}
	}
	return acc, nil
}

// truthyFilter applies WHERE semantics: keep only rows whose predicate is
// exactly TRUE.
func truthyFilter(ctx *evalCtx, en *env, rows []row, pred Expr) ([]row, error) {
	if pred == nil {
		return rows, nil
	}
	out := rows[:0]
	for _, r := range rows {
		v, err := evalExpr(ctx, en, r, pred)
		if err != nil {
			return nil, err
		}
		if b, known := v.Truthy(); known && b {
			out = append(out, r)
		}
	}
	return out, nil
}
