package cypher

import (
	"testing"

	"repro/internal/graph"
)

func TestForeachCreates(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "FOREACH (i IN range(1, 5) | CREATE (:Item {i: i}))", nil)
	if res.Stats.NodesCreated != 5 {
		t.Errorf("stats: %+v", res.Stats)
	}
	chk := q(t, s, "MATCH (n:Item) RETURN sum(n.i)", nil)
	if chk.Rows[0][0].String() != "15" {
		t.Errorf("sum: %v", chk.Rows)
	}
}

func TestForeachSetOverMatchedRows(t *testing.T) {
	s := testGraph(t)
	// Tag every person once per element; the loop variable scopes the body.
	q(t, s, `MATCH (p:Person)
	        FOREACH (tag IN ['checked'] | SET p.status = tag)`, nil)
	chk := q(t, s, "MATCH (p:Person {status: 'checked'}) RETURN count(p)", nil)
	if chk.Rows[0][0].String() != "4" {
		t.Errorf("tagged: %v", chk.Rows)
	}
}

func TestForeachNested(t *testing.T) {
	s := graph.NewStore()
	q(t, s, `FOREACH (i IN [0, 1] |
	          FOREACH (j IN [0, 1, 2] |
	            CREATE (:Cell {key: toString(i) + ':' + toString(j)})))`, nil)
	chk := q(t, s, "MATCH (c:Cell) RETURN count(c)", nil)
	if chk.Rows[0][0].String() != "6" {
		t.Errorf("nested foreach: %v", chk.Rows)
	}
}

func TestForeachNullAndScope(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "FOREACH (x IN null | CREATE (:Never))", nil)
	if res.Stats.NodesCreated != 0 {
		t.Error("foreach over null is a no-op")
	}
	// The loop variable is not visible after the clause.
	qErr(t, s, "FOREACH (x IN [1] | CREATE (:N {v: x})) RETURN x")
	// Non-list errors.
	qErr(t, s, "FOREACH (x IN 5 | CREATE (:N))")
	// Read clauses are not allowed in the body.
	if _, err := Parse("FOREACH (x IN [1] | MATCH (n) RETURN n)"); err == nil {
		t.Error("MATCH inside FOREACH should fail to parse")
	}
	if _, err := Parse("FOREACH (x IN [1] CREATE (:N))"); err == nil {
		t.Error("missing | should fail")
	}
}

func TestForeachMergeIdempotent(t *testing.T) {
	s := graph.NewStore()
	for i := 0; i < 2; i++ {
		q(t, s, "FOREACH (k IN ['a', 'b', 'a'] | MERGE (:Key {k: k}))", nil)
	}
	chk := q(t, s, "MATCH (n:Key) RETURN count(n)", nil)
	if chk.Rows[0][0].String() != "2" {
		t.Errorf("merge in foreach: %v", chk.Rows)
	}
}

func TestForeachInspectFootprint(t *testing.T) {
	stmt := mustParse(t, "FOREACH (x IN [1] | CREATE (:Made) SET x.p = 1)")
	info := Inspect(stmt)
	if len(info.CreatedNodeLabels) != 1 || info.CreatedNodeLabels[0] != "Made" {
		t.Errorf("created: %v", info.CreatedNodeLabels)
	}
	if len(info.SetPropKeys) != 1 || info.SetPropKeys[0] != "p" {
		t.Errorf("set props: %v", info.SetPropKeys)
	}
}
