package cypher

import (
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// testGraph builds the small social/medical graph used across executor tests.
//
//	(alice:Person{name,age:34})-[:KNOWS{since:2010}]->(bob:Person{age:29})
//	(bob)-[:KNOWS]->(carol:Person{age:41})
//	(alice)-[:WORKS_AT]->(acme:Company{name:'ACME'})
//	(carol)-[:WORKS_AT]->(acme)
//	(dave:Person{age:19}) (isolated)
func testGraph(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.NewStore()
	err := s.Update(func(tx *graph.Tx) error {
		alice, _ := tx.CreateNode([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Alice"), "age": value.Int(34)})
		bob, _ := tx.CreateNode([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Bob"), "age": value.Int(29)})
		carol, _ := tx.CreateNode([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Carol"), "age": value.Int(41)})
		_, _ = tx.CreateNode([]string{"Person"}, map[string]value.Value{
			"name": value.Str("Dave"), "age": value.Int(19)})
		acme, _ := tx.CreateNode([]string{"Company"}, map[string]value.Value{
			"name": value.Str("ACME")})
		if _, err := tx.CreateRel(alice, bob, "KNOWS", map[string]value.Value{"since": value.Int(2010)}); err != nil {
			return err
		}
		if _, err := tx.CreateRel(bob, carol, "KNOWS", nil); err != nil {
			return err
		}
		if _, err := tx.CreateRel(alice, acme, "WORKS_AT", nil); err != nil {
			return err
		}
		_, err := tx.CreateRel(carol, acme, "WORKS_AT", nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// q runs a query in a read-write transaction (committed) and returns the
// result.
func q(t *testing.T, s *graph.Store, query string, opts *Options) *Result {
	t.Helper()
	tx := s.Begin(graph.ReadWrite)
	res, err := Run(tx, query, opts)
	if err != nil {
		tx.Rollback()
		t.Fatalf("query %q: %v", query, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return res
}

// qErr runs a query expecting an error.
func qErr(t *testing.T, s *graph.Store, query string) error {
	t.Helper()
	tx := s.Begin(graph.ReadWrite)
	defer tx.Rollback()
	_, err := Run(tx, query, nil)
	if err == nil {
		t.Fatalf("query %q should fail", query)
	}
	return err
}

// col extracts a column of scalar values as strings for compact assertions.
func col(res *Result, i int) []string {
	out := make([]string, len(res.Rows))
	for j, r := range res.Rows {
		out[j] = r[i].String()
	}
	return out
}

func joined(res *Result, i int) string { return strings.Join(col(res, i), ",") }

func TestMatchAllByLabel(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person) RETURN p.name ORDER BY p.name", nil)
	if got := joined(res, 0); got != `"Alice","Bob","Carol","Dave"` {
		t.Errorf("got %s", got)
	}
}

func TestMatchWhere(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person) WHERE p.age >= 30 RETURN p.name ORDER BY p.age DESC", nil)
	if got := joined(res, 0); got != `"Carol","Alice"` {
		t.Errorf("got %s", got)
	}
}

func TestMatchPropertyShortcut(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person {name: 'Bob'}) RETURN p.age", nil)
	if got := joined(res, 0); got != "29" {
		t.Errorf("got %s", got)
	}
}

func TestMatchRelationshipDirection(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (a:Person {name:'Alice'})-[:KNOWS]->(b) RETURN b.name", nil)
	if got := joined(res, 0); got != `"Bob"` {
		t.Errorf("outgoing got %s", got)
	}
	res = q(t, s, "MATCH (a:Person {name:'Alice'})<-[:KNOWS]-(b) RETURN b.name", nil)
	if len(res.Rows) != 0 {
		t.Error("incoming should be empty")
	}
	res = q(t, s, "MATCH (b)-[:KNOWS]-(x:Person {name:'Bob'}) RETURN b.name ORDER BY b.name", nil)
	if got := joined(res, 0); got != `"Alice","Carol"` {
		t.Errorf("undirected got %s", got)
	}
}

func TestMatchChain(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (a:Person {name:'Alice'})-[:KNOWS]->()-[:KNOWS]->(c) RETURN c.name", nil)
	if got := joined(res, 0); got != `"Carol"` {
		t.Errorf("got %s", got)
	}
}

func TestMatchSharedVariableJoin(t *testing.T) {
	s := testGraph(t)
	// Colleagues at the same company.
	res := q(t, s, `MATCH (a:Person)-[:WORKS_AT]->(c:Company), (b:Person)-[:WORKS_AT]->(c)
	               WHERE a.name < b.name RETURN a.name, b.name`, nil)
	if len(res.Rows) != 1 || joined(res, 0) != `"Alice"` || joined(res, 1) != `"Carol"` {
		t.Errorf("rows: %v", res.Rows)
	}
}

func TestMatchRelVariableAndType(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (:Person {name:'Alice'})-[r]->(x) RETURN type(r) ORDER BY type(r)", nil)
	if got := joined(res, 0); got != `"KNOWS","WORKS_AT"` {
		t.Errorf("got %s", got)
	}
	res = q(t, s, "MATCH ()-[r:KNOWS {since: 2010}]->(b) RETURN b.name", nil)
	if got := joined(res, 0); got != `"Bob"` {
		t.Errorf("rel props got %s", got)
	}
}

func TestMatchVariableLength(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (a:Person {name:'Alice'})-[:KNOWS*1..2]->(b) RETURN b.name ORDER BY b.name", nil)
	if got := joined(res, 0); got != `"Bob","Carol"` {
		t.Errorf("got %s", got)
	}
	res = q(t, s, "MATCH (a:Person {name:'Alice'})-[:KNOWS*2]->(b) RETURN b.name", nil)
	if got := joined(res, 0); got != `"Carol"` {
		t.Errorf("exact hops got %s", got)
	}
	// Zero hops binds the node itself.
	res = q(t, s, "MATCH (a:Person {name:'Alice'})-[:KNOWS*0..1]->(b) RETURN b.name ORDER BY b.name", nil)
	if got := joined(res, 0); got != `"Alice","Bob"` {
		t.Errorf("zero hops got %s", got)
	}
}

func TestRelationshipUniqueness(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ := tx.CreateNode([]string{"N"}, map[string]value.Value{"name": value.Str("a")})
		b, _ := tx.CreateNode([]string{"N"}, map[string]value.Value{"name": value.Str("b")})
		_, err := tx.CreateRel(a, b, "R", nil)
		return err
	})
	// A two-hop pattern cannot reuse the single relationship back and forth.
	res := q(t, s, "MATCH (x:N {name:'a'})-[:R]-(y)-[:R]-(z) RETURN z.name", nil)
	if len(res.Rows) != 0 {
		t.Errorf("relationship uniqueness violated: %v", res.Rows)
	}
}

func TestOptionalMatch(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person) OPTIONAL MATCH (p)-[:WORKS_AT]->(c)
	               RETURN p.name, c.name ORDER BY p.name`, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := joined(res, 1); got != `"ACME",null,"ACME",null` {
		t.Errorf("got %s", got)
	}
}

func TestOptionalMatchWhereInsideMatching(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person {name:'Alice'})
	               OPTIONAL MATCH (p)-[:KNOWS]->(f) WHERE f.age > 100
	               RETURN p.name, f`, nil)
	if len(res.Rows) != 1 || !res.Rows[0][1].IsNull() {
		t.Errorf("optional with failing where should yield null: %v", res.Rows)
	}
}

func TestReturnStarColumns(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (c:Company) RETURN *", nil)
	if len(res.Columns) != 1 || res.Columns[0] != "c" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Kind() != value.KindNode {
		t.Error("star should return the node")
	}
}

func TestAggregationCountSumAvg(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person) RETURN count(*), sum(p.age), avg(p.age), min(p.age), max(p.age)", nil)
	r := res.Rows[0]
	if r[0].String() != "4" || r[1].String() != "123" || r[3].String() != "19" || r[4].String() != "41" {
		t.Errorf("aggregates: %v", r)
	}
	if f, _ := r[2].AsFloat(); f != 30.75 {
		t.Errorf("avg = %v", r[2])
	}
}

func TestAggregationGrouping(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person) RETURN p.age >= 30 AS senior, count(*) AS n ORDER BY senior`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][1].String() != "2" || res.Rows[1][1].String() != "2" {
		t.Errorf("group counts: %v", res.Rows)
	}
}

func TestAggregationCollectAndDistinct(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (:Person)-[:WORKS_AT]->(c) RETURN count(DISTINCT c) AS companies, collect(c.name) AS names", nil)
	r := res.Rows[0]
	if r[0].String() != "1" {
		t.Errorf("distinct count = %s", r[0])
	}
	if l, _ := r[1].AsList(); len(l) != 2 {
		t.Errorf("collect = %s", r[1])
	}
}

func TestAggregationEmptyInput(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (x:Nothing) RETURN count(*), sum(x.v), min(x.v), collect(x.v)", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("empty aggregate should yield one row")
	}
	r := res.Rows[0]
	if r[0].String() != "0" || r[1].String() != "0" || !r[2].IsNull() || r[3].String() != "[]" {
		t.Errorf("empty aggregates: %v", r)
	}
}

func TestAggregateInExpression(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person) RETURN toFloat(count(*)) / 2.0 AS half", nil)
	if f, _ := res.Rows[0][0].AsFloat(); f != 2 {
		t.Errorf("half = %v", res.Rows[0][0])
	}
}

func TestWithPipelineAggregation(t *testing.T) {
	s := testGraph(t)
	// The R2-style shape: count then threshold.
	res := q(t, s, `MATCH (p:Person) WITH count(p) AS n WHERE n > 3 RETURN n`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "4" {
		t.Errorf("with aggregation: %v", res.Rows)
	}
	res = q(t, s, `MATCH (p:Person) WITH count(p) AS n WHERE n > 10 RETURN n`, nil)
	if len(res.Rows) != 0 {
		t.Error("threshold filter should drop the row")
	}
}

func TestUnwind(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "UNWIND [3, 1, 2] AS x RETURN x ORDER BY x", nil)
	if got := joined(res, 0); got != "1,2,3" {
		t.Errorf("got %s", got)
	}
	res = q(t, s, "UNWIND [] AS x RETURN x", nil)
	if len(res.Rows) != 0 {
		t.Error("unwind of empty list")
	}
	res = q(t, s, "UNWIND null AS x RETURN x", nil)
	if len(res.Rows) != 0 {
		t.Error("unwind of null")
	}
	res = q(t, s, "UNWIND range(1, 4) AS x RETURN sum(x)", nil)
	if res.Rows[0][0].String() != "10" {
		t.Error("unwind range sum")
	}
}

func TestDistinctRows(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (:Person)-[:WORKS_AT]->(c) RETURN DISTINCT c.name", nil)
	if len(res.Rows) != 1 {
		t.Errorf("distinct rows = %d", len(res.Rows))
	}
}

func TestSkipLimit(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person) RETURN p.name ORDER BY p.name SKIP 1 LIMIT 2", nil)
	if got := joined(res, 0); got != `"Bob","Carol"` {
		t.Errorf("got %s", got)
	}
	res = q(t, s, "MATCH (p:Person) RETURN p.name SKIP 10", nil)
	if len(res.Rows) != 0 {
		t.Error("skip past end")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, `UNWIND [{a:1,b:2},{a:1,b:1},{a:0,b:9}] AS m
	               RETURN m.a AS a, m.b AS b ORDER BY a, b DESC`, nil)
	if joined(res, 0) != "0,1,1" || joined(res, 1) != "9,2,1" {
		t.Errorf("rows: %v", res.Rows)
	}
}

func TestParameters(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (p:Person) WHERE p.age > $min RETURN count(*)", &Options{
		Params: map[string]value.Value{"min": value.Int(30)},
	})
	if res.Rows[0][0].String() != "2" {
		t.Errorf("param query: %v", res.Rows)
	}
	tx := s.Begin(graph.ReadOnly)
	defer tx.Rollback()
	if _, err := Run(tx, "RETURN $missing", nil); err == nil {
		t.Error("missing parameter should fail")
	}
}

func TestInitialBindings(t *testing.T) {
	s := testGraph(t)
	var bobID graph.NodeID
	_ = s.View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel("Person") {
			if v, _ := tx.NodeProp(id, "name"); v.String() == `"Bob"` {
				bobID = id
			}
		}
		return nil
	})
	res := q(t, s, "MATCH (NEW)-[:KNOWS]->(x) RETURN x.name", &Options{
		Bindings: map[string]value.Value{"NEW": value.Node(int64(bobID))},
	})
	if got := joined(res, 0); got != `"Carol"` {
		t.Errorf("bound NEW traversal got %s", got)
	}
}

func TestPatternPredicateInWhere(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person) WHERE (p)-[:WORKS_AT]->(:Company) RETURN p.name ORDER BY p.name`, nil)
	if got := joined(res, 0); got != `"Alice","Carol"` {
		t.Errorf("got %s", got)
	}
	res = q(t, s, `MATCH (p:Person) WHERE NOT (p)-[:WORKS_AT]->() RETURN p.name ORDER BY p.name`, nil)
	if got := joined(res, 0); got != `"Bob","Dave"` {
		t.Errorf("negated got %s", got)
	}
}

func TestExistsFunction(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person) WHERE EXISTS((p)-[:KNOWS]->()) RETURN p.name ORDER BY p.name`, nil)
	if got := joined(res, 0); got != `"Alice","Bob"` {
		t.Errorf("got %s", got)
	}
}

func TestTernaryLogicInWhere(t *testing.T) {
	s := graph.NewStore()
	_ = s.Update(func(tx *graph.Tx) error {
		_, _ = tx.CreateNode([]string{"S"}, map[string]value.Value{"v": value.Int(1)})
		_, _ = tx.CreateNode([]string{"S"}, nil) // v missing → null comparisons unknown
		return nil
	})
	res := q(t, s, "MATCH (s:S) WHERE s.v > 0 RETURN count(*)", nil)
	if res.Rows[0][0].String() != "1" {
		t.Error("unknown predicate must not match")
	}
	res = q(t, s, "MATCH (s:S) WHERE s.v IS NULL RETURN count(*)", nil)
	if res.Rows[0][0].String() != "1" {
		t.Error("IS NULL")
	}
}

func TestDateTimeFunctionsWithFixedClock(t *testing.T) {
	s := graph.NewStore()
	fixed := time.Date(2023, 4, 1, 10, 0, 0, 0, time.UTC)
	res := q(t, s, "RETURN datetime(), timestamp(), datetime('2023-03-31').day", &Options{
		Now: func() time.Time { return fixed },
	})
	r := res.Rows[0]
	if ts, _ := r[0].AsDateTime(); !ts.Equal(fixed) {
		t.Error("datetime() should use injected clock")
	}
	if ms, _ := r[1].AsInt(); ms != fixed.UnixMilli() {
		t.Error("timestamp()")
	}
	if r[2].String() != "31" {
		t.Error("datetime field access")
	}
}

func TestCaseExpression(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person) RETURN p.name,
		CASE WHEN p.age >= 40 THEN 'senior' WHEN p.age >= 25 THEN 'adult' ELSE 'young' END AS band
		ORDER BY p.name`, nil)
	if got := joined(res, 1); got != `"adult","adult","senior","young"` {
		t.Errorf("got %s", got)
	}
}

func TestListOperations(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, `RETURN size([1,2,3]), head([1,2]), last([1,2]), tail([1,2,3]),
	                [1,2] + [3], 2 IN [1,2], [x IN [1,2,3] WHERE x > 1 | x * 10]`, nil)
	r := res.Rows[0]
	checks := []string{"3", "1", "2", "[2, 3]", "[1, 2, 3]", "true", "[20, 30]"}
	for i, want := range checks {
		if r[i].String() != want {
			t.Errorf("col %d = %s, want %s", i, r[i], want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, `RETURN toUpper('ab'), toLower('AB'), trim('  x '), substring('hello', 1, 3),
	                replace('aaa', 'a', 'b'), split('a,b', ','), left('hello', 2), reverse('abc')`, nil)
	r := res.Rows[0]
	checks := []string{`"AB"`, `"ab"`, `"x"`, `"ell"`, `"bbb"`, `["a", "b"]`, `"he"`, `"cba"`}
	for i, want := range checks {
		if r[i].String() != want {
			t.Errorf("col %d = %s, want %s", i, r[i], want)
		}
	}
}

func TestCoalesceAndNullPropagation(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "RETURN coalesce(null, null, 7), null + 1, toFloat(null)", nil)
	r := res.Rows[0]
	if r[0].String() != "7" || !r[1].IsNull() || !r[2].IsNull() {
		t.Errorf("row: %v", r)
	}
}

func TestLabelsAndIdFunctions(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, "MATCH (c:Company) RETURN labels(c), id(c) >= 0", nil)
	r := res.Rows[0]
	if r[0].String() != `["Company"]` || r[1].String() != "true" {
		t.Errorf("row: %v", r)
	}
}

func TestStartEndNode(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH ()-[r:KNOWS {since: 2010}]->() RETURN startNode(r).name, endNode(r).name`, nil)
	if res.Rows[0][0].String() != `"Alice"` || res.Rows[0][1].String() != `"Bob"` {
		t.Errorf("row: %v", res.Rows[0])
	}
}

func TestErrorUndefinedVariable(t *testing.T) {
	s := graph.NewStore()
	err := qErr(t, s, "RETURN nope")
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error should name the variable: %v", err)
	}
}

func TestErrorAggregateInWhere(t *testing.T) {
	s := graph.NewStore()
	err := qErr(t, s, "MATCH (n) WHERE count(n) > 1 RETURN n")
	if !strings.Contains(err.Error(), "aggregate") {
		t.Errorf("got: %v", err)
	}
}

func TestDuplicateColumnError(t *testing.T) {
	s := graph.NewStore()
	qErr(t, s, "RETURN 1 AS x, 2 AS x")
}

func TestUnion(t *testing.T) {
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person {name:'Alice'}) RETURN p.name AS name
	               UNION
	               MATCH (c:Company) RETURN c.name AS name`, nil)
	if len(res.Columns) != 1 || res.Columns[0] != "name" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if got := joined(res, 0); got != `"Alice","ACME"` {
		t.Errorf("union rows: %s", got)
	}
}

func TestUnionDeduplicates(t *testing.T) {
	s := graph.NewStore()
	res := q(t, s, "RETURN 1 AS x UNION RETURN 1 AS x UNION RETURN 2 AS x", nil)
	if len(res.Rows) != 2 {
		t.Errorf("UNION should deduplicate: %v", res.Rows)
	}
	res = q(t, s, "RETURN 1 AS x UNION ALL RETURN 1 AS x", nil)
	if len(res.Rows) != 2 {
		t.Errorf("UNION ALL keeps duplicates: %v", res.Rows)
	}
	// Mixed: any non-ALL joint deduplicates the whole result.
	res = q(t, s, "RETURN 1 AS x UNION ALL RETURN 1 AS x UNION RETURN 1 AS x", nil)
	if len(res.Rows) != 1 {
		t.Errorf("mixed union: %v", res.Rows)
	}
}

func TestUnionErrors(t *testing.T) {
	s := graph.NewStore()
	qErr(t, s, "RETURN 1 AS x UNION RETURN 1 AS y")         // column mismatch
	qErr(t, s, "RETURN 1 AS x, 2 AS y UNION RETURN 1 AS x") // arity mismatch
	if _, err := Parse("RETURN 1 AS x UNION CREATE (:N)"); err == nil {
		t.Error("union branch must end in RETURN")
	}
	if _, err := Parse("CREATE (:N) UNION RETURN 1 AS x"); err == nil {
		t.Error("first branch must end in RETURN")
	}
}

func TestUnionWithWrites(t *testing.T) {
	// UNION over aggregates drawn from different hubs — the inter-hub
	// union pattern alert queries need.
	s := testGraph(t)
	res := q(t, s, `MATCH (p:Person) RETURN 'people' AS kind, count(p) AS n
	               UNION ALL
	               MATCH (c:Company) RETURN 'companies' AS kind, count(c) AS n`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][1].String() != "4" || res.Rows[1][1].String() != "1" {
		t.Errorf("counts: %v", res.Rows)
	}
}
