package core

// The hub-sharded knowledge base: the paper's hub partition (§III-A) turned
// into a storage layout. Every hub gets its own graph shard — a full
// single-writer MVCC store with its own write lock, WAL segment stream and
// atomically published snapshot — so transactions that stay inside one hub
// (the common case: guards are intra-hub by design, §III-B) commit fully in
// parallel. Knowledge bridges, the relationships that cross hub borders,
// take a two-shard commit path: both shard locks are held in deterministic
// (ascending index) order and a single durable commit record spanning both
// WAL streams decides the outcome (see wal.ShardSet.AppendBridge).
//
// One rule engine, one hub registry and one metrics registry are shared by
// all shards: rules, hubs and schemas are ontology, not data, exactly as in
// the unsharded KnowledgeBase. trigger.Engine.Process is concurrency-safe,
// so concurrent per-shard writers can cascade rules at the same time; each
// cascade only ever touches the transaction it was handed, which is pinned
// to one shard.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/metrics"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
)

// ErrUnknownShardHub is returned when a hub name is not mapped to a shard.
var ErrUnknownShardHub = errors.New("core: hub is not mapped to a shard")

// HubShard declares one hub of a sharded knowledge base: the hub's name and
// description (registered on the shared hub registry) and the node labels it
// owns. The slice order fixes the shard indexes — it must be identical on
// every open of a durable directory, since shard i recovers from the
// shard-i WAL stream.
type HubShard struct {
	Hub         string
	Description string
	Labels      []string
}

// ShardedKB is a knowledge base whose graph is sharded by hub: shard i
// holds hub i's nodes and its halves of the knowledge bridges touching
// them. Intra-hub writes on different hubs commit in parallel; bridge
// writes span exactly two shards. Compare KnowledgeBase, the single-store
// variant.
type ShardedKB struct {
	store  *graph.ShardedStore
	engine *trigger.Engine
	hubs   *hub.Registry
	clock  periodic.Clock

	shardOf map[string]int // hub name -> shard index
	hubOf   []string       // shard index -> hub name

	// wal is the per-shard write-ahead-log set of a durable sharded
	// knowledge base; nil for in-memory ones.
	wal    *wal.ShardSet
	ckptMu sync.Mutex

	follower    atomic.Bool
	replicaSeqs []atomic.Uint64 // in-memory follower apply cursors, one per shard

	metrics     *metrics.Registry
	mCross      *metrics.Counter
	mAsyncEnq   *metrics.Counter
	mXQuery     *metrics.Counter
	mXQuerySecs *metrics.Histogram

	// plans caches prepared statements keyed by query text; lookups are
	// lock-free, so concurrent per-hub readers never contend on parsing.
	plans *cypher.PlanCache

	mu sync.Mutex
}

// NewSharded creates an empty in-memory sharded knowledge base with one
// shard per declared hub.
func NewSharded(cfg Config, hubs []HubShard) (*ShardedKB, error) {
	if len(hubs) == 0 {
		return nil, errors.New("core: sharded knowledge base needs at least one hub")
	}
	ss, err := graph.NewSharded(len(hubs))
	if err != nil {
		return nil, err
	}
	return assembleSharded(cfg, hubs, ss, nil, wal.Options{}, nil)
}

// OpenShardedDurable opens (or creates) a durable sharded knowledge base
// under dir: shard i persists to the shard-i WAL stream (a subdirectory of
// dir), recovery replays the shards independently and then reconciles
// bridge commits whose prepare half was torn away (see wal.OpenShardSet).
// The hubs slice must match the one the directory was created with. As with
// OpenDurable, rules, schemas and indexes are configuration: the caller
// re-installs them after opening.
func OpenShardedDurable(dir string, cfg Config, hubs []HubShard, wopts wal.Options) (*ShardedKB, []*wal.RecoveryInfo, error) {
	if len(hubs) == 0 {
		return nil, nil, errors.New("core: sharded knowledge base needs at least one hub")
	}
	return openShardedDurable(dir, cfg, hubs, wopts, false)
}

// OpenShardedDurableFollower opens (or creates) a durable sharded knowledge
// base that runs as a replication follower. Unlike OpenShardedDurable it
// installs no per-shard commit hooks — ApplyReplicatedShard mirrors the
// leader's records itself, preserving leader sequence numbers — and flips
// every shard into follower mode. Each recovered stream's LastSeq is that
// shard's apply cursor to resume from.
func OpenShardedDurableFollower(dir string, cfg Config, hubs []HubShard, wopts wal.Options) (*ShardedKB, []*wal.RecoveryInfo, error) {
	return openShardedDurable(dir, cfg, hubs, wopts, true)
}

func openShardedDurable(dir string, cfg Config, hubs []HubShard, wopts wal.Options, follower bool) (*ShardedKB, []*wal.RecoveryInfo, error) {
	set, stores, infos, err := wal.OpenShardSet(dir, len(hubs), wopts)
	if err != nil {
		return nil, nil, err
	}
	ss, err := graph.AttachShards(stores)
	if err != nil {
		set.Close()
		return nil, nil, err
	}
	kb, err := assembleSharded(cfg, hubs, ss, set, wopts, infos)
	if err != nil {
		set.Close()
		return nil, nil, err
	}
	if follower {
		kb.SetFollowerMode(true)
	}
	return kb, infos, nil
}

// assembleSharded wires registry, engine, metrics and (for durable sets)
// per-shard commit hooks around an existing sharded store.
func assembleSharded(cfg Config, defs []HubShard, ss *graph.ShardedStore, set *wal.ShardSet, wopts wal.Options, infos []*wal.RecoveryInfo) (*ShardedKB, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = periodic.RealClock{}
	}
	kb := &ShardedKB{
		store:       ss,
		hubs:        hub.NewRegistry(),
		clock:       clock,
		shardOf:     make(map[string]int, len(defs)),
		hubOf:       make([]string, len(defs)),
		wal:         set,
		replicaSeqs: make([]atomic.Uint64, len(defs)),
		plans:       cypher.NewPlanCache(0),
	}
	for i, d := range defs {
		if _, dup := kb.shardOf[d.Hub]; dup {
			return nil, fmt.Errorf("core: hub %s declared twice", d.Hub)
		}
		if _, err := kb.hubs.Define(d.Hub, d.Description); err != nil {
			return nil, err
		}
		if err := kb.hubs.Own(d.Hub, d.Labels...); err != nil {
			return nil, err
		}
		kb.shardOf[d.Hub] = i
		kb.hubOf[i] = d.Hub
	}

	e := trigger.NewEngine()
	e.MaxCascadeDepth = cfg.MaxCascadeDepth
	e.StrictTermination = cfg.StrictTermination
	e.EnforceIntraHubGuards = cfg.EnforceIntraHubGuards
	if cfg.AlertLabel != "" {
		e.AlertLabel = cfg.AlertLabel
	}
	e.Clock = clock.Now
	e.Resolver = kb.hubs.OwnerOfLabel
	e.SkipLabels = map[string]bool{PendingAlertLabel: true}
	e.AsyncSink = kb.shardAsyncEnqueue
	kb.engine = e

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	kb.wireShardedMetrics(reg, wopts.Fsync, infos)

	if set != nil {
		for i := 0; i < ss.NumShards(); i++ {
			l := set.Log(i)
			ss.Shard(i).SetCommitHook(func(tx *graph.Tx) error {
				if tx.IsApply() {
					// Replicated batches are mirrored by ApplyReplicatedShard
					// itself, preserving leader sequence numbers.
					return nil
				}
				rec := wal.RecordFromTx(tx)
				if rec == nil {
					return nil
				}
				seq, err := l.AppendAsync(rec)
				if err != nil {
					return err
				}
				return tx.OnCommitted(func() error { return l.WaitDurable(seq) })
			})
		}
	}
	return kb, nil
}

// ---- Accessors ----

// NumShards returns the number of shards (= declared hubs).
func (kb *ShardedKB) NumShards() int { return kb.store.NumShards() }

// Store exposes the underlying sharded graph store. Writes made directly
// through it bypass the rule engine.
func (kb *ShardedKB) Store() *graph.ShardedStore { return kb.store }

// Engine exposes the shared rule engine.
func (kb *ShardedKB) Engine() *trigger.Engine { return kb.engine }

// Hubs exposes the shared hub registry.
func (kb *ShardedKB) Hubs() *hub.Registry { return kb.hubs }

// Clock returns the knowledge base's clock.
func (kb *ShardedKB) Clock() periodic.Clock { return kb.clock }

// Metrics returns the metrics registry.
func (kb *ShardedKB) Metrics() *metrics.Registry { return kb.metrics }

// Durable reports whether the shards persist to write-ahead logs.
func (kb *ShardedKB) Durable() bool { return kb.wal != nil }

// WAL exposes the per-shard write-ahead-log set (nil for in-memory).
func (kb *ShardedKB) WAL() *wal.ShardSet { return kb.wal }

// ShardOf returns the shard index of a hub.
func (kb *ShardedKB) ShardOf(hubName string) (int, bool) {
	i, ok := kb.shardOf[hubName]
	return i, ok
}

// HubOfShard returns the hub name of a shard index.
func (kb *ShardedKB) HubOfShard(i int) string {
	if i < 0 || i >= len(kb.hubOf) {
		return ""
	}
	return kb.hubOf[i]
}

// EnforceHubOwnership installs the hub-ownership validator on every shard.
func (kb *ShardedKB) EnforceHubOwnership() {
	for i := 0; i < kb.store.NumShards(); i++ {
		kb.hubs.Enforce(kb.store.Shard(i))
	}
}

// InstallRule compiles and installs a reactive rule (shared by all shards).
func (kb *ShardedKB) InstallRule(r trigger.Rule) error { return kb.engine.Install(r) }

// InstallRuleText parses a CREATE TRIGGER declaration and installs it.
func (kb *ShardedKB) InstallRuleText(src string) (trigger.Rule, error) {
	return kb.engine.InstallText(src)
}

// Rules lists installed rules with their classifications.
func (kb *ShardedKB) Rules() []trigger.RuleInfo { return kb.engine.Rules() }

// DropRule uninstalls a rule (shared by all shards).
func (kb *ShardedKB) DropRule(name string) error { return kb.engine.Drop(name) }

// TranslateRulesAPOC exports every installed rule as a Neo4j APOC trigger
// installation call (Fig. 6/7 translation); untranslatable rules are listed
// in skipped.
func (kb *ShardedKB) TranslateRulesAPOC(dbName, phase string) (translated, skipped []string) {
	return kb.engine.TranslateAllAPOC(dbName, phase)
}

// Now reads the knowledge base's clock.
func (kb *ShardedKB) Now() time.Time { return kb.clock.Now() }

// Role names this instance's replication role, qualified as sharded.
func (kb *ShardedKB) Role() string {
	if kb.Follower() {
		return "sharded-follower"
	}
	return "sharded-leader"
}

func (kb *ShardedKB) checkShard(i int) error {
	if i < 0 || i >= kb.store.NumShards() {
		return fmt.Errorf("core: shard %d out of range [0,%d)", i, kb.store.NumShards())
	}
	return nil
}

// ---- Write paths ----

// UpdateInHub runs fn in a read-write transaction on the named hub's shard,
// fires the reactive rules over its changes, and commits. Updates on
// different hubs proceed fully in parallel — each takes only its own
// shard's write lock and appends to its own WAL stream.
func (kb *ShardedKB) UpdateInHub(hubName string, fn func(tx *graph.Tx) error) (*trigger.Report, error) {
	i, ok := kb.shardOf[hubName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownShardHub, hubName)
	}
	return kb.UpdateShard(i, fn)
}

// UpdateShard is UpdateInHub by shard index.
func (kb *ShardedKB) UpdateShard(i int, fn func(tx *graph.Tx) error) (*trigger.Report, error) {
	if err := kb.checkShard(i); err != nil {
		return nil, err
	}
	if kb.follower.Load() {
		return nil, ErrFollower
	}
	tx := kb.store.Shard(i).Begin(graph.ReadWrite)
	if err := fn(tx); err != nil {
		tx.Rollback()
		return nil, err
	}
	data := tx.ResetData()
	data.Compact()
	rep, err := kb.engine.Process(tx, data)
	if err != nil {
		tx.Rollback()
		return rep, err
	}
	return rep, tx.Commit()
}

// UpdateBridge runs fn in a two-shard bridge transaction spanning the two
// named hubs: both shard locks are taken in ascending index order (the
// deterministic order that makes concurrent bridges deadlock-free), fn may
// create knowledge bridges between the hubs through the BridgeTx, the
// reactive rules fire over each side's changes, and the commit appends a
// single durable commit record spanning both WAL streams before either
// shard's snapshot is published.
//
// The rule cascade runs per side: a rule triggered by the lower shard's
// changes reads and writes the lower shard only (guards are intra-hub by
// design, so this is the paper's locality assumption made physical).
//
// A non-nil error with a non-nil report means the bridge committed but a
// post-commit durability wait failed — the same contract as the group
// commit path of a single-shard write.
func (kb *ShardedKB) UpdateBridge(hubA, hubB string, fn func(bt *graph.BridgeTx) error) (*trigger.Report, error) {
	a, ok := kb.shardOf[hubA]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownShardHub, hubA)
	}
	b, ok := kb.shardOf[hubB]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownShardHub, hubB)
	}
	return kb.UpdateBridgeShards(a, b, fn)
}

// UpdateBridgeShards is UpdateBridge by shard index.
func (kb *ShardedKB) UpdateBridgeShards(a, b int, fn func(bt *graph.BridgeTx) error) (*trigger.Report, error) {
	if err := kb.checkShard(a); err != nil {
		return nil, err
	}
	if err := kb.checkShard(b); err != nil {
		return nil, err
	}
	if kb.follower.Load() {
		return nil, ErrFollower
	}
	bt, err := kb.store.BeginBridge(a, b)
	if err != nil {
		return nil, err
	}
	if err := fn(bt); err != nil {
		bt.Rollback()
		return nil, err
	}
	lo, hi := bt.Shards()
	total := &trigger.Report{}
	for _, idx := range []int{lo, hi} {
		tx, err := bt.ShardTx(idx)
		if err != nil {
			bt.Rollback()
			return nil, err
		}
		data := tx.ResetData()
		data.Compact()
		rep, err := kb.engine.Process(tx, data)
		mergeReports(total, rep)
		if err != nil {
			bt.Rollback()
			return total, err
		}
	}
	var durErr error
	if err := bt.Commit(kb.sealBridge(lo, hi, &durErr)); err != nil {
		return total, err
	}
	kb.mCross.Inc()
	return total, durErr
}

// sealBridge builds the seal callback for a bridge commit: while both shard
// locks are held it appends the two-stream commit record pair and waits for
// durability, so the bridge outcome is decided on disk before either
// snapshot becomes visible. An error after the commit record was appended
// does not abort the commit (the record may have reached disk; aborting
// could diverge memory from log) — it is stashed in *durErr and surfaced by
// UpdateBridgeShards, mirroring the group-commit fsync contract.
func (kb *ShardedKB) sealBridge(lo, hi int, durErr *error) func(loTx, hiTx *graph.Tx) error {
	if kb.wal == nil {
		return nil
	}
	return func(loTx, hiTx *graph.Tx) error {
		loRec := wal.RecordFromTx(loTx)
		hiRec := wal.RecordFromTx(hiTx)
		switch {
		case loRec == nil && hiRec == nil:
			return nil
		case hiRec == nil:
			// Only one side changed: an ordinary single-stream commit.
			return kb.appendOne(lo, loTx, loRec)
		case loRec == nil:
			return kb.appendOne(hi, hiTx, hiRec)
		}
		committed, err := kb.wal.AppendBridge(lo, hi, loRec, hiRec)
		if err != nil && !committed {
			return err
		}
		*durErr = err
		return nil
	}
}

// appendOne appends a record to one shard's log under the held locks and
// defers the durability wait to after publication (group commit).
func (kb *ShardedKB) appendOne(idx int, tx *graph.Tx, rec *wal.Record) error {
	l := kb.wal.Log(idx)
	seq, err := l.AppendAsync(rec)
	if err != nil {
		return err
	}
	return tx.OnCommitted(func() error { return l.WaitDurable(seq) })
}

// mergeReports folds src into dst (counters sum, activations concatenate).
func mergeReports(dst, src *trigger.Report) {
	if src == nil {
		return
	}
	dst.Rounds += src.Rounds
	dst.GuardChecks += src.GuardChecks
	dst.GuardPasses += src.GuardPasses
	dst.AlertRuns += src.AlertRuns
	dst.AlertNodes += src.AlertNodes
	dst.Activations = append(dst.Activations, src.Activations...)
	dst.RulesConsidered += src.RulesConsidered
	dst.AsyncEnqueued += src.AsyncEnqueued
	dst.AsyncShed += src.AsyncShed
}

// ---- Read paths ----

// prepare resolves a query to its cached Plan, parsing on first sight.
func (kb *ShardedKB) prepare(query string) (*cypher.Plan, error) {
	return kb.plans.Get(query)
}

// PlanCacheStats snapshots the shared plan cache's size and hit counters.
func (kb *ShardedKB) PlanCacheStats() cypher.PlanCacheStats { return kb.plans.Stats() }

// Query runs a read-only statement across all shards at once, lock-free:
// every shard's committed snapshot is pinned independently and the plan
// executes over the resulting multi-shard view. A MATCH that crosses a
// knowledge bridge follows it from either side and binds the bridge exactly
// once (both halves share one relationship identifier). Anchor selection
// costs against cardinalities aggregated over all shards, and the compiled
// variant is cached per backing store, so per-hub reads on skewed shards
// never execute a plan costed for the sharded view or vice versa. Write
// clauses fail: cross-shard views take no shard locks and are read-only.
func (kb *ShardedKB) Query(query string, params map[string]value.Value) (*cypher.Result, error) {
	plan, err := kb.prepare(query)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if kb.mXQuerySecs != nil {
		t0 = time.Now()
	}
	v := kb.store.View()
	defer v.Rollback()
	res, err := plan.Execute(v, &cypher.Options{Params: params, Now: kb.clock.Now})
	if err != nil {
		return nil, err
	}
	if kb.mXQuery != nil {
		kb.mXQuery.Inc()
		kb.mXQuerySecs.ObserveSince(t0)
	}
	return res, nil
}

// ExplainQuery renders the compiled plan a cross-shard Query for this
// statement would run: anchor choices are costed against label and index
// cardinalities aggregated over every shard.
func (kb *ShardedKB) ExplainQuery(query string) (string, error) {
	plan, err := kb.prepare(query)
	if err != nil {
		return "", err
	}
	v := kb.store.View()
	defer v.Rollback()
	return cypher.Explain(v, plan.Statement()), nil
}

// Alerts lists the alert nodes of every shard, oldest first (by dateTime,
// then id). Alert nodes are created in the shard of the hub whose rule
// fired, so the list is assembled over a multi-shard view.
func (kb *ShardedKB) Alerts() ([]Alert, error) {
	label := kb.engine.AlertLabel
	if label == "" {
		label = trigger.DefaultAlertLabel
	}
	var out []Alert
	err := kb.View(func(v *graph.MultiView) error {
		for _, id := range v.NodesByLabel(label) {
			n, ok := v.Node(id)
			if !ok {
				continue
			}
			a := Alert{ID: id, Props: make(map[string]value.Value)}
			for k, pv := range n.Props {
				switch k {
				case "rule":
					a.Rule, _ = pv.AsString()
				case "hub":
					a.Hub, _ = pv.AsString()
				case "dateTime":
					a.DateTime, _ = pv.AsDateTime()
				default:
					a.Props[k] = pv
				}
			}
			out = append(out, a)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].DateTime.Equal(out[j].DateTime) {
			return out[i].DateTime.Before(out[j].DateTime)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// QueryInHub runs a read-only statement against the named hub's shard,
// lock-free on its committed snapshot. The query sees that hub's nodes and
// its halves of the knowledge bridges touching them.
func (kb *ShardedKB) QueryInHub(hubName, query string, params map[string]value.Value) (*cypher.Result, error) {
	i, ok := kb.shardOf[hubName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownShardHub, hubName)
	}
	plan, err := kb.prepare(query)
	if err != nil {
		return nil, err
	}
	tx := kb.store.Shard(i).Begin(graph.ReadOnly)
	defer tx.Rollback()
	return plan.Execute(tx, &cypher.Options{Params: params, Now: kb.clock.Now})
}

// ExecuteInHub runs a statement in a read-write transaction on the named
// hub's shard, fires the reactive rules, and commits.
func (kb *ShardedKB) ExecuteInHub(hubName, query string, params map[string]value.Value) (*cypher.Result, *trigger.Report, error) {
	i, ok := kb.shardOf[hubName]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownShardHub, hubName)
	}
	plan, err := kb.prepare(query)
	if err != nil {
		return nil, nil, err
	}
	var res *cypher.Result
	rep, uerr := kb.UpdateShard(i, func(tx *graph.Tx) error {
		var err error
		res, err = plan.Execute(tx, &cypher.Options{Params: params, Now: kb.clock.Now})
		return err
	})
	if uerr != nil {
		return nil, rep, uerr
	}
	return res, rep, nil
}

// View runs fn over a multi-shard read view: each shard's snapshot is
// pinned lock-free and independently, so the view is per-shard consistent
// but makes no cross-shard ordering promise. Use BarrierView on the store
// for a cross-shard-consistent cut.
func (kb *ShardedKB) View(fn func(v *graph.MultiView) error) error {
	v := kb.store.View()
	defer v.Rollback()
	return fn(v)
}

// ViewShard runs fn over one shard's committed snapshot.
func (kb *ShardedKB) ViewShard(i int, fn func(tx *graph.Tx) error) error {
	if err := kb.checkShard(i); err != nil {
		return err
	}
	return kb.store.Shard(i).View(fn)
}

// ExportShard writes one shard's content as a deterministic JSON document.
// Two recoveries of the same committed state export byte-identical
// documents per shard; the crash tests rely on this.
func (kb *ShardedKB) ExportShard(i int, w io.Writer) error {
	if err := kb.checkShard(i); err != nil {
		return err
	}
	return kb.store.Shard(i).Export(w)
}

// ---- Asynchronous alerts ----

// shardAsyncEnqueue is the engine's AsyncSink on a sharded knowledge base:
// the passing AfterAsync binding is staged as a PendingAlert node inside
// the triggering transaction — which is pinned to the triggering shard, so
// the pending queue is per-shard and rides that shard's WAL stream.
// Entries are drained by DrainAsync; there is no background pipeline.
func (kb *ShardedKB) shardAsyncEnqueue(tx *graph.Tx, item trigger.AsyncItem) (bool, error) {
	enc, err := trigger.EncodeBinding(item.Binding)
	if err != nil {
		return false, err
	}
	_, err = tx.CreateNode([]string{PendingAlertLabel}, map[string]value.Value{
		pendingRuleProp:    value.Str(item.Rule),
		pendingBindingProp: value.Str(enc),
		pendingAtProp:      value.DateTime(kb.clock.Now()),
	})
	if err != nil {
		return false, err
	}
	return true, tx.OnCommitted(func() error {
		kb.mAsyncEnq.Inc()
		return nil
	})
}

// AsyncDepth returns the number of PendingAlert entries across all shards.
func (kb *ShardedKB) AsyncDepth() int {
	n := 0
	for i := 0; i < kb.store.NumShards(); i++ {
		n += kb.store.Shard(i).LabelCount(PendingAlertLabel)
	}
	return n
}

// DrainAsync synchronously evaluates and materializes every staged
// AfterAsync activation, shard by shard in enqueue (node-id) order, each in
// a follow-up transaction on its own shard that deletes the PendingAlert
// node and creates the alerts atomically (exactly-once across crashes, as
// in the unsharded pipeline). The async alert query of an entry evaluates
// against the shard that staged it: on a sharded knowledge base even
// AfterAsync queries are per-hub. Entries that fail stay queued (and are
// reported joined); corrupt or orphaned entries are discarded.
func (kb *ShardedKB) DrainAsync() (int, error) {
	if kb.follower.Load() {
		return 0, ErrFollower
	}
	done := 0
	var errs []error
	for i := 0; i < kb.store.NumShards(); i++ {
		skip := make(map[graph.NodeID]bool)
		for {
			entries := kb.collectPending(i, skip)
			if len(entries) == 0 {
				break
			}
			for _, en := range entries {
				ok, err := kb.processPending(i, en)
				if err != nil {
					skip[en.id] = true
					errs = append(errs, fmt.Errorf("core: shard %d pending %d: %w", i, en.id, err))
					continue
				}
				if ok {
					done++
				}
			}
		}
	}
	return done, errors.Join(errs...)
}

// collectPending reads shard i's committed PendingAlert entries in node-id
// (= enqueue) order, excluding failed ones from this drain.
func (kb *ShardedKB) collectPending(i int, skip map[graph.NodeID]bool) []pendingEntry {
	var out []pendingEntry
	_ = kb.store.Shard(i).View(func(tx *graph.Tx) error {
		ids := tx.NodesByLabel(PendingAlertLabel)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if skip[id] {
				continue
			}
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			en := pendingEntry{id: id}
			if v, ok := n.Props[pendingRuleProp]; ok {
				en.rule, _ = v.AsString()
			}
			if v, ok := n.Props[pendingBindingProp]; ok {
				en.binding, _ = v.AsString()
			}
			out = append(out, en)
		}
		return nil
	})
	return out
}

// processPending evaluates one entry against shard i and consumes it in a
// follow-up transaction; ok reports whether alerts were materialized (false
// for discarded entries).
func (kb *ShardedKB) processPending(i int, en pendingEntry) (bool, error) {
	bind, err := trigger.DecodeBinding(en.binding)
	if err != nil {
		// Corrupt payload: nothing can ever evaluate it. Drop it.
		return false, kb.discardPending(i, en.id)
	}
	ro := kb.store.Shard(i).Begin(graph.ReadOnly)
	cols, rows, err := kb.engine.EvaluateAsync(ro, en.rule, bind)
	ro.Rollback()
	if errors.Is(err, trigger.ErrRuleNotFound) {
		return false, kb.discardPending(i, en.id)
	}
	if err != nil {
		return false, err
	}
	_, err = kb.UpdateShard(i, func(tx *graph.Tx) error {
		if !tx.NodeExists(en.id) {
			return nil // already consumed
		}
		if err := tx.DeleteNode(en.id, true); err != nil {
			return err
		}
		_, err := kb.engine.MaterializeAsync(tx, en.rule, bind, cols, rows)
		return err
	})
	return err == nil, err
}

// discardPending removes an unprocessable entry without firing rules.
func (kb *ShardedKB) discardPending(i int, id graph.NodeID) error {
	return kb.store.Shard(i).Update(func(tx *graph.Tx) error {
		if !tx.NodeExists(id) {
			return nil
		}
		return tx.DeleteNode(id, true)
	})
}

// ---- Checkpointing ----

// Checkpoint snapshots every shard at one cross-shard-consistent cut and
// compacts each shard's log down to it: all shard locks are taken (in
// ascending order, like a bridge), every log is cut at that instant, then
// the pinned views are exported and installed with the locks released.
//
// The SyncAll before compaction is a correctness requirement, not an
// optimization: a bridge's commit record (in the lower shard's stream) may
// only be compacted away once the higher shard durably holds the matching
// BridgeDone marker — otherwise a crash could leave a prepare with no
// surviving evidence of commitment. Any marker at or below the cut was
// appended before the barrier (bridges hold both locks through the marker
// append), so one SyncAll here durably covers them all.
func (kb *ShardedKB) Checkpoint() error {
	if kb.wal == nil {
		return ErrNotDurable
	}
	kb.ckptMu.Lock()
	defer kb.ckptMu.Unlock()
	n := kb.store.NumShards()
	seqs := make([]uint64, n)
	view, err := kb.store.BarrierView(func() error {
		for i := 0; i < n; i++ {
			seq, err := kb.wal.Log(i).Cut()
			if err != nil {
				return err
			}
			seqs[i] = seq
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer view.Rollback()
	if err := kb.wal.SyncAll(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		if err := view.ShardTx(i).Export(&buf); err != nil {
			return err
		}
		if err := kb.wal.Log(i).Checkpoint(seqs[i], buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointShard snapshots and compacts a single shard without touching
// the others' write locks: per-hub checkpointing stays independent, so a
// hot hub can compact on its own schedule. The SyncAll before compaction
// carries the same bridge-marker invariant as Checkpoint.
func (kb *ShardedKB) CheckpointShard(i int) error {
	if kb.wal == nil {
		return ErrNotDurable
	}
	if err := kb.checkShard(i); err != nil {
		return err
	}
	kb.ckptMu.Lock()
	defer kb.ckptMu.Unlock()
	var seq uint64
	view, err := kb.store.Shard(i).SnapshotView(func() error {
		var err error
		seq, err = kb.wal.Log(i).Cut()
		return err
	})
	if err != nil {
		return err
	}
	defer view.Rollback()
	if err := kb.wal.SyncAll(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := view.Export(&buf); err != nil {
		return err
	}
	return kb.wal.Log(i).Checkpoint(seq, buf.Bytes())
}

// Close flushes and closes every shard's write-ahead log (no-op for an
// in-memory sharded knowledge base).
func (kb *ShardedKB) Close() error {
	if kb.wal == nil {
		return nil
	}
	return kb.wal.Close()
}

// ---- Replication plumbing ----

// SetFollowerMode flips the whole sharded knowledge base into (or out of)
// replication-follower mode: ordinary writes fail with ErrFollower and
// state arrives only through ApplyReplicatedShard. Each shard's record
// stream replicates independently — per-shard streaming cursors, one per
// shard directory, exactly as with unsharded replicas.
func (kb *ShardedKB) SetFollowerMode(on bool) {
	kb.follower.Store(on)
	for i := 0; i < kb.store.NumShards(); i++ {
		kb.store.Shard(i).SetFollowerMode(on)
	}
}

// Follower reports whether this sharded knowledge base is a follower.
func (kb *ShardedKB) Follower() bool { return kb.follower.Load() }

// ShardAppliedSeq returns a follower shard's apply cursor.
func (kb *ShardedKB) ShardAppliedSeq(i int) uint64 {
	if kb.wal != nil {
		return kb.wal.Log(i).LastSeq()
	}
	return kb.replicaSeqs[i].Load()
}

// ApplyReplicatedShard applies a contiguous batch of leader records to one
// shard of a follower, mirroring KnowledgeBase.ApplyReplicated per shard:
// the batch must start at ShardAppliedSeq(i)+1, is replayed in one apply
// transaction, mirrored into the shard's own log with leader sequence
// numbers preserved, and made durable with one group-commit wait. Bridge
// records need no special handling here — each stream carries its own
// shard's half of every bridge, so per-shard independent apply reproduces
// the leader's shards exactly.
func (kb *ShardedKB) ApplyReplicatedShard(i int, recs []*wal.Record) error {
	if !kb.follower.Load() {
		return errors.New("core: ApplyReplicatedShard on a leader knowledge base")
	}
	if err := kb.checkShard(i); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	want := kb.ShardAppliedSeq(i) + 1
	for j, rec := range recs {
		if rec.Seq != want+uint64(j) {
			return fmt.Errorf("core: shard %d replicated batch not contiguous: record %d has seq %d, want %d",
				i, j, rec.Seq, want+uint64(j))
		}
	}
	tx := kb.store.Shard(i).BeginApply()
	for _, rec := range recs {
		if err := wal.ApplyRecord(tx, rec); err != nil {
			tx.Rollback()
			return fmt.Errorf("core: shard %d apply record %d: %w", i, rec.Seq, err)
		}
	}
	appended := 0
	if kb.wal != nil {
		l := kb.wal.Log(i)
		for j, rec := range recs {
			if err := l.AppendReplicated(rec); err != nil {
				tx.Rollback()
				if j > 0 {
					return fmt.Errorf("core: shard %d mirror record %d: %v: %w", i, rec.Seq, err, ErrReplicaDiverged)
				}
				return fmt.Errorf("core: shard %d mirror record %d: %w", i, rec.Seq, err)
			}
			appended = j + 1
		}
	}
	if err := tx.Commit(); err != nil {
		if appended > 0 {
			return fmt.Errorf("core: shard %d commit replicated batch: %v: %w", i, err, ErrReplicaDiverged)
		}
		return fmt.Errorf("core: shard %d commit replicated batch: %w", i, err)
	}
	last := recs[len(recs)-1].Seq
	if kb.wal != nil {
		if err := kb.wal.Log(i).WaitDurable(last); err != nil {
			return fmt.Errorf("core: shard %d replicated batch durability: %v: %w", i, err, ErrReplicaDiverged)
		}
	} else {
		kb.replicaSeqs[i].Store(last)
	}
	return nil
}

// ---- Metrics ----

// wireShardedMetrics registers the sharded knowledge base's instruments:
// the per-shard rkm_shard_* family plus the shared engine and graph totals,
// using the same names (and help strings) as the unsharded wiring so a
// registry shared between variants aggregates cleanly.
func (kb *ShardedKB) wireShardedMetrics(reg *metrics.Registry, policy wal.FsyncPolicy, infos []*wal.RecoveryInfo) {
	kb.metrics = reg
	kb.engine.Metrics = trigger.EngineMetrics{
		RuleFired: reg.CounterVec(mRuleFired, "rule",
			"Guard passes (rule activations), by rule."),
		GuardRejected: reg.CounterVec(mGuardRejected, "rule",
			"Guard evaluations that returned false, by rule."),
		AlertQuerySeconds: reg.Histogram(mAlertQuery,
			"Latency of alert-query executions, in seconds.", nil),
		AlertsCreated: reg.Counter(mAlertsCreated,
			"Alert nodes materialized by the rule engine."),
	}
	kb.mCross = reg.Counter(mShardCrossCommits,
		"Committed two-shard bridge transactions.")
	kb.mAsyncEnq = reg.Counter(mAsyncEnqueued,
		"AfterAsync activations committed onto the pending queue.")
	kb.mXQuery = reg.Counter(mShardQueries,
		"Cross-shard read-only queries executed over a multi-shard view.")
	kb.mXQuerySecs = reg.Histogram(mShardQuerySeconds,
		"Latency of cross-shard read-only queries, in seconds.", nil)
	kb.plans.SetMetrics(
		reg.Counter(mPlanCacheHits,
			"Plan-cache lookups served from the cache."),
		reg.Counter(mPlanCacheMisses,
			"Plan-cache lookups that had to parse the query."),
		reg.Counter(mPlanCacheEvictions,
			"Plans evicted from the cache by capacity pressure."))
	reg.GaugeFunc(mPlanCacheSize,
		"Prepared plans currently held by this knowledge base's plan cache.",
		func() float64 { return float64(kb.plans.Len()) })
	reg.GaugeFunc(mPlansCompiled,
		"Plan variants compiled process-wide (recompiles on statistics drift included).",
		func() float64 { return float64(cypher.PlansCompiled()) })

	commits := reg.CounterVec(mShardCommits, "shard",
		"Committed read-write transactions, by shard.")
	lockWait := reg.HistogramVec(mShardLockWait, "shard",
		"Time writers waited for a shard's write lock, in seconds, by shard.", nil)
	for i := 0; i < kb.store.NumShards(); i++ {
		label := strconv.Itoa(i)
		kb.store.Shard(i).SetMetrics(graph.Metrics{
			TxCommits: commits.With(label),
			TxRollbacks: reg.Counter(mTxRollbacks,
				"Rolled-back read-write transactions (explicit and aborted commits)."),
			TxSeconds: reg.Histogram(mTxSeconds,
				"Read-write transaction latency (write-lock hold time), in seconds.", nil),
			SnapshotsPublished: reg.Counter(mSnapPublished,
				"Committed snapshot versions published (write commits, index changes, imports)."),
			SnapshotReads: reg.Counter(mSnapReads,
				"Read-only transactions served lock-free from a published snapshot."),
			RecordsCloned: reg.Counter(mSnapCloned,
				"Node and relationship records cloned copy-on-write by write transactions."),
			LockWaitSeconds: lockWait.With(label),
		})
	}

	reg.GaugeFunc(mNodes, "Nodes currently in the graph.", func() float64 {
		n := 0
		for i := 0; i < kb.store.NumShards(); i++ {
			n += kb.store.Shard(i).Stats().Nodes
		}
		return float64(n)
	})
	reg.GaugeFunc(mRels, "Relationships currently in the graph.", func() float64 {
		n := 0
		for i := 0; i < kb.store.NumShards(); i++ {
			n += kb.store.Shard(i).Stats().Relationships
		}
		return float64(n)
	})
	reg.GaugeFunc(mAlertNodes, "Alert nodes currently in the graph.", func() float64 {
		n := 0
		for i := 0; i < kb.store.NumShards(); i++ {
			n += kb.store.Shard(i).LabelCount(kb.engine.AlertLabel)
		}
		return float64(n)
	})
	reg.GaugeFunc(mAsyncQueueDepth,
		"PendingAlert entries currently on the async queue.",
		func() float64 { return float64(kb.AsyncDepth()) })

	if kb.wal == nil {
		return
	}
	fsync := reg.HistogramVec(mShardWALFsync, "shard",
		"Latency of per-shard write-ahead-log fsyncs, in seconds, by shard.", nil)
	for i := 0; i < kb.wal.NumShards(); i++ {
		kb.wal.Log(i).SetMetrics(wal.Metrics{
			RecordsAppended: reg.Counter(mWALRecords,
				"Records appended to the write-ahead log."),
			BytesAppended: reg.Counter(mWALBytes,
				"Framed bytes appended to the write-ahead log."),
			FsyncSeconds: fsync.With(strconv.Itoa(i)),
			SegmentsOpened: reg.Counter(mWALSegments,
				"Write-ahead-log segment files opened (first open and rotations)."),
			CheckpointSeconds: reg.Histogram(mWALCheckpoint,
				"End-to-end checkpoint duration, in seconds.", nil),
			GroupCommitTxs: reg.Counter(mWALGroupTxs,
				"Transactions that went through the group-commit durability wait."),
			GroupCommitSyncs: reg.Counter(mWALGroupSyncs,
				"Shared fsyncs issued by group commit (txs/syncs = batch factor)."),
			GroupCommitBatchTxs: reg.Histogram(mWALGroupBatch,
				"Transactions made durable by each shared group-commit fsync.",
				[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		})
	}
	replayed, discarded := 0, int64(0)
	for _, info := range infos {
		if info != nil {
			replayed += info.RecordsReplayed
			discarded += info.DiscardedBytes
		}
	}
	reg.Gauge(mWALReplayed,
		"Records replayed on top of the snapshot during the last recovery.").
		Set(float64(replayed))
	reg.Gauge(mWALDiscarded,
		"Bytes of torn log tail discarded during the last recovery.").
		Set(float64(discarded))
}
