package core

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
)

func TestForkIsolatesData(t *testing.T) {
	kb, _ := newSimKB(t)
	exec(t, kb, "CREATE (:Base {v: 1})")

	fork, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fork sees the parent's data.
	if n := queryIntOn(t, fork, "MATCH (b:Base) RETURN count(b)"); n != 1 {
		t.Fatalf("fork base count = %d", n)
	}
	// Writes diverge in both directions.
	if _, err := fork.Execute("CREATE (:OnlyFork)", nil); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, "CREATE (:OnlyParent)")
	if n := queryIntOn(t, kb, "MATCH (f:OnlyFork) RETURN count(f)"); n != 0 {
		t.Error("fork write leaked into parent")
	}
	if n := queryIntOn(t, fork, "MATCH (p:OnlyParent) RETURN count(p)"); n != 0 {
		t.Error("parent write leaked into fork")
	}
	// Mutating a shared node in the fork must not touch the parent.
	if _, err := fork.Execute("MATCH (b:Base) SET b.v = 99", nil); err != nil {
		t.Fatal(err)
	}
	res, _ := kb.Query("MATCH (b:Base) RETURN b.v", nil)
	if v, _ := res.Value(); !value.SameValue(v, value.Int(1)) {
		t.Error("fork property update leaked into parent")
	}
}

func queryIntOn(t *testing.T, kb *KnowledgeBase, q string) int64 {
	t.Helper()
	res, err := kb.Query(q, nil)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	v, _ := res.Value()
	n, _ := v.AsInt()
	return n
}

func TestForkCopiesRulesIndependently(t *testing.T) {
	kb, _ := newSimKB(t)
	_ = kb.InstallRule(trigger.Rule{
		Name:  "watch",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "X"},
		Alert: "RETURN 1 AS one",
	})
	_ = kb.InstallRule(trigger.Rule{
		Name:  "sleeping",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Y"},
		Alert: "RETURN 1 AS one",
	})
	_ = kb.PauseRule("sleeping")

	fork, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	infos := fork.Rules()
	if len(infos) != 2 {
		t.Fatalf("fork rules = %d", len(infos))
	}
	for _, info := range infos {
		if info.Name == "sleeping" && !info.Paused {
			t.Error("paused state not copied")
		}
	}
	// Rules diverge after the fork.
	if err := fork.DropRule("watch"); err != nil {
		t.Fatal(err)
	}
	if _, err := fork.Execute("CREATE (:X)", nil); err != nil {
		t.Fatal(err)
	}
	forkAlerts, _ := fork.Alerts()
	if len(forkAlerts) != 0 {
		t.Error("dropped rule fired in fork")
	}
	exec(t, kb, "CREATE (:X)")
	parentAlerts, _ := kb.Alerts()
	if len(parentAlerts) != 1 {
		t.Error("parent rule should still fire")
	}
}

func TestForkCopiesIndexesAndValidators(t *testing.T) {
	kb, _ := newSimKB(t)
	if _, err := kb.ApplySchema(`CREATE GRAPH TYPE T LOOSE {
		(rt: Region {name STRING}),
		FOR (x:rt) EXCLUSIVE MANDATORY SINGLETON x.name
	}`); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, "CREATE (:Region {name: 'Lombardy'})")
	fork, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The exclusive key still guards the fork.
	if _, err := fork.Execute("CREATE (:Region {name: 'Lombardy'})", nil); err == nil {
		t.Error("fork lost the exclusive-key validator")
	}
	// And the index answers fast counts in the fork.
	if n := queryIntOn(t, fork, "MATCH (r:Region {name: 'Lombardy'}) RETURN count(r)"); n != 1 {
		t.Errorf("fork indexed count = %d", n)
	}
	if len(fork.Schemas()) != 1 {
		t.Error("schemas not carried over")
	}
}

func TestForkWithOwnClock(t *testing.T) {
	parentClock := periodic.NewManualClock(sim0)
	kb := New(Config{Clock: parentClock})
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	_ = kb.InstallRule(trigger.Rule{
		Name:  "c",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Case"},
		Alert: "RETURN 1 AS one",
	})
	exec(t, kb, "CREATE (:Case)")

	forkClock := periodic.NewManualClock(sim0)
	fork, err := kb.Fork(forkClock)
	if err != nil {
		t.Fatal(err)
	}
	// Advancing only the fork's clock rolls only the fork's summary.
	forkClock.Advance(25 * time.Hour)
	if err := fork.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := fork.Execute("CREATE (:Case)", nil); err != nil {
		t.Fatal(err)
	}
	forkMgr, _ := fork.Summaries()
	_ = fork.Store().View(func(tx *graph.Tx) error {
		if got := len(forkMgr.Chain(tx)); got != 2 {
			t.Errorf("fork chain = %d, want 2", got)
		}
		return nil
	})
	parentMgr, _ := kb.Summaries()
	_ = kb.Store().View(func(tx *graph.Tx) error {
		if got := len(parentMgr.Chain(tx)); got != 1 {
			t.Errorf("parent chain = %d, want 1", got)
		}
		return nil
	})
}

func TestForkDivergentStrategies(t *testing.T) {
	// The §V scenario: one stream, two reaction strategies, two evolutions.
	kb, _ := newSimKB(t)
	exec(t, kb, "CREATE (:Region {name: 'r', hub: 'R'})")

	strict, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = strict.InstallRule(trigger.Rule{
		Name:   "react",
		Event:  trigger.Event{Kind: trigger.CreateNode, Label: "Case"},
		Guard:  "NEW.count > 1",
		Action: "MATCH (r:Region) SET r.restricted = true",
	})
	_ = lenient.InstallRule(trigger.Rule{
		Name:   "react",
		Event:  trigger.Event{Kind: trigger.CreateNode, Label: "Case"},
		Guard:  "NEW.count > 100",
		Action: "MATCH (r:Region) SET r.restricted = true",
	})
	for _, f := range []*KnowledgeBase{strict, lenient} {
		if _, err := f.Execute("CREATE (:Case {count: 10})", nil); err != nil {
			t.Fatal(err)
		}
	}
	restricted := func(f *KnowledgeBase) bool {
		res, _ := f.Query("MATCH (r:Region) RETURN r.restricted = true", nil)
		v, _ := res.Value()
		b, _ := v.AsBool()
		return b
	}
	if !restricted(strict) {
		t.Error("strict fork should restrict")
	}
	if restricted(lenient) {
		t.Error("lenient fork should not restrict")
	}
	if restrictedParent := restricted(kb); restrictedParent {
		t.Error("parent must be untouched")
	}
}

func TestStoreCloneDeep(t *testing.T) {
	s := graph.NewStore()
	var a, b graph.NodeID
	_ = s.Update(func(tx *graph.Tx) error {
		a, _ = tx.CreateNode([]string{"A"}, map[string]value.Value{"v": value.Int(1)})
		b, _ = tx.CreateNode([]string{"B"}, nil)
		_, err := tx.CreateRel(a, b, "R", map[string]value.Value{"w": value.Int(2)})
		return err
	})
	c := s.Clone()
	// Structure matches.
	if c.Stats() != s.Stats() {
		t.Errorf("clone stats %+v != %+v", c.Stats(), s.Stats())
	}
	// New ids continue from the same counter (no collisions across forks
	// that are compared by content, and deterministic within each fork).
	_ = c.Update(func(tx *graph.Tx) error {
		id, _ := tx.CreateNode([]string{"C"}, nil)
		if id <= b {
			t.Errorf("cloned store id counter regressed: %d", id)
		}
		return nil
	})
	// Deleting in the clone leaves the original intact, including adjacency.
	_ = c.Update(func(tx *graph.Tx) error { return tx.DeleteNode(a, true) })
	_ = s.View(func(tx *graph.Tx) error {
		if !tx.NodeExists(a) || tx.Degree(a, graph.Both) != 1 {
			t.Error("original store mutated by clone delete")
		}
		return nil
	})
}
