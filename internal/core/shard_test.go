package core

// Behavior tests for the hub-sharded knowledge base: layout and routing,
// rules firing on per-shard and bridge writes, hub-ownership enforcement on
// every shard, durable round trips, cross-shard-consistent checkpoints, the
// per-shard async pending queue, and replication follower apply.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
)

func twoHubs() []HubShard {
	return []HubShard{
		{Hub: "A", Description: "analysis", Labels: []string{"Sequence", "Lab"}},
		{Hub: "B", Description: "trials", Labels: []string{"Trial"}},
	}
}

func newShardedKB(t *testing.T) *ShardedKB {
	t.Helper()
	kb, err := NewSharded(Config{Clock: periodic.NewManualClock(sim0)}, twoHubs())
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func shardQueryInt(t *testing.T, kb *ShardedKB, hubName, query string) int64 {
	t.Helper()
	res, err := kb.QueryInHub(hubName, query, nil)
	if err != nil {
		t.Fatalf("query %q in %s: %v", query, hubName, err)
	}
	v, ok := res.Value()
	if !ok {
		t.Fatalf("query %q: expected single value, got %d rows", query, len(res.Rows))
	}
	n, _ := v.AsInt()
	return n
}

func TestShardedLayoutAndErrors(t *testing.T) {
	kb := newShardedKB(t)
	if kb.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", kb.NumShards())
	}
	if i, ok := kb.ShardOf("B"); !ok || i != 1 {
		t.Fatalf("ShardOf(B) = %d, %v", i, ok)
	}
	if _, ok := kb.ShardOf("nope"); ok {
		t.Fatal("ShardOf on unknown hub reported ok")
	}
	if got := kb.HubOfShard(0); got != "A" {
		t.Fatalf("HubOfShard(0) = %q", got)
	}
	if got := kb.HubOfShard(9); got != "" {
		t.Fatalf("HubOfShard(9) = %q, want empty", got)
	}
	if _, err := NewSharded(Config{}, nil); err == nil {
		t.Fatal("NewSharded with no hubs succeeded")
	}
	if _, err := NewSharded(Config{}, []HubShard{{Hub: "A"}, {Hub: "A"}}); err == nil {
		t.Fatal("duplicate hub declaration accepted")
	}
	if _, err := kb.UpdateInHub("nope", func(tx *graph.Tx) error { return nil }); !errors.Is(err, ErrUnknownShardHub) {
		t.Fatalf("UpdateInHub(nope) err = %v, want ErrUnknownShardHub", err)
	}
	if _, err := kb.UpdateShard(5, func(tx *graph.Tx) error { return nil }); err == nil {
		t.Fatal("UpdateShard(5) accepted")
	}
	if kb.Durable() {
		t.Fatal("in-memory sharded kb claims durability")
	}
	if err := kb.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint err = %v, want ErrNotDurable", err)
	}
}

func TestShardedRulesFire(t *testing.T) {
	kb := newShardedKB(t)
	if err := kb.InstallRule(trigger.Rule{
		Name:  "watch",
		Hub:   "A",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Sequence"},
		Alert: "RETURN NEW.id AS sid",
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := kb.UpdateInHub("A", func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Sequence"}, map[string]value.Value{"id": value.Str("S1")})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlertNodes != 1 {
		t.Fatalf("report = %+v, want one alert node", rep)
	}
	// The alert materializes in the triggering shard; the other shard's
	// snapshot is untouched.
	if n := shardQueryInt(t, kb, "A", "MATCH (a:Alert) RETURN count(a) AS n"); n != 1 {
		t.Fatalf("alerts in A = %d, want 1", n)
	}
	if n := shardQueryInt(t, kb, "B", "MATCH (a:Alert) RETURN count(a) AS n"); n != 0 {
		t.Fatalf("alerts in B = %d, want 0", n)
	}

	// ExecuteInHub drives the same path through the query layer.
	if _, rep, err := kb.ExecuteInHub("A", "CREATE (:Sequence {id: 'S2'})", nil); err != nil {
		t.Fatal(err)
	} else if rep.AlertNodes != 1 {
		t.Fatalf("ExecuteInHub report = %+v", rep)
	}
	if n := shardQueryInt(t, kb, "A", "MATCH (s:Sequence) RETURN count(s) AS n"); n != 2 {
		t.Fatalf("sequences = %d, want 2", n)
	}
}

func TestShardedBridgeWrite(t *testing.T) {
	kb := newShardedKB(t)
	if err := kb.InstallRule(trigger.Rule{
		Name:  "watchTrial",
		Hub:   "B",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Trial"},
		Alert: "RETURN 1 AS one",
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := kb.UpdateBridge("A", "B", func(bt *graph.BridgeTx) error {
		a, err := bt.CreateNodeIn(0, []string{"Sequence"}, nil)
		if err != nil {
			return err
		}
		b, err := bt.CreateNodeIn(1, []string{"Trial"}, nil)
		if err != nil {
			return err
		}
		_, err = bt.CreateRel(a, b, "TESTED_IN", nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rule fired on the hi-shard side of the bridge commit.
	if rep.AlertNodes != 1 {
		t.Fatalf("bridge report = %+v, want one alert node", rep)
	}
	if err := kb.View(func(v *graph.MultiView) error {
		if got := v.RelCount(); got != 1 {
			t.Errorf("RelCount = %d, want 1", got)
		}
		if got := v.CountByLabel("Sequence"); got != 1 {
			t.Errorf("sequences = %d, want 1", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.UpdateBridge("A", "nope", func(bt *graph.BridgeTx) error { return nil }); !errors.Is(err, ErrUnknownShardHub) {
		t.Fatalf("UpdateBridge(nope) err = %v", err)
	}
}

func TestShardedHubOwnershipEnforced(t *testing.T) {
	kb := newShardedKB(t)
	kb.EnforceHubOwnership()
	// Owned label without the hub property: rejected on every shard.
	for i, label := range []string{"Sequence", "Trial"} {
		if _, err := kb.UpdateShard(i, func(tx *graph.Tx) error {
			_, err := tx.CreateNode([]string{label}, nil)
			return err
		}); !errors.Is(err, hub.ErrMissingHub) {
			t.Fatalf("shard %d unowned create err = %v, want ErrMissingHub", i, err)
		}
	}
	// Declaring the owning hub passes.
	if _, err := kb.UpdateShard(0, func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Sequence"}, hub.HubProp("A"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Enforcement also gates both sides of a bridge transaction.
	if _, err := kb.UpdateBridgeShards(0, 1, func(bt *graph.BridgeTx) error {
		_, err := bt.CreateNodeIn(1, []string{"Trial"}, nil)
		return err
	}); !errors.Is(err, hub.ErrMissingHub) {
		t.Fatalf("bridge unowned create err = %v, want ErrMissingHub", err)
	}
	// Enforcing twice must not double-install validators (one error, and
	// valid writes still pass).
	kb.EnforceHubOwnership()
	if _, err := kb.UpdateShard(1, func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Trial"}, hub.HubProp("B"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func shardedExports(t *testing.T, kb *ShardedKB) []string {
	t.Helper()
	out := make([]string, kb.NumShards())
	for i := range out {
		var b strings.Builder
		if err := kb.ExportShard(i, &b); err != nil {
			t.Fatal(err)
		}
		out[i] = b.String()
	}
	return out
}

// seedShardedDurable populates a durable sharded kb with intra-hub writes on
// both shards and one bridge.
func seedShardedDurable(t *testing.T, kb *ShardedKB) {
	t.Helper()
	for i := 0; i < 2; i++ {
		i := i
		if _, err := kb.UpdateShard(i, func(tx *graph.Tx) error {
			_, err := tx.CreateNode([]string{"Doc"}, map[string]value.Value{"shard": value.Int(int64(i))})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := kb.UpdateBridgeShards(0, 1, func(bt *graph.BridgeTx) error {
		a, err := bt.CreateNodeIn(0, []string{"Sequence"}, nil)
		if err != nil {
			return err
		}
		b, err := bt.CreateNodeIn(1, []string{"Trial"}, nil)
		if err != nil {
			return err
		}
		_, err = bt.CreateRel(a, b, "TESTED_IN", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kb, infos, err := OpenShardedDurable(dir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("recovery infos = %d, want 2", len(infos))
	}
	seedShardedDurable(t, kb)
	want := shardedExports(t, kb)
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}

	kb2, infos2, err := OpenShardedDurable(dir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	got := shardedExports(t, kb2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: recovered export differs", i)
		}
	}
	if infos2[0].RecordsReplayed == 0 || infos2[1].RecordsReplayed == 0 {
		t.Fatalf("infos = %+v, %+v: expected replayed records", infos2[0], infos2[1])
	}
	// The recovered kb keeps allocating in band: a new node in shard 1 must
	// carry shard 1's identifier band.
	if _, err := kb2.UpdateShard(1, func(tx *graph.Tx) error {
		id, err := tx.CreateNode([]string{"Doc"}, nil)
		if err == nil && graph.ShardOfNode(id) != 1 {
			t.Errorf("post-recovery allocation landed in band %d", graph.ShardOfNode(id))
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	kb, _, err := OpenShardedDurable(dir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seedShardedDurable(t, kb)
	if err := kb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Write past the global checkpoint, then compact a single hot shard.
	if _, err := kb.UpdateShard(0, func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Doc"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := kb.CheckpointShard(0); err != nil {
		t.Fatal(err)
	}
	want := shardedExports(t, kb)
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}

	kb2, infos, err := OpenShardedDurable(dir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	got := shardedExports(t, kb2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: export differs after checkpointed recovery", i)
		}
	}
	for i, info := range infos {
		if info.SnapshotSeq == 0 {
			t.Fatalf("shard %d recovered without a snapshot: %+v", i, info)
		}
	}
}

func TestShardedDrainAsync(t *testing.T) {
	kb := newShardedKB(t)
	if err := kb.InstallRule(trigger.Rule{
		Name:  "echo",
		Hub:   "A",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Reading"},
		Alert: "RETURN NEW.v AS v",
		Phase: trigger.AfterAsync,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := kb.UpdateShard(0, func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Reading"}, map[string]value.Value{"v": value.Int(7)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AsyncEnqueued != 1 || rep.AlertNodes != 0 {
		t.Fatalf("report = %+v, want one staged activation and no sync alert", rep)
	}
	if kb.AsyncDepth() != 1 {
		t.Fatalf("AsyncDepth = %d, want 1", kb.AsyncDepth())
	}
	done, err := kb.DrainAsync()
	if err != nil || done != 1 {
		t.Fatalf("DrainAsync = (%d, %v), want (1, nil)", done, err)
	}
	if kb.AsyncDepth() != 0 {
		t.Fatalf("AsyncDepth after drain = %d, want 0", kb.AsyncDepth())
	}
	if n := shardQueryInt(t, kb, "A", "MATCH (a:Alert) RETURN count(a) AS n"); n != 1 {
		t.Fatalf("alerts = %d, want 1", n)
	}
	// Draining again is a no-op.
	if done, err := kb.DrainAsync(); err != nil || done != 0 {
		t.Fatalf("second DrainAsync = (%d, %v)", done, err)
	}
}

// TestShardedPendingSurvivesRecovery stages an AfterAsync activation, crashes
// before the drain, and checks the recovered queue drains to the same alert.
func TestShardedPendingSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	installEcho := func(kb *ShardedKB) {
		t.Helper()
		if err := kb.InstallRule(trigger.Rule{
			Name:  "echo",
			Hub:   "B",
			Event: trigger.Event{Kind: trigger.CreateNode, Label: "Reading"},
			Alert: "RETURN NEW.v AS v",
			Phase: trigger.AfterAsync,
		}); err != nil {
			t.Fatal(err)
		}
	}
	kb, _, err := OpenShardedDurable(dir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	installEcho(kb)
	if _, err := kb.UpdateShard(1, func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Reading"}, map[string]value.Value{"v": value.Int(9)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := kb.Close(); err != nil { // crash before draining
		t.Fatal(err)
	}

	kb2, _, err := OpenShardedDurable(dir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	installEcho(kb2)
	if kb2.AsyncDepth() != 1 {
		t.Fatalf("recovered AsyncDepth = %d, want 1", kb2.AsyncDepth())
	}
	if done, err := kb2.DrainAsync(); err != nil || done != 1 {
		t.Fatalf("DrainAsync after recovery = (%d, %v), want (1, nil)", done, err)
	}
	if n := shardQueryInt(t, kb2, "B", "MATCH (a:Alert) RETURN count(a) AS n"); n != 1 {
		t.Fatalf("alerts after recovered drain = %d, want 1", n)
	}
}

func TestShardedFollowerApply(t *testing.T) {
	ldir := t.TempDir()
	leader, _, err := OpenShardedDurable(ldir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	seedShardedDurable(t, leader)
	want := shardedExports(t, leader)

	fdir := t.TempDir()
	fol, _, err := OpenShardedDurableFollower(fdir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	if !fol.Follower() {
		t.Fatal("follower mode not reported")
	}
	if _, err := fol.UpdateShard(0, func(tx *graph.Tx) error { return nil }); !errors.Is(err, ErrFollower) {
		t.Fatalf("follower UpdateShard err = %v, want ErrFollower", err)
	}
	if _, err := fol.DrainAsync(); !errors.Is(err, ErrFollower) {
		t.Fatalf("follower DrainAsync err = %v, want ErrFollower", err)
	}
	if err := leader.ApplyReplicatedShard(0, nil); err == nil {
		t.Fatal("leader accepted ApplyReplicatedShard")
	}

	// Ship each shard's stream independently, as the replica layer would.
	for i := 0; i < 2; i++ {
		cur := leader.WAL().Log(i).Cursor(fol.ShardAppliedSeq(i))
		var recs []*wal.Record
		for {
			batch, err := cur.Next(0)
			if err != nil {
				t.Fatalf("shard %d cursor: %v", i, err)
			}
			if len(batch) == 0 {
				break
			}
			recs = append(recs, batch...)
		}
		cur.Close()
		if len(recs) == 0 {
			t.Fatalf("shard %d: no records to ship", i)
		}
		if err := fol.ApplyReplicatedShard(i, recs); err != nil {
			t.Fatalf("shard %d apply: %v", i, err)
		}
		if got := fol.ShardAppliedSeq(i); got != recs[len(recs)-1].Seq {
			t.Fatalf("shard %d applied seq = %d, want %d", i, got, recs[len(recs)-1].Seq)
		}
		// Replays of the same batch are rejected as non-contiguous.
		if err := fol.ApplyReplicatedShard(i, recs); err == nil {
			t.Fatalf("shard %d: duplicate batch accepted", i)
		}
	}
	got := shardedExports(t, fol)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: follower export differs from leader", i)
		}
	}

	// The follower's mirrored logs recover the same state stand-alone.
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
	fol2, _, err := OpenShardedDurable(fdir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer fol2.Close()
	got2 := shardedExports(t, fol2)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("shard %d: recovered follower export differs from leader", i)
		}
	}
}

// TestShardedInMemoryFollower covers the replicaSeqs cursor path (no WAL).
func TestShardedInMemoryFollower(t *testing.T) {
	ldir := t.TempDir()
	leader, _, err := OpenShardedDurable(ldir, Config{}, twoHubs(), wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	seedShardedDurable(t, leader)

	fol := newShardedKB(t)
	fol.SetFollowerMode(true)
	for i := 0; i < 2; i++ {
		cur := leader.WAL().Log(i).Cursor(0)
		recs, err := cur.Next(0)
		cur.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := fol.ApplyReplicatedShard(i, recs); err != nil {
			t.Fatalf("shard %d apply: %v", i, err)
		}
		if fol.ShardAppliedSeq(i) != recs[len(recs)-1].Seq {
			t.Fatalf("shard %d applied seq = %d", i, fol.ShardAppliedSeq(i))
		}
	}
	want := shardedExports(t, leader)
	got := shardedExports(t, fol)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: in-memory follower export differs", i)
		}
	}
}
