package core

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trigger"
	"repro/internal/wal"
)

// counterValue returns the value of the named counter/gauge sample (label ==
// "" for unlabelled families) or NaN when absent.
func counterValue(reg *metrics.Registry, name, label string) float64 {
	for _, fam := range reg.Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if s.LabelValue == label {
				return s.Value
			}
		}
	}
	return math.NaN()
}

// histCount returns the observation count of the named histogram sample or
// -1 when absent.
func histCount(reg *metrics.Registry, name, label string) int64 {
	for _, fam := range reg.Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if s.LabelValue == label && s.Hist != nil {
				return s.Hist.Count
			}
		}
	}
	return -1
}

func TestMetricsTrackExecution(t *testing.T) {
	kb, _ := newSimKB(t)
	if err := kb.InstallRule(trigger.Rule{
		Name:  "watch",
		Hub:   "E",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Mutation"},
		Guard: "NEW.id <> 'skip'",
		Alert: "RETURN NEW.id AS mid",
	}); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, "CREATE (:Mutation {id: 'M1'})")
	exec(t, kb, "CREATE (:Mutation {id: 'skip'})")
	if _, err := kb.Execute("CREATE (", nil); err == nil {
		t.Fatal("expected parse error")
	}

	reg := kb.Metrics()
	if got := counterValue(reg, mTxCommits, ""); got != 2 {
		t.Errorf("tx commits = %v, want 2", got)
	}
	if got := histCount(reg, mTxSeconds, ""); got != 2 {
		t.Errorf("tx latency observations = %d, want 2", got)
	}
	if got := counterValue(reg, mRuleFired, "watch"); got != 1 {
		t.Errorf("rule fired = %v, want 1", got)
	}
	if got := counterValue(reg, mGuardRejected, "watch"); got != 1 {
		t.Errorf("guard rejected = %v, want 1", got)
	}
	if got := counterValue(reg, mAlertsCreated, ""); got != 1 {
		t.Errorf("alerts created = %v, want 1", got)
	}
	if got := histCount(reg, mAlertQuery, ""); got != 1 {
		t.Errorf("alert-query observations = %d, want 1", got)
	}
	// Cardinality gauges read the live store: 2 mutations + 1 alert node.
	if got := counterValue(reg, mNodes, ""); got != 3 {
		t.Errorf("node gauge = %v, want 3", got)
	}
	if got := counterValue(reg, mAlertNodes, ""); got != 1 {
		t.Errorf("alert-node gauge = %v, want 1", got)
	}
}

func TestMetricsDurable(t *testing.T) {
	kb, _, err := OpenDurable(t.TempDir(), Config{}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	exec(t, kb, "CREATE (:City {name: 'Milan'})")

	reg := kb.Metrics()
	if got := counterValue(reg, mWALRecords, ""); got != 1 {
		t.Errorf("wal records = %v, want 1", got)
	}
	if got := counterValue(reg, mWALBytes, ""); got <= 0 {
		t.Errorf("wal bytes = %v, want > 0", got)
	}
	if got := counterValue(reg, mWALSegments, ""); got != 1 {
		t.Errorf("wal segments = %v, want 1", got)
	}
	if got := histCount(reg, mWALFsync, wal.FsyncAlways.String()); got < 1 {
		t.Errorf("fsync observations = %d, want >= 1", got)
	}
	if got := counterValue(reg, mWALLastSeq, ""); got != 1 {
		t.Errorf("last seq = %v, want 1", got)
	}
	if err := kb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := histCount(reg, mWALCheckpoint, ""); got != 1 {
		t.Errorf("checkpoint observations = %d, want 1", got)
	}
	// The durable tx path is instrumented too (store swap re-wires it).
	if got := counterValue(reg, mTxCommits, ""); got != 1 {
		t.Errorf("tx commits = %v, want 1", got)
	}
}

func TestMetricsSharedRegistryAggregates(t *testing.T) {
	reg := metrics.NewRegistry()
	kb1 := New(Config{Metrics: reg})
	kb2 := New(Config{Metrics: reg})
	if _, err := kb1.Execute("CREATE (:A)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := kb2.Execute("CREATE (:B)", nil); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(reg, mTxCommits, ""); got != 2 {
		t.Errorf("shared tx commits = %v, want 2", got)
	}
}

func TestMetricsForkIsolated(t *testing.T) {
	kb, _ := newSimKB(t)
	exec(t, kb, "CREATE (:A {x: 1})")
	fork, err := kb.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fork.Metrics() == kb.Metrics() {
		t.Fatal("fork should get a fresh registry")
	}
	if _, err := fork.Execute("CREATE (:B)", nil); err != nil {
		t.Fatal(err)
	}
	// What-if activity lands on the fork's registry, not the parent's.
	if got := counterValue(kb.Metrics(), mTxCommits, ""); got != 1 {
		t.Errorf("parent tx commits = %v, want 1", got)
	}
	if got := counterValue(fork.Metrics(), mTxCommits, ""); got != 1 {
		t.Errorf("fork tx commits = %v, want 1", got)
	}
}

func TestMetricsSummaryRollover(t *testing.T) {
	kb, clock := newSimKB(t)
	if err := kb.EnableSummaries(24 * 3600e9); err != nil {
		t.Fatal(err)
	}
	// The first Tick creates the initial Summary node dated "now"; only the
	// second period boundary closes a period and counts as a rollover.
	exec(t, kb, "CREATE (:Seed)")
	for i := 0; i < 2; i++ {
		clock.Advance(25 * 3600e9)
		if err := kb.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	reg := kb.Metrics()
	if got := counterValue(reg, mRollovers, ""); got < 1 {
		t.Errorf("rollovers = %v, want >= 1", got)
	}
	if got := histCount(reg, mRolloverSeconds, ""); got < 1 {
		t.Errorf("rollover observations = %d, want >= 1", got)
	}
	if got := counterValue(reg, mChainLength, ""); got < 1 {
		t.Errorf("chain length = %v, want >= 1", got)
	}
}
