package core_test

// Crash-recovery property tests at the knowledge-base level: a
// workload-generated KB with reactive rules is "killed" after every
// committed transaction (by copying the log directory, which with
// FsyncAlways is exactly what a crash would leave), reopened, and the
// recovered store's deterministic Export must be byte-identical to the
// pre-crash committed state — including the Alert nodes the rules produced,
// which recovery must restore from the log rather than re-derive.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func saveGraph(t *testing.T, kb *core.KnowledgeBase) string {
	t.Helper()
	var b strings.Builder
	if err := kb.SaveGraph(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

var simStart = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)

func openDurableKB(t *testing.T, dir string) (*core.KnowledgeBase, *wal.RecoveryInfo) {
	t.Helper()
	kb, info, err := core.OpenDurable(dir,
		core.Config{Clock: periodic.NewManualClock(simStart)},
		wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { _ = kb.Close() })
	return kb, info
}

func installNaiveRule(t *testing.T, kb *core.KnowledgeBase) {
	t.Helper()
	name, guard, alert := workload.NaiveRuleSpec()
	err := kb.InstallRule(trigger.Rule{
		Name:  name,
		Hub:   "R",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
		Guard: guard,
		Alert: alert,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	dir := t.TempDir()
	kb, _ := openDurableKB(t, dir)
	sc, err := workload.Build(kb, workload.Config{Seed: 7, Regions: 3, HospitalsPerRegion: 1, LabsPerRegion: 1})
	if err != nil {
		t.Fatal(err)
	}
	installNaiveRule(t, kb)

	// Day 0 seeds the counters, day 1 grows admissions by far more than the
	// rule's 10% threshold, so the later transactions produce Alert nodes.
	type image struct {
		dir    string
		export string
	}
	var images []image
	snap := func() {
		images = append(images, image{copyDir(t, dir), saveGraph(t, kb)})
	}
	admit := func(day, count int) {
		adms := sc.Admissions(count, day)
		for i := 0; i < len(adms); i += 2 {
			end := i + 2
			if end > len(adms) {
				end = len(adms)
			}
			err := sc.Admit(kb, adms[i:end], workload.AdmitOptions{
				Batch:        2,
				LinkHospital: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			snap()
		}
	}
	snap() // after Build, before any admissions
	admit(0, 6)
	// A mid-workload checkpoint: later crash images recover from
	// snapshot-plus-log instead of pure log replay.
	if err := kb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap()
	admit(1, 12)

	final := images[len(images)-1]
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("workload produced no alerts; the recovery test would not cover them")
	}

	for i, img := range images {
		rkb, _ := openDurableKB(t, img.dir)
		if got := saveGraph(t, rkb); got != img.export {
			t.Fatalf("image %d: recovered export differs from pre-crash committed state", i)
		}
	}

	// Reopening the final image must not re-fire rules during replay: the
	// pre-crash alerts are in the log, and installing the rule again after
	// recovery must not add any more until new transactions commit.
	rkb, info := openDurableKB(t, final.dir)
	if info.RecordsReplayed == 0 {
		t.Fatalf("final image replayed no records: %+v", info)
	}
	installNaiveRule(t, rkb)
	ralerts, err := rkb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(ralerts) != len(alerts) {
		t.Fatalf("alerts after recovery = %d, want %d (replay must not re-trigger rules)",
			len(ralerts), len(alerts))
	}
	for i := range alerts {
		if !ralerts[i].DateTime.Equal(alerts[i].DateTime) || ralerts[i].Rule != alerts[i].Rule {
			t.Fatalf("alert %d changed across recovery: %+v vs %+v", i, ralerts[i], alerts[i])
		}
	}
}

func TestRollbackReachesNeitherWALNorTriggerEngine(t *testing.T) {
	dir := t.TempDir()
	kb, _ := openDurableKB(t, dir)
	err := kb.InstallRule(trigger.Rule{
		Name:  "ghost-watch",
		Hub:   "G",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Ghost"},
		Alert: `MATCH (g:Ghost) WITH count(g) AS n WHERE n > 0 RETURN n`,
	})
	if err != nil {
		t.Fatal(err)
	}

	seqBefore := kb.WAL().LastSeq()
	wantErr := os.ErrInvalid
	_, err = kb.WriteTx(func(tx *graph.Tx) error {
		if _, err := tx.CreateNode([]string{"Ghost"}, map[string]value.Value{"x": value.Int(1)}); err != nil {
			return err
		}
		return wantErr // forces rollback after the write
	})
	if err == nil {
		t.Fatal("WriteTx should have failed")
	}

	if got := kb.WAL().LastSeq(); got != seqBefore {
		t.Fatalf("rolled-back transaction reached the WAL: LastSeq %d -> %d", seqBefore, got)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("rolled-back transaction reached the trigger engine: %d alerts", len(alerts))
	}

	// A subsequent transaction commits, triggers, and persists normally.
	if _, err := kb.WriteTx(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Ghost"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := kb.WAL().LastSeq(); got != seqBefore+1 {
		t.Fatalf("LastSeq after commit = %d, want %d", got, seqBefore+1)
	}
	alerts, err = kb.Alerts()
	if err != nil || len(alerts) != 1 {
		t.Fatalf("alerts after commit = %d (%v), want 1", len(alerts), err)
	}
	want := saveGraph(t, kb)
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}
	rkb, _ := openDurableKB(t, dir)
	if got := saveGraph(t, rkb); got != want {
		t.Fatal("recovered state differs: rollback leaked into the log")
	}
}

func TestCheckpointOnInMemoryKB(t *testing.T) {
	kb := core.New(core.Config{})
	if err := kb.Checkpoint(); err != core.ErrNotDurable {
		t.Fatalf("Checkpoint on in-memory KB = %v, want ErrNotDurable", err)
	}
	if kb.Durable() {
		t.Fatal("in-memory KB claims to be durable")
	}
	if err := kb.Close(); err != nil {
		t.Fatalf("Close on in-memory KB = %v, want nil", err)
	}
}
