package core_test

// Crash-recovery tests for the asynchronous alert pipeline: the process is
// "killed" (by copying the FsyncAlways log directory — exactly what a crash
// leaves) with pending queue entries at every stage of their life cycle —
// enqueued, mid-evaluation, alert-created-but-uncommitted, and fully
// processed — and after reopening, every staged activation must materialize
// exactly one Alert node: none lost, none duplicated.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/wal"
)

const asyncFaultRule = "aecho"

// openAsyncKB opens a durable knowledge base and re-installs the AfterAsync
// rule (rules are configuration, re-installed on every open). The pipeline
// is NOT started; tests start it in the mode each stage needs.
func openAsyncKB(t *testing.T, dir string) *core.KnowledgeBase {
	t.Helper()
	kb, _, err := core.OpenDurable(dir,
		core.Config{Clock: periodic.NewManualClock(simStart)},
		wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { _ = kb.Close() })
	err = kb.InstallRule(trigger.Rule{
		Name:  asyncFaultRule,
		Hub:   "H",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Reading"},
		Alert: "RETURN NEW.v AS v",
		Phase: trigger.AfterAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

// stageEnqueued writes n Reading nodes with the pipeline in enqueue-only
// mode, freezing the durable queue at depth n.
func stageEnqueued(t *testing.T, kb *core.KnowledgeBase, n int) {
	t.Helper()
	if err := kb.StartAsync(core.AsyncOptions{Workers: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := kb.Execute(fmt.Sprintf("CREATE (:Reading {v: %d})", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := kb.AsyncDepth(); d != n {
		t.Fatalf("queue depth = %d, want %d", d, n)
	}
}

// assertExactlyOnce reopens dir, drains the queue and asserts each of the n
// staged activations materialized exactly one alert.
func assertExactlyOnce(t *testing.T, dir string, n int) {
	t.Helper()
	kb := openAsyncKB(t, dir)
	if err := kb.StartAsync(core.AsyncOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := kb.WaitAsyncIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d := kb.AsyncDepth(); d != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", d)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int{}
	for _, a := range alerts {
		if a.Rule != asyncFaultRule {
			t.Fatalf("unexpected alert from rule %q", a.Rule)
		}
		v, _ := a.Props["v"].AsInt()
		got[v]++
	}
	if len(alerts) != n {
		t.Fatalf("%d alerts after recovery, want %d: %v", len(alerts), n, got)
	}
	for i := 0; i < n; i++ {
		if got[int64(i)] != 1 {
			t.Fatalf("activation v=%d materialized %d times, want exactly 1", i, got[int64(i)])
		}
	}
}

// readPending returns the queued entries (id, rule, decoded binding) of kb.
func readPending(t *testing.T, kb *core.KnowledgeBase) []struct {
	id      graph.NodeID
	rule    string
	binding trigger.Binding
} {
	t.Helper()
	var out []struct {
		id      graph.NodeID
		rule    string
		binding trigger.Binding
	}
	err := kb.Store().View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(core.PendingAlertLabel) {
			node, ok := tx.Node(id)
			if !ok {
				continue
			}
			rule, _ := node.Props["rule"].AsString()
			raw, _ := node.Props["binding"].AsString()
			bind, err := trigger.DecodeBinding(raw)
			if err != nil {
				return err
			}
			out = append(out, struct {
				id      graph.NodeID
				rule    string
				binding trigger.Binding
			}{id, rule, bind})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAsyncCrashWhileEnqueued(t *testing.T) {
	dir := t.TempDir()
	kb := openAsyncKB(t, dir)
	stageEnqueued(t, kb, 3)
	// Crash with all three entries enqueued, none evaluated.
	assertExactlyOnce(t, copyDir(t, dir), 3)
}

func TestAsyncCrashMidEvaluation(t *testing.T) {
	dir := t.TempDir()
	kb := openAsyncKB(t, dir)
	stageEnqueued(t, kb, 3)
	crash := copyDir(t, dir)

	// Reopen and crash again mid-evaluation: a worker has run the alert
	// query against its pinned snapshot but not yet committed the follow-up.
	// Evaluation is read-only, so the durable image must be unchanged — the
	// entry must still be on the queue, neither lost nor half-applied.
	kb2 := openAsyncKB(t, crash)
	pend := readPending(t, kb2)
	if len(pend) != 3 {
		t.Fatalf("%d pending after reopen, want 3", len(pend))
	}
	ro := kb2.Store().Begin(graph.ReadOnly)
	_, rows, err := kb2.Engine().EvaluateAsync(ro, pend[0].rule, pend[0].binding)
	ro.Rollback()
	if err != nil || len(rows) != 1 {
		t.Fatalf("mid-flight evaluation: rows=%d err=%v", len(rows), err)
	}
	assertExactlyOnce(t, copyDir(t, crash), 3)
}

func TestAsyncCrashAlertCreatedUncommitted(t *testing.T) {
	dir := t.TempDir()
	kb := openAsyncKB(t, dir)
	stageEnqueued(t, kb, 3)
	crash := copyDir(t, dir)

	// Reopen and replay a worker up to the brink of its commit: pending
	// entry deleted and alert node created inside the follow-up transaction
	// — then crash (rollback). Nothing may reach the log, so recovery must
	// still see the entry queued and deliver it exactly once.
	kb2 := openAsyncKB(t, crash)
	pend := readPending(t, kb2)
	ro := kb2.Store().Begin(graph.ReadOnly)
	cols, rows, err := kb2.Engine().EvaluateAsync(ro, pend[0].rule, pend[0].binding)
	ro.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	wtx := kb2.Store().Begin(graph.ReadWrite)
	if err := wtx.DeleteNode(pend[0].id, true); err != nil {
		t.Fatal(err)
	}
	if _, err := kb2.Engine().MaterializeAsync(wtx, pend[0].rule, pend[0].binding, cols, rows); err != nil {
		t.Fatal(err)
	}
	wtx.Rollback() // the crash: follow-up transaction never commits

	assertExactlyOnce(t, copyDir(t, crash), 3)
}

func TestAsyncCrashAfterProcessingNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	kb := openAsyncKB(t, dir)
	if err := kb.StartAsync(core.AsyncOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := kb.Execute(fmt.Sprintf("CREATE (:Reading {v: %d})", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := kb.WaitAsyncIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Crash after the follow-up transactions committed: recovery must not
	// re-evaluate anything (the queue is empty in the log).
	assertExactlyOnce(t, copyDir(t, dir), 3)
}
