package core

// Planner behavior on sharded stores: the plan cache is shared by every
// shard (one parse per query text), but compiled variants carry
// statistics-driven anchor choices, so they must be cached per executing
// store. These tests pin that contract and race cross-shard reads against
// per-shard and bridge writers.

import (
	"fmt"
	"regexp"
	"sync"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/value"
)

// skewedSharded builds a two-hub knowledge base with opposite label skews:
// shard 0 holds 50 :X and 1 :Y, shard 1 holds 1 :X and 50 :Y, each with one
// X->Y relationship. A cost-based planner must anchor MATCH (x:X)-->(y:Y)
// at :Y on shard 0 and at :X on shard 1.
func skewedSharded(t *testing.T) *ShardedKB {
	t.Helper()
	kb, err := NewSharded(Config{}, []HubShard{
		{Hub: "a", Description: "x-heavy"},
		{Hub: "b", Description: "y-heavy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fill := func(shard, nx, ny int) {
		if _, err := kb.UpdateShard(shard, func(tx *graph.Tx) error {
			var x0, y0 graph.NodeID
			for i := 0; i < nx; i++ {
				id, err := tx.CreateNode([]string{"X"}, nil)
				if err != nil {
					return err
				}
				if i == 0 {
					x0 = id
				}
			}
			for i := 0; i < ny; i++ {
				id, err := tx.CreateNode([]string{"Y"}, nil)
				if err != nil {
					return err
				}
				if i == 0 {
					y0 = id
				}
			}
			_, err := tx.CreateRel(x0, y0, "R", nil)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	fill(0, 50, 1)
	fill(1, 1, 50)
	return kb
}

var anchorLine = regexp.MustCompile(`anchor: node \d+ via label scan :(\w+)`)

// TestShardedPlanVariantsPerStore checks that one shared plan yields one
// compiled variant per executing store — per-hub executions on skewed
// shards must each be costed against their own statistics, and the
// cross-shard view is a fourth store with aggregated statistics, not a
// reuse of whichever shard prepared the plan first.
func TestShardedPlanVariantsPerStore(t *testing.T) {
	kb := skewedSharded(t)
	const q = "MATCH (x:X)-[:R]->(y:Y) RETURN count(*)"

	// The anchor choice really is statistics-dependent: explain against
	// each shard's own view picks the rare side.
	stmt, err := cypher.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	anchors := make([]string, 2)
	for i := 0; i < 2; i++ {
		if err := kb.ViewShard(i, func(tx *graph.Tx) error {
			m := anchorLine.FindStringSubmatch(cypher.Explain(tx, stmt))
			if m == nil {
				t.Fatalf("shard %d explain has no label-scan anchor:\n%s", i, cypher.Explain(tx, stmt))
			}
			anchors[i] = m[1]
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if anchors[0] != "Y" || anchors[1] != "X" {
		t.Fatalf("anchors = %v, want [Y X] (each shard anchors its rare label)", anchors)
	}

	run := func(exec func() (*cypher.Result, error), want int64, where string) {
		t.Helper()
		res, err := exec()
		if err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		if got := res.Rows[0][0].String(); got != fmt.Sprint(want) {
			t.Fatalf("%s: count = %s, want %d", where, got, want)
		}
	}
	inHub := func(hub string) func() (*cypher.Result, error) {
		return func() (*cypher.Result, error) { return kb.QueryInHub(hub, q, nil) }
	}
	cross := func() (*cypher.Result, error) { return kb.Query(q, nil) }

	before := cypher.PlansCompiled()
	run(inHub("a"), 1, "hub a, first")
	run(inHub("b"), 1, "hub b, first")
	run(cross, 2, "cross-shard, first")
	if d := cypher.PlansCompiled() - before; d != 3 {
		t.Fatalf("first executions compiled %d variants, want 3 (one per store)", d)
	}
	// Re-executions must hit each store's cached variant, not recompile —
	// and not cross-contaminate: the counts stay right on every store.
	run(inHub("a"), 1, "hub a, repeat")
	run(inHub("b"), 1, "hub b, repeat")
	run(cross, 2, "cross-shard, repeat")
	if d := cypher.PlansCompiled() - before; d != 3 {
		t.Fatalf("repeat executions recompiled: %d variants total, want 3", d)
	}
}

// TestShardedCrossQueryConcurrentWithWriters races cross-shard MATCHes that
// traverse knowledge bridges against per-shard writers and a bridge
// writer. Every read must see a consistent multi-shard snapshot: each
// bridge bound exactly once, never a torn half. Run under -race by the CI
// concurrency sweeps.
func TestShardedCrossQueryConcurrentWithWriters(t *testing.T) {
	kb := paritySharded(t)
	const readers = 4
	const rounds = 50

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // per-shard writer churning an unrelated shard
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := kb.UpdateShard(2, func(tx *graph.Tx) error {
				_, err := tx.CreateNode([]string{"Widget"}, map[string]value.Value{"n": value.Int(int64(100 + i))})
				return err
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // bridge writer adding person->city bridges
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := kb.UpdateBridgeShards(0, 1, func(bt *graph.BridgeTx) error {
				p, err := bt.CreateNodeIn(0, []string{"Visitor"}, nil)
				if err != nil {
					return err
				}
				c, err := bt.CreateNodeIn(1, []string{"Stop"}, nil)
				if err != nil {
					return err
				}
				_, err = bt.CreateRel(p, c, "VISITED", nil)
				return err
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < rounds; i++ {
				// The fixture's four LIVES_IN bridges are immutable during
				// the run; each must be bound exactly once.
				res, err := kb.Query(
					"MATCH (p:Person)-[:LIVES_IN]->(c:City) RETURN p.name, c.code", nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) != 4 {
					t.Errorf("cross-shard bridge MATCH returned %d rows, want 4", len(res.Rows))
					return
				}
				// Visitor/Stop bridges churn, but a consistent cut never
				// shows a torn half: every VISITED edge reaches a Stop.
				res, err = kb.Query(
					"MATCH (v:Visitor)-[e:VISITED]->(s) RETURN count(e), count(s)", nil)
				if err != nil {
					t.Error(err)
					return
				}
				if fmt.Sprint(res.Rows[0][0]) != fmt.Sprint(res.Rows[0][1]) {
					t.Errorf("torn bridge: %s edges but %s endpoints",
						res.Rows[0][0].String(), res.Rows[0][1].String())
					return
				}
			}
		}()
	}
	rwg.Wait()
	close(done)
	wg.Wait()
}
