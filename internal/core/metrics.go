package core

import (
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/wal"
)

// Metric names exposed by a knowledge base. Every name, with its meaning
// and how to read it, is documented in OBSERVABILITY.md; the CI docs job
// checks the two stay in sync (scripts/check_metrics_docs.sh).
const (
	mTxCommits   = "rkm_graph_tx_commits_total"
	mTxRollbacks = "rkm_graph_tx_rollbacks_total"
	mTxSeconds   = "rkm_graph_tx_seconds"
	mNodes       = "rkm_graph_nodes"
	mRels        = "rkm_graph_relationships"
	mAlertNodes  = "rkm_graph_alert_nodes"

	mSnapPublished = "rkm_graph_snapshot_published_total"
	mSnapReads     = "rkm_graph_snapshot_reads_total"
	mSnapCloned    = "rkm_graph_snapshot_cow_records_total"

	mRuleFired     = "rkm_trigger_rule_fired_total"
	mGuardRejected = "rkm_trigger_guard_rejected_total"
	mAlertQuery    = "rkm_trigger_alert_query_seconds"
	mAlertsCreated = "rkm_trigger_alerts_created_total"

	mTaskRuns    = "rkm_scheduler_task_runs_total"
	mTaskSeconds = "rkm_scheduler_task_seconds"
	mTaskErrors  = "rkm_scheduler_task_errors_total"

	mRollovers       = "rkm_summary_rollovers_total"
	mRolloverSeconds = "rkm_summary_rollover_seconds"
	mChainLength     = "rkm_summary_chain_length"

	mWALRecords    = "rkm_wal_records_appended_total"
	mWALBytes      = "rkm_wal_bytes_appended_total"
	mWALFsync      = "rkm_wal_fsync_seconds"
	mWALSegments   = "rkm_wal_segments_opened_total"
	mWALCheckpoint = "rkm_wal_checkpoint_seconds"
	mWALLastSeq    = "rkm_wal_last_seq"
	mWALReplayed   = "rkm_wal_recovery_records_replayed"
	mWALDiscarded  = "rkm_wal_recovery_discarded_bytes"

	mWALGroupTxs   = "rkm_wal_group_commit_txs_total"
	mWALGroupSyncs = "rkm_wal_group_commit_syncs_total"
	mWALGroupBatch = "rkm_wal_group_commit_batch_txs"

	mShardCommits      = "rkm_shard_commits_total"
	mShardCrossCommits = "rkm_shard_cross_commits_total"
	mShardLockWait     = "rkm_shard_lock_wait_seconds"
	mShardWALFsync     = "rkm_shard_wal_fsync_seconds"
	mShardQueries      = "rkm_shard_query_total"
	mShardQuerySeconds = "rkm_shard_query_seconds"

	mPlanCacheHits      = "rkm_cypher_plan_cache_hits_total"
	mPlanCacheMisses    = "rkm_cypher_plan_cache_misses_total"
	mPlanCacheEvictions = "rkm_cypher_plan_cache_evictions_total"
	mPlanCacheSize      = "rkm_cypher_plan_cache_size"
	mPlansCompiled      = "rkm_cypher_plans_compiled_total"
	mPrepareSeconds     = "rkm_cypher_prepare_seconds"

	mAsyncEnqueued     = "rkm_trigger_async_enqueued_total"
	mAsyncShed         = "rkm_trigger_async_shed_total"
	mAsyncEvaluated    = "rkm_trigger_async_evaluated_total"
	mAsyncFailures     = "rkm_trigger_async_failures_total"
	mAsyncOrphaned     = "rkm_trigger_async_orphaned_total"
	mAsyncRecovered    = "rkm_trigger_async_recovered_total"
	mAsyncQueueDepth   = "rkm_trigger_async_queue_depth"
	mAsyncEvalSeconds  = "rkm_trigger_async_eval_seconds"
	mAsyncBlockSeconds = "rkm_trigger_async_block_seconds"
)

// asyncMetrics holds the asynchronous alert pipeline's instruments,
// resolved once at construction so StartAsync/StopAsync cycles accumulate
// into the same counters.
type asyncMetrics struct {
	enqueued  *metrics.Counter
	shed      *metrics.Counter
	evaluated *metrics.Counter
	failed    *metrics.Counter
	orphaned  *metrics.Counter
	recovered *metrics.Counter

	evalSeconds  *metrics.Histogram
	blockSeconds *metrics.Histogram
}

// Metrics returns the knowledge base's metrics registry. Expose it over
// HTTP with Registry.WritePrometheus, or inspect it programmatically with
// Registry.Gather.
func (kb *KnowledgeBase) Metrics() *metrics.Registry { return kb.metrics }

// wireMetrics registers the knowledge base's instruments on reg and
// installs them into the store, the rule engine and the scheduler. It runs
// once per KnowledgeBase (New and Fork), before any rule is installed, so
// per-rule counters resolve at install time. Registration is idempotent, so
// a shared registry (Config.Metrics) across knowledge bases is safe —
// instruments are then also shared and counts aggregate.
func (kb *KnowledgeBase) wireMetrics(reg *metrics.Registry) {
	kb.metrics = reg
	kb.store.SetMetrics(kb.storeMetrics())
	kb.engine.Metrics = trigger.EngineMetrics{
		RuleFired: reg.CounterVec(mRuleFired, "rule",
			"Guard passes (rule activations), by rule."),
		GuardRejected: reg.CounterVec(mGuardRejected, "rule",
			"Guard evaluations that returned false, by rule."),
		AlertQuerySeconds: reg.Histogram(mAlertQuery,
			"Latency of alert-query executions, in seconds.", nil),
		AlertsCreated: reg.Counter(mAlertsCreated,
			"Alert nodes materialized by the rule engine."),
	}
	kb.scheduler.SetMetrics(periodic.SchedulerMetrics{
		TaskRuns: reg.CounterVec(mTaskRuns, "task",
			"Periodic task executions, by task."),
		TaskSeconds: reg.HistogramVec(mTaskSeconds, "task",
			"Periodic task execution duration, in seconds, by task.", nil),
		TaskErrors: reg.CounterVec(mTaskErrors, "task",
			"Periodic task executions that returned an error, by task."),
	})
	kb.asyncM = asyncMetrics{
		enqueued: reg.Counter(mAsyncEnqueued,
			"AfterAsync activations committed onto the pending queue."),
		shed: reg.Counter(mAsyncShed,
			"AfterAsync activations dropped by shed backpressure."),
		evaluated: reg.Counter(mAsyncEvaluated,
			"Pending entries evaluated and materialized by the async workers."),
		failed: reg.Counter(mAsyncFailures,
			"Pending entries whose evaluation or materialization failed."),
		orphaned: reg.Counter(mAsyncOrphaned,
			"Pending entries discarded because their rule was dropped."),
		recovered: reg.Counter(mAsyncRecovered,
			"Pending entries already queued when the pipeline started (crash/restart drain)."),
		evalSeconds: reg.Histogram(mAsyncEvalSeconds,
			"End-to-end async entry processing latency (evaluate + materialize), in seconds.", nil),
		blockSeconds: reg.Histogram(mAsyncBlockSeconds,
			"Time writers spent blocked on async backpressure, in seconds.", nil),
	}
	kb.plans.SetMetrics(
		reg.Counter(mPlanCacheHits,
			"Plan-cache lookups served from the cache."),
		reg.Counter(mPlanCacheMisses,
			"Plan-cache lookups that had to parse the query."),
		reg.Counter(mPlanCacheEvictions,
			"Plans evicted from the cache by capacity pressure."))
	kb.mPrepare = reg.Histogram(mPrepareSeconds,
		"Latency of resolving a query to its prepared plan (cache hits included), in seconds.", nil)
	reg.GaugeFunc(mPlanCacheSize,
		"Prepared plans currently held by this knowledge base's plan cache.",
		func() float64 { return float64(kb.plans.Len()) })
	reg.GaugeFunc(mPlansCompiled,
		"Plan variants compiled process-wide (recompiles on statistics drift included).",
		func() float64 { return float64(cypher.PlansCompiled()) })
	reg.GaugeFunc(mAsyncQueueDepth,
		"PendingAlert entries currently on the async queue.",
		func() float64 { return float64(kb.store.LabelCount(PendingAlertLabel)) })
	reg.GaugeFunc(mNodes, "Nodes currently in the graph.",
		func() float64 { return float64(kb.store.Stats().Nodes) })
	reg.GaugeFunc(mRels, "Relationships currently in the graph.",
		func() float64 { return float64(kb.store.Stats().Relationships) })
	reg.GaugeFunc(mAlertNodes, "Alert nodes currently in the graph.",
		func() float64 { return float64(kb.store.LabelCount(kb.engine.AlertLabel)) })
}

// storeMetrics resolves the graph-store instruments from the registry.
// Called again after OpenDurable swaps in the recovered store.
func (kb *KnowledgeBase) storeMetrics() graph.Metrics {
	reg := kb.metrics
	return graph.Metrics{
		TxCommits: reg.Counter(mTxCommits,
			"Committed read-write transactions."),
		TxRollbacks: reg.Counter(mTxRollbacks,
			"Rolled-back read-write transactions (explicit and aborted commits)."),
		TxSeconds: reg.Histogram(mTxSeconds,
			"Read-write transaction latency (write-lock hold time), in seconds.", nil),
		SnapshotsPublished: reg.Counter(mSnapPublished,
			"Committed snapshot versions published (write commits, index changes, imports)."),
		SnapshotReads: reg.Counter(mSnapReads,
			"Read-only transactions served lock-free from a published snapshot."),
		RecordsCloned: reg.Counter(mSnapCloned,
			"Node and relationship records cloned copy-on-write by write transactions."),
	}
}

// wireWALMetrics instruments the write-ahead log and records the recovery
// outcome; called by OpenDurable.
func (kb *KnowledgeBase) wireWALMetrics(l *wal.Log, policy wal.FsyncPolicy, info *wal.RecoveryInfo) {
	reg := kb.metrics
	l.SetMetrics(wal.Metrics{
		RecordsAppended: reg.Counter(mWALRecords,
			"Records appended to the write-ahead log."),
		BytesAppended: reg.Counter(mWALBytes,
			"Framed bytes appended to the write-ahead log."),
		FsyncSeconds: reg.HistogramVec(mWALFsync, "policy",
			"Latency of write-ahead-log fsyncs, in seconds, by fsync policy.", nil).
			With(policy.String()),
		SegmentsOpened: reg.Counter(mWALSegments,
			"Write-ahead-log segment files opened (first open and rotations)."),
		CheckpointSeconds: reg.Histogram(mWALCheckpoint,
			"End-to-end checkpoint duration, in seconds.", nil),
		GroupCommitTxs: reg.Counter(mWALGroupTxs,
			"Transactions that went through the group-commit durability wait."),
		GroupCommitSyncs: reg.Counter(mWALGroupSyncs,
			"Shared fsyncs issued by group commit (txs/syncs = batch factor)."),
		GroupCommitBatchTxs: reg.Histogram(mWALGroupBatch,
			"Transactions made durable by each shared group-commit fsync.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
	})
	reg.GaugeFunc(mWALLastSeq,
		"Sequence number of the most recently appended or recovered record.",
		func() float64 { return float64(l.LastSeq()) })
	reg.Gauge(mWALReplayed,
		"Records replayed on top of the snapshot during the last recovery.").
		Set(float64(info.RecordsReplayed))
	reg.Gauge(mWALDiscarded,
		"Bytes of torn log tail discarded during the last recovery.").
		Set(float64(info.DiscardedBytes))
}
