package core

import (
	"bytes"
	"errors"

	"repro/internal/graph"
	"repro/internal/wal"
)

// ErrNotDurable is returned by durability operations on an in-memory
// knowledge base.
var ErrNotDurable = errors.New("core: knowledge base is not durable")

// OpenDurable opens (or creates) a knowledge base whose graph is persisted
// under dir: committed transactions append to a write-ahead log, Checkpoint
// compacts the log into a snapshot, and OpenDurable itself recovers the
// pre-crash committed state by replaying the newest snapshot and then the
// log, stopping at (and discarding) a torn tail.
//
// Recovery replays raw graph changes with rule triggering suppressed:
// alerts and other rule effects produced before the crash were committed
// transactions themselves and are therefore already in the log. Rules,
// schemas, hubs and indexes are configuration, not data — the caller
// re-installs them after OpenDurable returns, exactly as with New, and only
// transactions committed after that are logged.
func OpenDurable(dir string, cfg Config, wopts wal.Options) (*KnowledgeBase, *wal.RecoveryInfo, error) {
	l, store, info, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, nil, err
	}
	kb := New(cfg)
	kb.store = store
	kb.wal = l
	// New instrumented the empty store it created; the recovered store
	// replaced it, so re-install the same instruments there, and wire the
	// log's own metrics plus the recovery outcome.
	store.SetMetrics(kb.storeMetrics())
	kb.wireWALMetrics(l, wopts.Fsync, info)
	store.SetCommitHook(func(tx *graph.Tx) error {
		rec := wal.RecordFromTx(tx)
		if rec == nil {
			return nil
		}
		// Append under the write lock (the log record order must match the
		// commit order), but defer the durability wait until the snapshot is
		// published and the lock released: concurrent committers then share
		// one batched fsync instead of each paying their own (group commit).
		seq, err := l.AppendAsync(rec)
		if err != nil {
			return err
		}
		return tx.OnCommitted(func() error { return l.WaitDurable(seq) })
	})
	return kb, info, nil
}

// Durable reports whether the knowledge base persists to a write-ahead log.
func (kb *KnowledgeBase) Durable() bool { return kb.wal != nil }

// WAL exposes the write-ahead log of a durable knowledge base (nil for
// in-memory ones); tests and diagnostics use it.
func (kb *KnowledgeBase) WAL() *wal.Log { return kb.wal }

// Checkpoint writes a snapshot of the current graph and compacts the
// write-ahead log down to it. The log is cut inside a SnapshotView barrier
// — commits are quiesced for exactly that instant — so the pinned snapshot
// and the log position agree: every record up to the cut is in the
// snapshot, every later commit stays in the log. The export and the disk
// I/O then run on the pinned (immutable) snapshot with the write lock
// released, so writers wait only for the cut, never for the serialization
// or the disk.
func (kb *KnowledgeBase) Checkpoint() error {
	if kb.wal == nil {
		return ErrNotDurable
	}
	kb.ckptMu.Lock()
	defer kb.ckptMu.Unlock()
	var seq uint64
	view, err := kb.store.SnapshotView(func() error {
		var err error
		seq, err = kb.wal.Cut()
		return err
	})
	if err != nil {
		return err
	}
	defer view.Rollback()
	var buf bytes.Buffer
	if err := view.Export(&buf); err != nil {
		return err
	}
	return kb.wal.Checkpoint(seq, buf.Bytes())
}

// Close stops the async alert pipeline (in-flight evaluations finish,
// pending entries stay queued for the next open), then flushes and closes
// the write-ahead log. It does not checkpoint; callers wanting a compact
// restart run Checkpoint first. Closing an in-memory knowledge base only
// stops the pipeline.
func (kb *KnowledgeBase) Close() error {
	kb.StopAsync()
	if kb.wal == nil {
		return nil
	}
	return kb.wal.Close()
}
