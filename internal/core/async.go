package core

// The asynchronous alert pipeline: the detached coupling mode of the
// active-database literature, and the engine behind the afterAsync trigger
// phase of the paper's APOC translation (§IV-B).
//
// Guards still run synchronously inside the writing transaction — they are
// cheap and intra-hub by design. The alert query of a Phase: AfterAsync
// rule, which may be arbitrarily complex and inter-hub, is deferred: the
// passing binding is serialized onto a durable pending queue and evaluated
// later by a worker pool against a committed snapshot, producing the alert
// nodes in a follow-up transaction that cascades through the rule engine as
// usual.
//
// The queue is the graph itself: every staged activation is a PendingAlert
// node created inside the triggering transaction, so it rides the existing
// WAL/snapshot/recovery machinery exactly like the federation's FedOutbox
// does — enqueue is atomic with the triggering write, crash recovery gets
// the queue back for free, and StartAsync after OpenDurable drains whatever
// a crash left behind. A worker's follow-up transaction deletes the
// PendingAlert node and materializes the alert nodes atomically, which is
// what makes delivery exactly-once across restarts.
//
// Ordering: node identifiers are assigned in commit order, the scanner
// dispatches entries in identifier order, and all entries of one rule hash
// to the same worker — so alerts of a given rule materialize in the order
// their activations committed (per-rule ordered delivery). No ordering is
// guaranteed across rules.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/trigger"
	"repro/internal/value"
)

// PendingAlertLabel is the label of the durable pending-queue nodes staged
// by AfterAsync rules. The rule engine is configured to skip create/delete
// events on this label, so queue bookkeeping never re-triggers rules.
const PendingAlertLabel = "PendingAlert"

// PendingAlert node properties.
const (
	pendingRuleProp    = "rule"
	pendingBindingProp = "binding"
	pendingAtProp      = "enqueuedAt"
)

// Backpressure selects how writers behave when the pending queue is full.
type Backpressure int

// Backpressure policies.
const (
	// BlockOnFull makes the enqueuing writer wait, after its commit, until
	// the workers bring the queue back under the limit. Nothing is lost;
	// writer throughput degrades to worker throughput under sustained
	// overload. Requires workers (enqueue-only pipelines never block).
	BlockOnFull Backpressure = iota
	// ShedOnFull drops activations while the queue is at the limit; sheds
	// are counted in rkm_trigger_async_shed_total and in the transaction's
	// Report.AsyncShed. The bound is approximate: the check runs against
	// the transaction's view at enqueue time.
	ShedOnFull
)

// String returns the policy name.
func (b Backpressure) String() string {
	if b == ShedOnFull {
		return "shed"
	}
	return "block"
}

// ParseBackpressure parses "block" or "shed". Empty means BlockOnFull.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "", "block":
		return BlockOnFull, nil
	case "shed":
		return ShedOnFull, nil
	default:
		return BlockOnFull, fmt.Errorf("core: unknown backpressure policy %q (want block or shed)", s)
	}
}

// Async pipeline defaults.
const (
	DefaultAsyncWorkers    = 2
	DefaultAsyncQueueLimit = 1024
)

// AsyncOptions tunes the asynchronous alert pipeline.
type AsyncOptions struct {
	// Workers is the number of evaluation goroutines. 0 means
	// DefaultAsyncWorkers; negative means enqueue-only — activations are
	// staged durably but nothing drains them until a later StartAsync with
	// workers (fault-injection tests freeze the queue this way).
	Workers int
	// QueueLimit bounds the pending queue (0 = DefaultAsyncQueueLimit).
	QueueLimit int
	// Backpressure selects blocking or shedding at the limit.
	Backpressure Backpressure
}

// ErrAsyncRunning is returned by StartAsync when the pipeline already runs.
var ErrAsyncRunning = errors.New("core: async pipeline already running")

// pendingEntry is one dequeued PendingAlert node.
type pendingEntry struct {
	id      graph.NodeID
	rule    string
	binding string
}

// asyncPipeline drains the PendingAlert queue: one scanner goroutine
// collects committed entries in node-id order and routes them by rule hash
// to per-worker channels; workers evaluate against pinned read snapshots and
// materialize in follow-up transactions.
type asyncPipeline struct {
	kb   *KnowledgeBase
	opts AsyncOptions
	m    asyncMetrics

	wake chan struct{} // coalesced scanner kick
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signaled when an entry finishes (throttle/idle waiters)
	inflight map[graph.NodeID]bool
	// parked holds entries whose evaluation or materialization failed; they
	// stay on the durable queue and are retried by the next StartAsync.
	parked  map[graph.NodeID]bool
	stopped bool
	workers []chan pendingEntry
}

// StartAsync starts the asynchronous alert pipeline. Any PendingAlert
// entries already on the queue — for a durable knowledge base, whatever a
// crash or shutdown left behind — are drained first, in order (counted in
// rkm_trigger_async_recovered_total). Until StartAsync is called, AfterAsync
// rules are evaluated synchronously, like Before rules.
func (kb *KnowledgeBase) StartAsync(opts AsyncOptions) error {
	// A follower's graph must stay a verbatim mirror of the leader's record
	// stream; local async evaluation would commit writes of its own and fork
	// the replica. The leader evaluates rules and its alerts replicate like
	// any other committed data.
	if kb.follower {
		return ErrFollower
	}
	if opts.Workers == 0 {
		opts.Workers = DefaultAsyncWorkers
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = DefaultAsyncQueueLimit
	}
	p := &asyncPipeline{
		kb:       kb,
		opts:     opts,
		m:        kb.asyncM,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		inflight: make(map[graph.NodeID]bool),
		parked:   make(map[graph.NodeID]bool),
	}
	p.cond = sync.NewCond(&p.mu)
	if !kb.async.CompareAndSwap(nil, p) {
		return ErrAsyncRunning
	}
	if recovered := kb.store.LabelCount(PendingAlertLabel); recovered > 0 {
		p.m.recovered.Add(int64(recovered))
	}
	if opts.Workers > 0 {
		p.workers = make([]chan pendingEntry, opts.Workers)
		for i := range p.workers {
			p.workers[i] = make(chan pendingEntry, 16)
			p.wg.Add(1)
			go p.worker(p.workers[i])
		}
		p.wg.Add(1)
		go p.scanner()
		p.kick()
	}
	return nil
}

// StopAsync stops the pipeline and waits for in-flight evaluations to
// finish. Pending entries stay on the durable queue; a later StartAsync (or
// a restart of a durable knowledge base) resumes them. After StopAsync,
// AfterAsync rules fall back to synchronous evaluation. No-op if the
// pipeline is not running.
func (kb *KnowledgeBase) StopAsync() {
	p := kb.async.Swap(nil)
	if p == nil {
		return
	}
	close(p.stop)
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// AsyncDepth returns the number of PendingAlert entries on the queue.
func (kb *KnowledgeBase) AsyncDepth() int {
	return kb.store.LabelCount(PendingAlertLabel)
}

// WaitAsyncIdle blocks until the pending queue is drained and no evaluation
// is in flight (failed entries parked for the next restart excepted), or the
// timeout elapses. Tests, benchmarks and graceful shutdowns use it.
func (kb *KnowledgeBase) WaitAsyncIdle(timeout time.Duration) error {
	p := kb.async.Load()
	if p == nil {
		return errors.New("core: async pipeline not running")
	}
	deadline := time.Now().Add(timeout)
	for {
		if p.idle() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: async queue not idle after %v (depth %d)",
				timeout, kb.AsyncDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

func (p *asyncPipeline) idle() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inflight) == 0 &&
		p.kb.store.LabelCount(PendingAlertLabel) <= len(p.parked)
}

// asyncEnqueue is the engine's AsyncSink: called inside the writing
// transaction for every passing AfterAsync activation, it stages a
// PendingAlert node so the activation commits (or rolls back) atomically
// with the write that caused it.
func (kb *KnowledgeBase) asyncEnqueue(tx *graph.Tx, item trigger.AsyncItem) (bool, error) {
	p := kb.async.Load()
	if p == nil {
		return false, trigger.ErrAsyncFallback
	}
	if p.opts.Backpressure == ShedOnFull &&
		tx.CountByLabel(PendingAlertLabel) >= p.opts.QueueLimit {
		p.m.shed.Inc()
		return false, nil
	}
	enc, err := trigger.EncodeBinding(item.Binding)
	if err != nil {
		return false, err
	}
	_, err = tx.CreateNode([]string{PendingAlertLabel}, map[string]value.Value{
		pendingRuleProp:    value.Str(item.Rule),
		pendingBindingProp: value.Str(enc),
		pendingAtProp:      value.DateTime(kb.clock.Now()),
	})
	if err != nil {
		return false, err
	}
	return true, tx.OnCommitted(func() error {
		p.m.enqueued.Inc()
		p.kick()
		return nil
	})
}

// throttleAsync applies BlockOnFull backpressure: called after a commit that
// enqueued, outside any lock, it waits until the workers bring the queue
// back under the limit. Workers themselves never throttle (their follow-up
// transactions are what drains the queue).
func (kb *KnowledgeBase) throttleAsync() {
	p := kb.async.Load()
	if p == nil || p.opts.Backpressure != BlockOnFull || p.opts.Workers <= 0 {
		return
	}
	if kb.store.LabelCount(PendingAlertLabel) < p.opts.QueueLimit {
		return
	}
	t0 := time.Now()
	p.mu.Lock()
	for !p.stopped && p.kb.store.LabelCount(PendingAlertLabel) >= p.opts.QueueLimit {
		p.cond.Wait()
	}
	p.mu.Unlock()
	p.m.blockSeconds.ObserveSince(t0)
}

func (p *asyncPipeline) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// scanner routes committed pending entries to the workers. Entries of the
// same rule always land on the same worker, and each pass dispatches in
// node-id (= commit) order, which together give per-rule ordered delivery.
func (p *asyncPipeline) scanner() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case <-p.wake:
		}
		for {
			batch := p.collect()
			if len(batch) == 0 {
				break
			}
			for _, en := range batch {
				select {
				case p.workers[p.route(en.rule)] <- en:
				case <-p.stop:
					return
				}
			}
		}
	}
}

func (p *asyncPipeline) route(rule string) int {
	h := fnv.New32a()
	h.Write([]byte(rule))
	return int(h.Sum32() % uint32(len(p.workers)))
}

// collect reads the committed pending entries that are neither in flight nor
// parked, marks them in flight, and returns them in node-id order.
func (p *asyncPipeline) collect() []pendingEntry {
	var out []pendingEntry
	_ = p.kb.store.View(func(tx *graph.Tx) error {
		ids := tx.NodesByLabel(PendingAlertLabel)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, id := range ids {
			if p.inflight[id] || p.parked[id] {
				continue
			}
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			en := pendingEntry{id: id}
			if v, ok := n.Props[pendingRuleProp]; ok {
				en.rule, _ = v.AsString()
			}
			if v, ok := n.Props[pendingBindingProp]; ok {
				en.binding, _ = v.AsString()
			}
			p.inflight[id] = true
			out = append(out, en)
		}
		return nil
	})
	return out
}

func (p *asyncPipeline) worker(ch chan pendingEntry) {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case en := <-ch:
			p.process(en)
		}
	}
}

// process evaluates one entry: alert query against a pinned committed
// snapshot, then one follow-up write transaction that deletes the
// PendingAlert node and materializes the alert nodes — atomically, so a
// crash either replays the whole entry (the node is still queued) or none of
// it (the alerts are already committed). The follow-up cascades through
// Process like any write, so rules can react to async alerts too.
func (p *asyncPipeline) process(en pendingEntry) {
	kb := p.kb
	defer p.finish(en.id)
	t0 := time.Now()

	bind, err := trigger.DecodeBinding(en.binding)
	if err != nil {
		// Corrupt payload: nothing can ever evaluate it. Drop it.
		p.m.failed.Inc()
		p.discard(en.id)
		return
	}
	ro := kb.store.Begin(graph.ReadOnly)
	cols, rows, err := kb.engine.EvaluateAsync(ro, en.rule, bind)
	ro.Rollback()
	switch {
	case errors.Is(err, trigger.ErrRuleNotFound):
		// The rule was dropped after the activation was staged.
		p.m.orphaned.Inc()
		p.discard(en.id)
		return
	case err != nil:
		p.m.failed.Inc()
		p.park(en.id)
		return
	}

	err = kb.write(func(tx *graph.Tx) error {
		if !tx.NodeExists(en.id) {
			return nil // already consumed by an earlier incarnation
		}
		if err := tx.DeleteNode(en.id, true); err != nil {
			return err
		}
		_, err := kb.engine.MaterializeAsync(tx, en.rule, bind, cols, rows)
		return err
	}, nil, false)
	if err != nil {
		p.m.failed.Inc()
		p.park(en.id)
		return
	}
	p.m.evaluated.Inc()
	p.m.evalSeconds.ObserveSince(t0)
}

func (p *asyncPipeline) finish(id graph.NodeID) {
	p.mu.Lock()
	delete(p.inflight, id)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// discard removes a pending entry that can never be processed (corrupt
// payload, dropped rule) without firing rules.
func (p *asyncPipeline) discard(id graph.NodeID) {
	_ = p.kb.store.Update(func(tx *graph.Tx) error {
		if !tx.NodeExists(id) {
			return nil
		}
		return tx.DeleteNode(id, true)
	})
}

// park keeps a failed entry on the durable queue but out of this pipeline's
// rotation; the next StartAsync retries it.
func (p *asyncPipeline) park(id graph.NodeID) {
	p.mu.Lock()
	p.parked[id] = true
	p.mu.Unlock()
}
