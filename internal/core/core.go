// Package core assembles the reactive knowledge management system of the
// paper: a partitioned property graph (internal/graph + internal/hub)
// governed by PG-Schema (internal/schema), queried through a Cypher subset
// (internal/cypher), made reactive by Event–Guard–Alert rules
// (internal/trigger), and given periodic memory by the Essential Summary
// (internal/summary + internal/periodic).
//
// KnowledgeBase is the type downstream users interact with; the root
// package of this module re-exports it as the public API.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/metrics"
	"repro/internal/periodic"
	"repro/internal/schema"
	"repro/internal/summary"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
)

// summaryTaskName is the scheduler task that rolls the Essential Summary.
const summaryTaskName = "essential-summary-rollover"

// ErrSummariesDisabled is returned by summary operations before
// EnableSummaries.
var ErrSummariesDisabled = errors.New("core: essential summaries not enabled")

// Config tunes a KnowledgeBase.
type Config struct {
	// Clock drives datetime(), alert timestamps and the summary scheduler;
	// nil means the wall clock. Simulations pass a periodic.ManualClock.
	Clock periodic.Clock
	// MaxCascadeDepth bounds cascading rule rounds per transaction
	// (0 = trigger.DefaultMaxCascadeDepth).
	MaxCascadeDepth int
	// StrictTermination rejects rules that make the triggering graph cyclic.
	StrictTermination bool
	// EnforceIntraHubGuards rejects rules whose guard provably reads
	// another hub's knowledge (§III-B's locality requirement for guards).
	EnforceIntraHubGuards bool
	// AlertLabel overrides the label of produced alert nodes ("Alert").
	AlertLabel string
	// Metrics is the registry the knowledge base registers its instruments
	// on; nil means a fresh private registry (see KnowledgeBase.Metrics).
	// Sharing one registry across knowledge bases aggregates their counts.
	Metrics *metrics.Registry
}

// KnowledgeBase is a reactive knowledge management system instance.
type KnowledgeBase struct {
	store     *graph.Store
	engine    *trigger.Engine
	hubs      *hub.Registry
	scheduler *periodic.Scheduler
	clock     periodic.Clock

	// wal is the write-ahead log of a durable knowledge base (see
	// durable.go); nil for the in-memory KnowledgeBases New returns.
	wal    *wal.Log
	ckptMu sync.Mutex

	// follower marks a replication follower (see replica.go): ordinary
	// writes fail with ErrFollower and state arrives only through the
	// replicated-apply path. replicaSeq is the apply cursor of an in-memory
	// follower; durable followers use their log's LastSeq instead.
	follower   bool
	replicaSeq atomic.Uint64

	// async is the running asynchronous alert pipeline (see async.go); nil
	// until StartAsync. asyncM holds its instruments, wired once at
	// construction so restarts of the pipeline accumulate into the same
	// counters.
	async  atomic.Pointer[asyncPipeline]
	asyncM asyncMetrics

	// metrics is wired once at construction (see metrics.go); the rollover
	// instruments are published by EnableSummaries under mu and are nil
	// (no-op) until then.
	metrics          *metrics.Registry
	mRollovers       *metrics.Counter
	mRolloverSeconds *metrics.Histogram

	// plans caches prepared statements (parse + compile artifacts) keyed
	// by query text; lookups are lock-free. mPrepare observes the latency
	// of resolving a query to its plan (cache hits included).
	plans    *cypher.PlanCache
	mPrepare *metrics.Histogram

	mu        sync.Mutex
	summaries *summary.Manager
	schemas   []*schema.GraphType
}

// New creates an empty knowledge base.
func New(cfg Config) *KnowledgeBase {
	clock := cfg.Clock
	if clock == nil {
		clock = periodic.RealClock{}
	}
	kb := &KnowledgeBase{
		store: graph.NewStore(),
		hubs:  hub.NewRegistry(),
		clock: clock,
		plans: cypher.NewPlanCache(0),
	}
	kb.scheduler = periodic.NewScheduler(clock)
	e := trigger.NewEngine()
	e.MaxCascadeDepth = cfg.MaxCascadeDepth
	e.StrictTermination = cfg.StrictTermination
	e.EnforceIntraHubGuards = cfg.EnforceIntraHubGuards
	if cfg.AlertLabel != "" {
		e.AlertLabel = cfg.AlertLabel
	}
	e.Clock = clock.Now
	e.Resolver = kb.hubs.OwnerOfLabel
	// The async pipeline's queue bookkeeping must never re-trigger rules,
	// and AfterAsync activations route through the pipeline whenever it is
	// running (the sink falls back to synchronous evaluation otherwise).
	// Both are wired here, before any write, so the engine's lock-free
	// reads of these fields are race-free.
	e.SkipLabels = map[string]bool{PendingAlertLabel: true}
	e.AsyncSink = kb.asyncEnqueue
	kb.engine = e
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	kb.wireMetrics(reg)
	return kb
}

// Store exposes the underlying graph store for advanced integrations and
// tests. Changes made directly through it bypass the rule engine.
func (kb *KnowledgeBase) Store() *graph.Store { return kb.store }

// Clock returns the knowledge base's clock.
func (kb *KnowledgeBase) Clock() periodic.Clock { return kb.clock }

// Now returns the current time of the knowledge base's clock.
func (kb *KnowledgeBase) Now() time.Time { return kb.clock.Now() }

// ---- Hubs ----

// DefineHub registers a knowledge hub and assigns it ownership of the given
// node labels.
func (kb *KnowledgeBase) DefineHub(name, description string, labels ...string) error {
	if _, err := kb.hubs.Define(name, description); err != nil {
		return err
	}
	return kb.hubs.Own(name, labels...)
}

// Hubs exposes the hub registry.
func (kb *KnowledgeBase) Hubs() *hub.Registry { return kb.hubs }

// EnforceHubOwnership installs the commit-time validator that requires
// every node with an owned label to carry the matching hub property.
func (kb *KnowledgeBase) EnforceHubOwnership() { kb.hubs.Enforce(kb.store) }

// HubStats summarizes the graph partitioning.
func (kb *KnowledgeBase) HubStats() (hub.Stats, error) {
	var st hub.Stats
	err := kb.store.View(func(tx *graph.Tx) error {
		st = kb.hubs.ComputeStats(tx)
		return nil
	})
	return st, err
}

// ---- Schema ----

// ApplySchema parses a PG-Schema graph type and binds it to the store.
func (kb *KnowledgeBase) ApplySchema(src string) (*schema.GraphType, error) {
	g, err := schema.ParseGraphType(src)
	if err != nil {
		return nil, err
	}
	if err := kb.ApplyGraphType(g); err != nil {
		return nil, err
	}
	return g, nil
}

// ApplyGraphType binds a programmatically built graph type to the store.
func (kb *KnowledgeBase) ApplyGraphType(g *schema.GraphType) error {
	if err := g.Bind(kb.store); err != nil {
		return err
	}
	kb.mu.Lock()
	kb.schemas = append(kb.schemas, g)
	kb.mu.Unlock()
	return nil
}

// Schemas lists the bound graph types.
func (kb *KnowledgeBase) Schemas() []*schema.GraphType {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	return append([]*schema.GraphType(nil), kb.schemas...)
}

// CreateIndex creates a property index usable by equality lookups, count
// queries and EXCLUSIVE keys.
func (kb *KnowledgeBase) CreateIndex(label, prop string) error {
	return kb.store.CreateIndex(label, prop)
}

// ---- Rules ----

// InstallRule compiles and installs a reactive rule.
func (kb *KnowledgeBase) InstallRule(r trigger.Rule) error { return kb.engine.Install(r) }

// InstallRuleText parses a PG-Triggers-style CREATE TRIGGER declaration and
// installs it (see the trigger package for the syntax).
func (kb *KnowledgeBase) InstallRuleText(src string) (trigger.Rule, error) {
	return kb.engine.InstallText(src)
}

// DropRule removes a rule.
func (kb *KnowledgeBase) DropRule(name string) error { return kb.engine.Drop(name) }

// PauseRule suspends a rule.
func (kb *KnowledgeBase) PauseRule(name string) error { return kb.engine.Pause(name) }

// ResumeRule reactivates a paused rule.
func (kb *KnowledgeBase) ResumeRule(name string) error { return kb.engine.Resume(name) }

// Rules lists installed rules with their classifications.
func (kb *KnowledgeBase) Rules() []trigger.RuleInfo { return kb.engine.Rules() }

// ClassifyRule returns the §III-C classification of one rule.
func (kb *KnowledgeBase) ClassifyRule(name string) (trigger.Classification, error) {
	return kb.engine.ClassifyRule(name)
}

// CheckTermination returns the cycles of the rules' triggering graph.
func (kb *KnowledgeBase) CheckTermination() [][]string { return kb.engine.CheckTermination() }

// CheckConfluence conservatively reports rule pairs whose outcome may
// depend on firing order (§III-B's confluence concern).
func (kb *KnowledgeBase) CheckConfluence() []trigger.ConfluenceWarning {
	return kb.engine.CheckConfluence()
}

// TriggeringGraph returns the rules' triggering graph edges.
func (kb *KnowledgeBase) TriggeringGraph() []trigger.TriggeringEdge {
	return kb.engine.TriggeringGraph()
}

// TranslateRulesAPOC renders the installed rules as Neo4j APOC trigger
// installation calls using the paper's Fig. 6 syntax-directed translation;
// rules outside the scheme are reported in skipped.
func (kb *KnowledgeBase) TranslateRulesAPOC(dbName, phase string) (translated, skipped []string) {
	return kb.engine.TranslateAllAPOC(dbName, phase)
}

// Engine exposes the rule engine for advanced configuration.
func (kb *KnowledgeBase) Engine() *trigger.Engine { return kb.engine }

// ---- Statement execution ----

// prepare resolves a query to its cached Plan, parsing and caching on
// first sight. Steady-state lookups are lock-free map reads.
func (kb *KnowledgeBase) prepare(query string) (*cypher.Plan, error) {
	start := time.Now()
	plan, err := kb.plans.Get(query)
	if err != nil {
		return nil, err
	}
	kb.mPrepare.ObserveSince(start)
	return plan, nil
}

// PlanCacheStats snapshots the shared plan cache's size and hit counters.
func (kb *KnowledgeBase) PlanCacheStats() cypher.PlanCacheStats { return kb.plans.Stats() }

// ExplainQuery renders the execution plan of a statement: the clause
// pipeline and the access path each MATCH anchor would use against the
// current indexes and statistics.
func (kb *KnowledgeBase) ExplainQuery(query string) (string, error) {
	plan, err := kb.prepare(query)
	if err != nil {
		return "", err
	}
	tx := kb.store.Begin(graph.ReadOnly)
	defer tx.Rollback()
	return cypher.Explain(tx, plan.Statement()), nil
}

// Query runs a read-only statement; write clauses fail.
func (kb *KnowledgeBase) Query(query string, params map[string]value.Value) (*cypher.Result, error) {
	plan, err := kb.prepare(query)
	if err != nil {
		return nil, err
	}
	tx := kb.store.Begin(graph.ReadOnly)
	defer tx.Rollback()
	return plan.Execute(tx, &cypher.Options{Params: params, Now: kb.clock.Now})
}

// Execute runs a statement in a read-write transaction, fires the reactive
// rules over its changes (cascading), and commits. On any error — statement,
// rule, cascade bound, or commit-time schema/hub validation — the whole
// transaction rolls back.
func (kb *KnowledgeBase) Execute(query string, params map[string]value.Value) (*cypher.Result, error) {
	res, _, err := kb.ExecuteReport(query, params)
	return res, err
}

// ExecuteReport is Execute plus the rule engine's activation report.
func (kb *KnowledgeBase) ExecuteReport(query string, params map[string]value.Value) (*cypher.Result, *trigger.Report, error) {
	plan, err := kb.prepare(query)
	if err != nil {
		return nil, nil, err
	}
	var res *cypher.Result
	var rep *trigger.Report
	err = kb.writeWithTriggers(func(tx *graph.Tx) error {
		var err error
		res, err = plan.Execute(tx, &cypher.Options{Params: params, Now: kb.clock.Now})
		return err
	}, &rep)
	if err != nil {
		return nil, rep, err
	}
	return res, rep, nil
}

// WriteTx runs fn inside a read-write transaction, then fires the reactive
// rules over fn's changes and commits. It is the programmatic (non-Cypher)
// write path; bulk loaders use it.
func (kb *KnowledgeBase) WriteTx(fn func(tx *graph.Tx) error) (*trigger.Report, error) {
	var rep *trigger.Report
	err := kb.writeWithTriggers(fn, &rep)
	return rep, err
}

func (kb *KnowledgeBase) writeWithTriggers(fn func(tx *graph.Tx) error, repOut **trigger.Report) error {
	return kb.write(fn, repOut, true)
}

// write is the write path. throttle selects whether BlockOnFull async
// backpressure applies after the commit; the async workers' own follow-up
// transactions pass false — they drain the queue, so blocking them on its
// depth would deadlock.
func (kb *KnowledgeBase) write(fn func(tx *graph.Tx) error, repOut **trigger.Report, throttle bool) error {
	if kb.follower {
		return ErrFollower
	}
	tx := kb.store.Begin(graph.ReadWrite)
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	data := tx.ResetData()
	data.Compact()
	rep, err := kb.engine.Process(tx, data)
	if repOut != nil {
		*repOut = rep
	}
	if err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if throttle && rep.AsyncEnqueued > 0 {
		kb.throttleAsync()
	}
	return nil
}

// ---- Essential Summary ----

// EnableSummaries activates the Essential Summary with the given period of
// observation: alert nodes are attached to the current summary as they are
// produced, and a periodic task (driven by Tick or RunScheduler) rolls the
// summary over when a period elapses, exactly as Fig. 8 does with
// apoc.periodic.repeat.
func (kb *KnowledgeBase) EnableSummaries(period time.Duration) error {
	kb.mu.Lock()
	if kb.summaries != nil {
		kb.mu.Unlock()
		return fmt.Errorf("core: essential summaries already enabled")
	}
	mgr := summary.New(period)
	kb.summaries = mgr
	// The rollover instruments are published inside the same critical
	// section as kb.summaries, so any goroutine that can observe summaries
	// as enabled (via Summaries, which locks kb.mu) also observes them.
	kb.mRollovers = kb.metrics.Counter(mRollovers,
		"Essential Summary observation periods closed.")
	kb.mRolloverSeconds = kb.metrics.Histogram(mRolloverSeconds,
		"Duration of summary rollovers (including triggered rules), in seconds.", nil)
	kb.mu.Unlock()

	kb.metrics.GaugeFunc(mChainLength,
		"Summary nodes in the Essential Summary chain.",
		func() float64 { return float64(kb.store.LabelCount(mgr.SummaryLabel)) })

	kb.engine.OnAlert = func(tx *graph.Tx, alert graph.NodeID) error {
		return mgr.AttachAlert(tx, alert, kb.clock.Now())
	}
	// Check at a fraction of the period, like Fig. 8's hourly check for a
	// 24h period; the rollover itself runs through the trigger pipeline so
	// rules can react to new Summary nodes.
	check := period / 24
	if check <= 0 {
		check = period
	}
	return kb.scheduler.Repeat(summaryTaskName, check, func(now time.Time) error {
		return kb.RolloverIfDue()
	})
}

// Summaries exposes the Essential Summary manager.
func (kb *KnowledgeBase) Summaries() (*summary.Manager, error) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if kb.summaries == nil {
		return nil, ErrSummariesDisabled
	}
	return kb.summaries, nil
}

// RolloverIfDue closes the current observation period if it has elapsed.
// Rule events for the created Summary node fire as usual.
func (kb *KnowledgeBase) RolloverIfDue() error {
	mgr, err := kb.Summaries()
	if err != nil {
		return err
	}
	var t0 time.Time
	if kb.mRolloverSeconds != nil {
		t0 = time.Now()
	}
	rolled := false
	err = kb.writeWithTriggers(func(tx *graph.Tx) error {
		var err error
		rolled, _, err = mgr.RolloverIfDue(tx, kb.clock.Now())
		return err
	}, nil)
	if rolled && err == nil {
		kb.mRollovers.Inc()
		if !t0.IsZero() {
			kb.mRolloverSeconds.ObserveSince(t0)
		}
	}
	return err
}

// Rollover unconditionally starts a new observation period.
func (kb *KnowledgeBase) Rollover() error {
	mgr, err := kb.Summaries()
	if err != nil {
		return err
	}
	var t0 time.Time
	if kb.mRolloverSeconds != nil {
		t0 = time.Now()
	}
	err = kb.writeWithTriggers(func(tx *graph.Tx) error {
		_, err := mgr.Rollover(tx, kb.clock.Now())
		return err
	}, nil)
	if err == nil {
		kb.mRollovers.Inc()
		if !t0.IsZero() {
			kb.mRolloverSeconds.ObserveSince(t0)
		}
	}
	return err
}

// Tick runs due scheduler tasks (summary rollovers and any user tasks).
// Simulations call it after advancing a ManualClock.
func (kb *KnowledgeBase) Tick() error {
	_, err := kb.scheduler.Tick()
	return err
}

// Scheduler exposes the periodic scheduler for user tasks.
func (kb *KnowledgeBase) Scheduler() *periodic.Scheduler { return kb.scheduler }

// RunScheduler drives the scheduler against the wall clock until stop is
// closed.
func (kb *KnowledgeBase) RunScheduler(stop <-chan struct{}, resolution time.Duration) error {
	return kb.scheduler.Run(stop, resolution)
}

// ---- Alerts ----

// Alert is a materialized alert node.
type Alert struct {
	ID       graph.NodeID
	Rule     string
	Hub      string
	DateTime time.Time
	// Props holds the rule-specific payload (the alert query's columns).
	Props map[string]value.Value
}

// Alerts lists all alert nodes, oldest first (by dateTime, then id).
func (kb *KnowledgeBase) Alerts() ([]Alert, error) {
	out, err := kb.collectAlerts(0)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].DateTime.Equal(out[j].DateTime) {
			return out[i].DateTime.Before(out[j].DateTime)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// AlertsAfter lists the alert nodes whose id is greater than after, sorted
// by id. Node ids are assigned in creation order, so this is the incremental
// read replication cursors (the in-process federation's high-water marks and
// fednet's durable outbox) page the alert log with.
func (kb *KnowledgeBase) AlertsAfter(after graph.NodeID) ([]Alert, error) {
	out, err := kb.collectAlerts(after)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// collectAlerts extracts the alert nodes with id greater than after
// (unsorted).
func (kb *KnowledgeBase) collectAlerts(after graph.NodeID) ([]Alert, error) {
	label := kb.engine.AlertLabel
	if label == "" {
		label = trigger.DefaultAlertLabel
	}
	var out []Alert
	err := kb.store.View(func(tx *graph.Tx) error {
		for _, id := range tx.NodesByLabel(label) {
			if id <= after {
				continue
			}
			n, ok := tx.Node(id)
			if !ok {
				continue
			}
			a := Alert{ID: id, Props: make(map[string]value.Value)}
			for k, v := range n.Props {
				switch k {
				case "rule":
					a.Rule, _ = v.AsString()
				case "hub":
					a.Hub, _ = v.AsString()
				case "dateTime":
					a.DateTime, _ = v.AsDateTime()
				default:
					a.Props[k] = v
				}
			}
			out = append(out, a)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GraphStats returns store-size counters.
func (kb *KnowledgeBase) GraphStats() graph.Stats { return kb.store.Stats() }

// SaveGraph serializes the knowledge graph (nodes and relationships with
// full type fidelity) as JSON. Rules, hubs and schemas are configuration
// and are not part of the document.
func (kb *KnowledgeBase) SaveGraph(w io.Writer) error { return kb.store.Export(w) }

// LoadGraph restores a SaveGraph document into an empty knowledge base.
func (kb *KnowledgeBase) LoadGraph(r io.Reader) error { return kb.store.Import(r) }

// ---- What-if forking (§V) ----

// Fork returns an independent copy of the knowledge base for hypothetical
// reasoning: the graph data, installed rules (with their paused state),
// summary configuration and engine settings are copied; the hub registry
// and bound schemas — the shared ontology — are referenced, not copied.
// clock selects the fork's clock (nil shares the parent's). Changes in the
// fork never affect the parent, so alternative reaction strategies can be
// attached to forks and their evolutions compared. The fork has no async
// pipeline: its AfterAsync rules evaluate synchronously, keeping
// hypothetical reasoning deterministic (call StartAsync on the fork to
// change that).
func (kb *KnowledgeBase) Fork(clock periodic.Clock) (*KnowledgeBase, error) {
	if clock == nil {
		clock = kb.clock
	}
	// The fork gets its own plan cache: plans re-cost against the fork's
	// statistics, and its cache counters feed the fork's registry.
	nkb := &KnowledgeBase{
		store: kb.store.Clone(),
		hubs:  kb.hubs,
		clock: clock,
		plans: cypher.NewPlanCache(0),
	}
	nkb.scheduler = periodic.NewScheduler(clock)

	e := trigger.NewEngine()
	e.MaxCascadeDepth = kb.engine.MaxCascadeDepth
	e.StrictTermination = kb.engine.StrictTermination
	e.EnforceIntraHubGuards = kb.engine.EnforceIntraHubGuards
	e.AlertLabel = kb.engine.AlertLabel
	e.StateLabels = kb.engine.StateLabels
	e.Clock = clock.Now
	e.Resolver = nkb.hubs.OwnerOfLabel
	nkb.engine = e
	// A fork gets a fresh registry: its hypothetical activity must not skew
	// the parent's counters. Wire before installing rules so the fork's
	// per-rule counters resolve.
	nkb.wireMetrics(metrics.NewRegistry())
	for _, info := range kb.engine.Rules() {
		if err := e.Install(info.Rule); err != nil {
			return nil, fmt.Errorf("core: fork rule %s: %w", info.Name, err)
		}
		if info.Paused {
			if err := e.Pause(info.Name); err != nil {
				return nil, err
			}
		}
	}

	kb.mu.Lock()
	nkb.schemas = append([]*schema.GraphType(nil), kb.schemas...)
	var period time.Duration
	if kb.summaries != nil {
		period = kb.summaries.Period
	}
	kb.mu.Unlock()
	if period > 0 {
		if err := nkb.EnableSummaries(period); err != nil {
			return nil, err
		}
	}
	return nkb, nil
}
