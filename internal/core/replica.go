package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/wal"
)

// This file is the knowledge-base half of WAL-shipping replication (see
// internal/replica for the wire protocol). A follower knowledge base is a
// read-only mirror: its store rejects ordinary writes with a typed error,
// and the only mutations it accepts are leader records applied in leader
// order through ApplyReplicated, which mirrors them into the follower's own
// write-ahead log with the leader's sequence numbers preserved. The
// follower's wal.LastSeq therefore IS its durable apply cursor — a restart
// recovers the graph by the ordinary replay path and resumes streaming from
// exactly the next record.

// ErrFollower is returned by write operations on a follower knowledge base.
// Writes belong on the leader; followers serve reads at bounded staleness.
var ErrFollower = errors.New("core: knowledge base is a replication follower (read-only)")

// ErrReplicaDiverged marks a follower whose in-memory graph and local log no
// longer agree (a partial batch apply failed mid-way). The durable state is
// still consistent — the log is authoritative and a restart replays it — but
// the running process must not apply further records.
var ErrReplicaDiverged = errors.New("core: replica diverged in memory; restart to recover from the local log")

// NewFollower creates an empty in-memory follower knowledge base: reads work
// as usual, ordinary writes fail with ErrFollower, and state arrives only
// via BootstrapReplica and ApplyReplicated. An in-memory follower keeps its
// apply cursor in memory too, so every restart re-bootstraps.
func NewFollower(cfg Config) *KnowledgeBase {
	kb := New(cfg)
	kb.follower = true
	kb.store.SetFollowerMode(true)
	return kb
}

// OpenFollowerDurable opens (or creates) a durable follower knowledge base
// under dir. Unlike OpenDurable it installs no commit hook — the apply path
// appends the leader's records itself, preserving leader sequence numbers —
// and flips the store into follower mode. Recovery is the ordinary replay
// path: the recovered info.LastSeq is the apply cursor to resume from. A
// fresh directory can be pre-seeded with a leader snapshot via
// wal.SeedSnapshot before calling this.
func OpenFollowerDurable(dir string, cfg Config, wopts wal.Options) (*KnowledgeBase, *wal.RecoveryInfo, error) {
	l, store, info, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, nil, err
	}
	kb := New(cfg)
	kb.follower = true
	kb.store = store
	kb.wal = l
	store.SetMetrics(kb.storeMetrics())
	kb.wireWALMetrics(l, wopts.Fsync, info)
	store.SetFollowerMode(true)
	return kb, info, nil
}

// Follower reports whether this knowledge base is a replication follower.
func (kb *KnowledgeBase) Follower() bool { return kb.follower }

// Role names the knowledge base's replication role for status surfaces.
func (kb *KnowledgeBase) Role() string {
	if kb.follower {
		return "follower"
	}
	return "leader"
}

// ReplicaAppliedSeq returns the follower's durable apply cursor: the leader
// sequence number of the last record applied (and, for a durable follower,
// persisted). Streaming resumes at the next record.
func (kb *KnowledgeBase) ReplicaAppliedSeq() uint64 {
	if kb.wal != nil {
		return kb.wal.LastSeq()
	}
	return kb.replicaSeq.Load()
}

// BootstrapReplica loads a leader snapshot (a graph Export document covering
// leader records up to and including seq) into an empty in-memory follower
// and positions the apply cursor at seq. Durable followers bootstrap on disk
// instead: wal.SeedSnapshot before OpenFollowerDurable.
func (kb *KnowledgeBase) BootstrapReplica(r io.Reader, seq uint64) error {
	if !kb.follower {
		return errors.New("core: BootstrapReplica on a leader knowledge base")
	}
	if kb.wal != nil {
		return errors.New("core: durable followers bootstrap via wal.SeedSnapshot before open")
	}
	if err := kb.store.Import(r); err != nil {
		return err
	}
	kb.replicaSeq.Store(seq)
	return nil
}

// ApplyReplicated applies a contiguous batch of leader records, which must
// start exactly at ReplicaAppliedSeq()+1, in one transaction: the records
// are replayed into the graph, mirrored into the follower's own log with
// leader sequence numbers preserved, committed, and made durable with a
// single group-commit wait. On success the apply cursor has advanced past
// the batch.
//
// Errors before anything reached the local log are clean: the transaction
// rolls back and the same batch can simply be retried. An error after some
// records were appended wraps ErrReplicaDiverged — the log (authoritative)
// is ahead of the in-memory graph, so the process must stop applying and be
// restarted, at which point ordinary recovery replays the log and streaming
// resumes seamlessly.
func (kb *KnowledgeBase) ApplyReplicated(recs []*wal.Record) error {
	if !kb.follower {
		return errors.New("core: ApplyReplicated on a leader knowledge base")
	}
	if len(recs) == 0 {
		return nil
	}
	want := kb.ReplicaAppliedSeq() + 1
	for i, rec := range recs {
		if rec.Seq != want+uint64(i) {
			return fmt.Errorf("core: replicated batch not contiguous: record %d has seq %d, want %d",
				i, rec.Seq, want+uint64(i))
		}
	}
	tx := kb.store.BeginApply()
	for _, rec := range recs {
		if err := wal.ApplyRecord(tx, rec); err != nil {
			tx.Rollback()
			return fmt.Errorf("core: apply record %d: %w", rec.Seq, err)
		}
	}
	appended := 0
	if kb.wal != nil {
		for i, rec := range recs {
			if err := kb.wal.AppendReplicated(rec); err != nil {
				tx.Rollback()
				if i > 0 {
					return fmt.Errorf("core: mirror record %d: %v: %w", rec.Seq, err, ErrReplicaDiverged)
				}
				return fmt.Errorf("core: mirror record %d: %w", rec.Seq, err)
			}
			appended = i + 1
		}
	}
	if err := tx.Commit(); err != nil {
		if appended > 0 {
			return fmt.Errorf("core: commit replicated batch: %v: %w", err, ErrReplicaDiverged)
		}
		return fmt.Errorf("core: commit replicated batch: %w", err)
	}
	last := recs[len(recs)-1].Seq
	if kb.wal != nil {
		if err := kb.wal.WaitDurable(last); err != nil {
			return fmt.Errorf("core: replicated batch durability: %v: %w", err, ErrReplicaDiverged)
		}
	} else {
		kb.replicaSeq.Store(last)
	}
	return nil
}

// ReplicaSnapshotView pins a read-only view of the committed graph together
// with the exact log position it covers, for serving follower bootstrap
// snapshots: every record at or below the returned sequence number is in the
// view, every later commit is in the log tail, and the log has been synced
// so a cursor positioned at the sequence number can stream the rest. The
// caller must Rollback the view.
func (kb *KnowledgeBase) ReplicaSnapshotView() (*graph.Tx, uint64, error) {
	if kb.wal == nil {
		return nil, 0, ErrNotDurable
	}
	var seq uint64
	view, err := kb.store.SnapshotView(func() error {
		if err := kb.wal.Sync(); err != nil {
			return err
		}
		seq = kb.wal.LastSeq()
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return view, seq, nil
}

// ReplicaSnapshot serializes the pinned view of ReplicaSnapshotView into one
// buffer (small deployments; the HTTP handler streams instead).
func (kb *KnowledgeBase) ReplicaSnapshot() ([]byte, uint64, error) {
	view, seq, err := kb.ReplicaSnapshotView()
	if err != nil {
		return nil, 0, err
	}
	defer view.Rollback()
	var buf bytes.Buffer
	if err := view.Export(&buf); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), seq, nil
}
