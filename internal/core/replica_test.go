package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/value"
	"repro/internal/wal"
)

// pullRecords drains every durable record after seq from the leader's log.
func pullRecords(t *testing.T, kb *core.KnowledgeBase, after uint64) []*wal.Record {
	t.Helper()
	cur := kb.WAL().Cursor(after)
	defer cur.Close()
	var out []*wal.Record
	for {
		recs, err := cur.Next(0)
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if len(recs) == 0 {
			return out
		}
		out = append(out, recs...)
	}
}

func leaderWrite(t *testing.T, kb *core.KnowledgeBase, i int) {
	t.Helper()
	if _, err := kb.WriteTx(func(tx *graph.Tx) error {
		_, err := tx.CreateNode([]string{"Doc"}, map[string]value.Value{"i": value.Int(int64(i))})
		return err
	}); err != nil {
		t.Fatalf("leader write: %v", err)
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	fol := core.NewFollower(core.Config{})
	if fol.Role() != "follower" || !fol.Follower() {
		t.Fatalf("role = %q", fol.Role())
	}
	if _, err := fol.Execute("CREATE (:X)", nil); !errors.Is(err, core.ErrFollower) {
		t.Fatalf("Execute on follower: %v, want ErrFollower", err)
	}
	if err := fol.StartAsync(core.AsyncOptions{}); !errors.Is(err, core.ErrFollower) {
		t.Fatalf("StartAsync on follower: %v, want ErrFollower", err)
	}
	// Reads are fine.
	if _, err := fol.Query("MATCH (n) RETURN count(n)", nil); err != nil {
		t.Fatalf("Query on follower: %v", err)
	}
}

func TestInMemoryFollowerBootstrapAndApply(t *testing.T) {
	leader, _ := openDurableKB(t, t.TempDir())
	for i := 0; i < 5; i++ {
		leaderWrite(t, leader, i)
	}
	snap, seq, err := leader.ReplicaSnapshot()
	if err != nil {
		t.Fatalf("ReplicaSnapshot: %v", err)
	}
	if seq != 5 {
		t.Fatalf("snapshot seq = %d, want 5", seq)
	}

	fol := core.NewFollower(core.Config{})
	if err := fol.BootstrapReplica(strings.NewReader(string(snap)), seq); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if got := fol.ReplicaAppliedSeq(); got != seq {
		t.Fatalf("applied seq after bootstrap = %d, want %d", got, seq)
	}

	for i := 5; i < 12; i++ {
		leaderWrite(t, leader, i)
	}
	recs := pullRecords(t, leader, seq)
	if len(recs) != 7 {
		t.Fatalf("pulled %d records, want 7", len(recs))
	}
	if err := fol.ApplyReplicated(recs); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got, want := saveGraph(t, fol), saveGraph(t, leader); got != want {
		t.Fatalf("follower export differs from leader:\n%s\nvs\n%s", got, want)
	}
	if got := fol.ReplicaAppliedSeq(); got != leader.WAL().LastSeq() {
		t.Fatalf("applied seq = %d, want %d", got, leader.WAL().LastSeq())
	}

	// Non-contiguous batches are refused outright.
	if err := fol.ApplyReplicated(recs); err == nil {
		t.Fatal("re-applying an old batch succeeded")
	}
}

func TestDurableFollowerSeedApplyRestart(t *testing.T) {
	leader, _ := openDurableKB(t, t.TempDir())
	for i := 0; i < 6; i++ {
		leaderWrite(t, leader, i)
	}
	snap, seq, err := leader.ReplicaSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	if err := wal.SeedSnapshot(fdir, seq, snap); err != nil {
		t.Fatalf("seed: %v", err)
	}
	fol, info, err := core.OpenFollowerDurable(fdir, core.Config{}, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatalf("OpenFollowerDurable: %v", err)
	}
	if info.SnapshotSeq != seq || fol.ReplicaAppliedSeq() != seq {
		t.Fatalf("recovered seq %d/%d, want %d", info.SnapshotSeq, fol.ReplicaAppliedSeq(), seq)
	}
	if _, err := fol.Execute("CREATE (:X)", nil); !errors.Is(err, core.ErrFollower) {
		t.Fatalf("durable follower accepted a write: %v", err)
	}

	for i := 6; i < 10; i++ {
		leaderWrite(t, leader, i)
	}
	if err := fol.ApplyReplicated(pullRecords(t, leader, fol.ReplicaAppliedSeq())); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got, want := saveGraph(t, fol), saveGraph(t, leader); got != want {
		t.Fatal("follower export differs from leader after apply")
	}
	cursorBefore := fol.ReplicaAppliedSeq()
	if err := fol.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart resumes at the durable cursor; no re-bootstrap, no re-apply.
	fol2, info2, err := core.OpenFollowerDurable(fdir, core.Config{}, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fol2.Close()
	if fol2.ReplicaAppliedSeq() != cursorBefore {
		t.Fatalf("restart cursor %d, want %d", fol2.ReplicaAppliedSeq(), cursorBefore)
	}
	if info2.RecordsReplayed != 4 {
		t.Fatalf("replayed %d records, want 4", info2.RecordsReplayed)
	}
	if got, want := saveGraph(t, fol2), saveGraph(t, leader); got != want {
		t.Fatal("follower export differs from leader after restart")
	}

	// And continues applying fresh leader records.
	leaderWrite(t, leader, 10)
	if err := fol2.ApplyReplicated(pullRecords(t, leader, fol2.ReplicaAppliedSeq())); err != nil {
		t.Fatalf("apply after restart: %v", err)
	}
	if got, want := saveGraph(t, fol2), saveGraph(t, leader); got != want {
		t.Fatal("follower export differs after post-restart apply")
	}
}

func TestReplicaSnapshotPairsWithTail(t *testing.T) {
	leader, _ := openDurableKB(t, t.TempDir())
	for i := 0; i < 3; i++ {
		leaderWrite(t, leader, i)
	}
	view, seq, err := leader.ReplicaSnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Rollback()
	// Records committed after the view must all carry sequence numbers
	// above seq — the snapshot/tail split is exact.
	leaderWrite(t, leader, 3)
	recs := pullRecords(t, leader, seq)
	if len(recs) != 1 || recs[0].Seq != seq+1 {
		t.Fatalf("tail after snapshot: %d records, first seq %d; want 1 record at %d",
			len(recs), recs[0].Seq, seq+1)
	}
	// The pinned view itself does not see the later write.
	if n := len(view.NodesByLabel("Doc")); n != 3 {
		t.Fatalf("pinned view sees %d Doc nodes, want 3", n)
	}
}
