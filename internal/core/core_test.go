package core

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
)

var sim0 = time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)

func newSimKB(t *testing.T) (*KnowledgeBase, *periodic.ManualClock) {
	t.Helper()
	clock := periodic.NewManualClock(sim0)
	kb := New(Config{Clock: clock})
	return kb, clock
}

func exec(t *testing.T, kb *KnowledgeBase, query string) *trigger.Report {
	t.Helper()
	_, rep, err := kb.ExecuteReport(query, nil)
	if err != nil {
		t.Fatalf("execute %q: %v", query, err)
	}
	return rep
}

func queryInt(t *testing.T, kb *KnowledgeBase, query string) int64 {
	t.Helper()
	res, err := kb.Query(query, nil)
	if err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	v, ok := res.Value()
	if !ok {
		t.Fatalf("query %q: expected single value, got %d rows", query, len(res.Rows))
	}
	n, _ := v.AsInt()
	return n
}

func TestExecuteFiresRulesAndCommits(t *testing.T) {
	kb, _ := newSimKB(t)
	if err := kb.InstallRule(trigger.Rule{
		Name:  "watch",
		Hub:   "E",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Mutation"},
		Alert: "RETURN NEW.id AS mid",
	}); err != nil {
		t.Fatal(err)
	}
	rep := exec(t, kb, "CREATE (:Mutation {id: 'M1'})")
	if rep.AlertNodes != 1 {
		t.Fatalf("report: %+v", rep)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "watch" || alerts[0].Hub != "E" {
		t.Errorf("alerts: %+v", alerts)
	}
	if got := alerts[0].Props["mid"].String(); got != `"M1"` {
		t.Errorf("payload: %v", alerts[0].Props)
	}
	if !alerts[0].DateTime.Equal(sim0) {
		t.Error("alert timestamp should come from the manual clock")
	}
}

func TestQueryIsReadOnly(t *testing.T) {
	kb, _ := newSimKB(t)
	if _, err := kb.Query("CREATE (:X)", nil); err == nil {
		t.Error("write through Query should fail")
	}
	if kb.GraphStats().Nodes != 0 {
		t.Error("no node should be created")
	}
}

func TestStatementCache(t *testing.T) {
	kb, _ := newSimKB(t)
	for i := 0; i < 3; i++ {
		exec(t, kb, "CREATE (:N)")
	}
	st := kb.PlanCacheStats()
	if st.Size != 1 {
		t.Errorf("cache entries = %d, want 1", st.Size)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if kb.GraphStats().Nodes != 3 {
		t.Error("all executions should commit")
	}
}

func TestWriteTxFiresRules(t *testing.T) {
	kb, _ := newSimKB(t)
	_ = kb.InstallRule(trigger.Rule{
		Name:  "bulk",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Item"},
		Alert: "RETURN 1 AS x",
	})
	rep, err := kb.WriteTx(func(tx *graph.Tx) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.CreateNode([]string{"Item"}, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlertNodes != 5 {
		t.Errorf("alert nodes = %d", rep.AlertNodes)
	}
}

func TestRuleErrorRollsBackStatement(t *testing.T) {
	kb, _ := newSimKB(t)
	kb.Engine().MaxCascadeDepth = 3
	_ = kb.InstallRule(trigger.Rule{
		Name:   "loop",
		Event:  trigger.Event{Kind: trigger.CreateNode, Label: "Ping"},
		Action: "CREATE (:Ping)",
	})
	_, err := kb.Execute("CREATE (:Ping)", nil)
	if !errors.Is(err, trigger.ErrCascadeDepth) {
		t.Fatalf("expected cascade error, got %v", err)
	}
	if kb.GraphStats().Nodes != 0 {
		t.Error("failed execute must roll back everything")
	}
}

func TestSchemaIntegration(t *testing.T) {
	kb, _ := newSimKB(t)
	g, err := kb.ApplySchema(`CREATE GRAPH TYPE T STRICT {
		(rt: Region {name STRING, hub STRING}),
		(at: Alert {rule STRING, hub STRING, dateTime DATETIME, OPEN}),
		FOR (x:rt) EXCLUSIVE MANDATORY SINGLETON x.name
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "T" || len(kb.Schemas()) != 1 {
		t.Error("schema registration")
	}
	if _, err := kb.Execute("CREATE (:Region {name: 'Lombardy', hub: 'R'})", nil); err != nil {
		t.Fatal(err)
	}
	// Duplicate key via the full pipeline.
	if _, err := kb.Execute("CREATE (:Region {name: 'Lombardy', hub: 'R'})", nil); err == nil {
		t.Error("exclusive key violation should abort")
	}
	// Undeclared label in STRICT mode.
	if _, err := kb.Execute("CREATE (:Rogue)", nil); err == nil {
		t.Error("strict schema should reject unknown labels")
	}
	if _, err := kb.ApplySchema("garbage"); err == nil {
		t.Error("bad schema text")
	}
}

func TestHubIntegration(t *testing.T) {
	kb, _ := newSimKB(t)
	if err := kb.DefineHub("R", "regional hub", "Region"); err != nil {
		t.Fatal(err)
	}
	if err := kb.DefineHub("C", "clinical hub", "Hospital", "Patient"); err != nil {
		t.Fatal(err)
	}
	kb.EnforceHubOwnership()
	if _, err := kb.Execute("CREATE (:Region {name: 'x'})", nil); err == nil {
		t.Error("missing hub property should be rejected")
	}
	if _, err := kb.Execute("CREATE (:Region {name: 'x', hub: 'R'})", nil); err != nil {
		t.Fatalf("valid hub node rejected: %v", err)
	}
	if _, err := kb.Execute(
		"MATCH (r:Region) CREATE (:Hospital {name: 'h', hub: 'C'})-[:LocatedIn]->(r)", nil); err != nil {
		t.Fatal(err)
	}
	st, err := kb.HubStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesPerHub["R"] != 1 || st.NodesPerHub["C"] != 1 || st.InterEdges != 1 {
		t.Errorf("hub stats: %+v", st)
	}
	// Classification uses the hub resolver automatically.
	_ = kb.InstallRule(trigger.Rule{
		Name:  "xhub",
		Hub:   "C",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Patient"},
		Alert: "MATCH (:Hospital)-[:LocatedIn]->(r:Region) RETURN r.name AS region",
	})
	cls, err := kb.ClassifyRule("xhub")
	if err != nil {
		t.Fatal(err)
	}
	if cls.Scope != trigger.InterHub {
		t.Errorf("classification: %+v", cls)
	}
}

func TestEssentialSummaryLifecycle(t *testing.T) {
	kb, clock := newSimKB(t)
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableSummaries(24 * time.Hour); err == nil {
		t.Error("double enable should fail")
	}
	_ = kb.InstallRule(trigger.Rule{
		Name:  "daily",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Case"},
		Alert: "RETURN NEW.n AS n",
	})

	exec(t, kb, "CREATE (:Case {n: 1})")
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, "CREATE (:Case {n: 2})")

	mgr, err := kb.Summaries()
	if err != nil {
		t.Fatal(err)
	}
	_ = kb.Store().View(func(tx *graph.Tx) error {
		chain := mgr.Chain(tx)
		if len(chain) != 2 {
			t.Fatalf("summary chain length = %d, want 2", len(chain))
		}
		if len(mgr.Alerts(tx, chain[0])) != 1 || len(mgr.Alerts(tx, chain[1])) != 1 {
			t.Error("each period should hold one alert")
		}
		return nil
	})
}

func TestSummaryRolloverTriggersRules(t *testing.T) {
	kb, clock := newSimKB(t)
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// The Fig. 10 pattern: a rule that reacts to new Summary nodes.
	_ = kb.InstallRule(trigger.Rule{
		Name:  "onPeriod",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Summary"},
		Alert: "RETURN NEW.date AS opened",
	})
	exec(t, kb, "CREATE (:Seed)") // summaries appear on first alert or rollover
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	alerts, _ := kb.Alerts()
	if len(alerts) == 0 {
		t.Fatal("summary creation should fire the rule")
	}
	for _, a := range alerts {
		if a.Rule != "onPeriod" {
			t.Errorf("unexpected alert: %+v", a)
		}
	}
}

func TestSummariesDisabledErrors(t *testing.T) {
	kb, _ := newSimKB(t)
	if _, err := kb.Summaries(); !errors.Is(err, ErrSummariesDisabled) {
		t.Error("Summaries before enable")
	}
	if err := kb.Rollover(); !errors.Is(err, ErrSummariesDisabled) {
		t.Error("Rollover before enable")
	}
	if err := kb.RolloverIfDue(); !errors.Is(err, ErrSummariesDisabled) {
		t.Error("RolloverIfDue before enable")
	}
}

func TestAlertsOrderedByTime(t *testing.T) {
	kb, clock := newSimKB(t)
	_ = kb.InstallRule(trigger.Rule{
		Name:  "t",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "X"},
		Alert: "RETURN NEW.i AS i",
	})
	exec(t, kb, "CREATE (:X {i: 1})")
	clock.Advance(time.Hour)
	exec(t, kb, "CREATE (:X {i: 2})")
	alerts, _ := kb.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if !alerts[0].DateTime.Before(alerts[1].DateTime) {
		t.Error("alerts should be ordered oldest first")
	}
}

// TestPaperRunningExample wires the four hubs and rules R1, R2 and R4' of
// the paper end to end on a miniature COVID scenario.
func TestPaperRunningExample(t *testing.T) {
	kb, clock := newSimKB(t)
	for _, h := range []struct {
		name, desc string
		labels     []string
	}{
		{"E", "experimental", []string{"Mutation", "Effect"}},
		{"A", "analysis", []string{"Lab", "Sequence", "Variant"}},
		{"C", "clinical", []string{"Hospital", "Patient", "IcuPatient"}},
		{"R", "regional", []string{"Region"}},
	} {
		if err := kb.DefineHub(h.name, h.desc, h.labels...); err != nil {
			t.Fatal(err)
		}
	}
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		t.Fatal(err)
	}

	// R1 (Experimental, intra-hub, single-state): new mutation connected to
	// a critical effect.
	if err := kb.InstallRule(trigger.Rule{
		Name:  "R1",
		Hub:   "E",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Mutation"},
		Alert: `MATCH (NEW)-[:HasEffect]->(ef:Effect {level: 'critical'})
		        RETURN NEW.id AS mutation, ef.type AS effect`,
	}); err != nil {
		t.Fatal(err)
	}
	// R2 (Analysis, inter-hub, single-state): unassigned sequences per
	// region above threshold (threshold 2 for the miniature scenario).
	if err := kb.InstallRule(trigger.Rule{
		Name:  "R2",
		Hub:   "A",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Sequence"},
		Guard: "NEW.variant IS NULL",
		Alert: `MATCH (u:Sequence)-[:SequencedAt]->(:Lab)-[:LocatedIn]->(r:Region)
		        WHERE u.variant IS NULL
		        WITH r, count(u) AS unassigned WHERE unassigned > 2
		        RETURN r.name AS region, unassigned AS counter`,
	}); err != nil {
		t.Fatal(err)
	}
	// R5 (auxiliary, per the R4' walkthrough): each ICU admission records
	// the regional daily count.
	if err := kb.InstallRule(trigger.Rule{
		Name:  "R5",
		Hub:   "C",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "IcuPatient"},
		Alert: `MATCH (NEW)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r:Region)
		        MATCH (i:IcuPatient)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r)
		        RETURN r.name AS Region, count(i) AS IcuPatients`,
	}); err != nil {
		t.Fatal(err)
	}

	// Base graph.
	exec(t, kb, `CREATE (:Region {name: 'Lombardy', hub: 'R'})`)
	exec(t, kb, `MATCH (r:Region {name: 'Lombardy'})
	            CREATE (:Lab {name: 'L1', hub: 'A'})-[:LocatedIn]->(r),
	                   (:Hospital {name: 'H1', hub: 'C'})-[:LocatedIn]->(r)`)
	exec(t, kb, `CREATE (:Effect {type: 'vaccine escape', level: 'critical', hub: 'E'})`)

	// R1 fires on a mutation wired to the critical effect. The connection
	// must exist in the same transaction as the creation.
	exec(t, kb, `MATCH (ef:Effect {type: 'vaccine escape'})
	            CREATE (:Mutation {id: 'S:E484K', hub: 'E'})-[:HasEffect]->(ef)`)
	alerts, _ := kb.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "R1" {
		t.Fatalf("after mutation: %+v", alerts)
	}

	// R2: the first two unassigned sequences stay quiet; the third crosses
	// the threshold.
	for i := 0; i < 3; i++ {
		exec(t, kb, `MATCH (l:Lab {name: 'L1'})
		            CREATE (:Sequence {id: 'S`+string(rune('0'+i))+`', hub: 'A'})-[:SequencedAt]->(l)`)
	}
	alerts, _ = kb.Alerts()
	var r2 []Alert
	for _, a := range alerts {
		if a.Rule == "R2" {
			r2 = append(r2, a)
		}
	}
	if len(r2) != 1 {
		t.Fatalf("R2 alerts = %d, want 1 (only the third sequence crosses)", len(r2))
	}
	if r2[0].Props["region"].String() != `"Lombardy"` || r2[0].Props["counter"].String() != "3" {
		t.Errorf("R2 payload: %+v", r2[0].Props)
	}

	// R4' day simulation: 2 ICU patients today, roll over, 3 more tomorrow;
	// the R5 alerts land in distinct periods.
	exec(t, kb, `MATCH (h:Hospital {name: 'H1'})
	            CREATE (:IcuPatient {id: 'P1', hub: 'C'})-[:TreatedAt]->(h)`)
	exec(t, kb, `MATCH (h:Hospital {name: 'H1'})
	            CREATE (:IcuPatient {id: 'P2', hub: 'C'})-[:TreatedAt]->(h)`)
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, `MATCH (h:Hospital {name: 'H1'})
	            CREATE (:IcuPatient {id: 'P3', hub: 'C'})-[:TreatedAt]->(h)`)

	mgr, _ := kb.Summaries()
	var yesterdayMax, todayMax int64
	_ = kb.Store().View(func(tx *graph.Tx) error {
		prev, ok := mgr.Previous(tx, 1)
		if !ok {
			t.Fatal("no previous period")
		}
		for _, aid := range mgr.Alerts(tx, prev) {
			if rv, _ := tx.NodeProp(aid, "rule"); rv.String() == `"R5"` {
				if v, ok := tx.NodeProp(aid, "IcuPatients"); ok {
					if n, _ := v.AsInt(); n > yesterdayMax {
						yesterdayMax = n
					}
				}
			}
		}
		cur, _ := mgr.Current(tx)
		for _, aid := range mgr.Alerts(tx, cur) {
			if rv, _ := tx.NodeProp(aid, "rule"); rv.String() == `"R5"` {
				if v, ok := tx.NodeProp(aid, "IcuPatients"); ok {
					if n, _ := v.AsInt(); n > todayMax {
						todayMax = n
					}
				}
			}
		}
		return nil
	})
	if yesterdayMax != 2 || todayMax != 3 {
		t.Fatalf("ICU counts: yesterday=%d today=%d", yesterdayMax, todayMax)
	}
	// The R4' criticality predicate: (today-yesterday)/today > 0.1.
	if float64(todayMax-yesterdayMax)/float64(todayMax) <= 0.1 {
		t.Error("scenario should be critical per R4'")
	}

	// The rule classifications match §III-C.
	c1, _ := kb.ClassifyRule("R1")
	if c1.Scope != trigger.IntraHub || c1.State != trigger.SingleState {
		t.Errorf("R1 classification: %+v", c1)
	}
	c2, _ := kb.ClassifyRule("R2")
	if c2.Scope != trigger.InterHub || c2.State != trigger.SingleState {
		t.Errorf("R2 classification: %+v", c2)
	}
}

func TestAlertsEmptyStore(t *testing.T) {
	kb, _ := newSimKB(t)
	alerts, err := kb.Alerts()
	if err != nil || len(alerts) != 0 {
		t.Error("empty store alerts")
	}
}

func TestExecuteParseError(t *testing.T) {
	kb, _ := newSimKB(t)
	if _, err := kb.Execute("BOGUS", nil); err == nil || !strings.Contains(err.Error(), "cypher") {
		t.Errorf("parse error: %v", err)
	}
}

func TestCreateIndexAndFastCount(t *testing.T) {
	kb, _ := newSimKB(t)
	if err := kb.CreateIndex("Patient", "day"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		exec(t, kb, "CREATE (:Patient {day: 1})")
	}
	if n := queryInt(t, kb, "MATCH (p:Patient {day: 1}) RETURN count(p)"); n != 10 {
		t.Errorf("indexed count = %d", n)
	}
}

// TestFig4SchemaGovernsSummaries binds the paper's Fig. 4 EssentialSummary
// graph type (verbatim, in LOOSE mode so domain nodes coexist) and checks
// that the summary machinery produces exactly the structures it declares.
func TestFig4SchemaGovernsSummaries(t *testing.T) {
	kb, clock := newSimKB(t)
	if _, err := kb.ApplySchema(`
	CREATE GRAPH TYPE EssentialSummary LOOSE {
	  (summaryType: Summary {date DATE}),
	  (alertType: Alert {rule STRING, hub STRING, dateTime DATETIME, OPEN}),
	  (currentType: summaryType & Current),
	  (:summaryType)-[nextType: next]->(:summaryType),
	  (:summaryType)-[hasType: has]->(:alertType)
	  FOR (x:summaryType) EXCLUSIVE MANDATORY SINGLETON x.date,
	  FOR (x:alertType) EXCLUSIVE MANDATORY SINGLETON x.dateTime
	}`); err != nil {
		t.Fatal(err)
	}
	if err := kb.EnableSummaries(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	_ = kb.InstallRule(trigger.Rule{
		Name:  "watch",
		Hub:   "C",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Case"},
		Alert: "RETURN NEW.n AS n",
	})
	// Each alert needs a distinct dateTime (the Fig. 4 exclusive key), so
	// the clock advances between events.
	exec(t, kb, "CREATE (:Case {n: 1})")
	clock.Advance(time.Minute)
	exec(t, kb, "CREATE (:Case {n: 2})")
	clock.Advance(25 * time.Hour)
	if err := kb.Tick(); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, "CREATE (:Case {n: 3})")

	// Two alerts violating the exclusive dateTime key abort: without
	// advancing the clock, the second Case's alert collides.
	if _, err := kb.Execute("CREATE (:Case {n: 4}), (:Case {n: 5})", nil); err == nil {
		t.Error("two alerts with identical dateTime must violate the Fig. 4 key")
	}
	// The structure itself conforms: every Summary has a date, the chain
	// uses next, alerts hang off has edges.
	n := queryInt(t, kb, "MATCH (s:Summary) WHERE s.date IS NULL RETURN count(s)")
	if n != 0 {
		t.Error("summary without date")
	}
	if queryInt(t, kb, "MATCH (:Summary)-[:next]->(:Summary:Current) RETURN count(*)") != 1 {
		t.Error("next chain to Current")
	}
	if queryInt(t, kb, "MATCH (:Summary)-[:has]->(:Alert) RETURN count(*)") != 3 {
		t.Error("has edges")
	}
}

func TestInstallRuleTextOnKB(t *testing.T) {
	kb, _ := newSimKB(t)
	r, err := kb.InstallRuleText(`CREATE TRIGGER dsl ON HUB E
AFTER CREATE OF NODE Mutation
ALERT RETURN NEW.id AS mid`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "dsl" {
		t.Errorf("rule: %+v", r)
	}
	exec(t, kb, "CREATE (:Mutation {id: 'M'})")
	alerts, _ := kb.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "dsl" {
		t.Errorf("alerts: %+v", alerts)
	}
}

func TestCheckConfluenceOnKB(t *testing.T) {
	kb, _ := newSimKB(t)
	_ = kb.InstallRule(trigger.Rule{
		Name: "w1", Event: trigger.Event{Kind: trigger.CreateNode, Label: "X"},
		Action: "MATCH (r:Cfg) SET r.mode = 1",
	})
	_ = kb.InstallRule(trigger.Rule{
		Name: "w2", Event: trigger.Event{Kind: trigger.CreateNode, Label: "X"},
		Action: "MATCH (r:Cfg) SET r.mode = 2",
	})
	if warns := kb.CheckConfluence(); len(warns) != 1 {
		t.Errorf("confluence warnings: %v", warns)
	}
}

func TestSaveLoadGraphOnKB(t *testing.T) {
	kb, _ := newSimKB(t)
	exec(t, kb, "CREATE (:Keep {v: 1})-[:R]->(:Keep {v: 2})")
	var buf bytes.Buffer
	if err := kb.SaveGraph(&buf); err != nil {
		t.Fatal(err)
	}
	kb2, _ := newSimKB(t)
	if err := kb2.LoadGraph(&buf); err != nil {
		t.Fatal(err)
	}
	if n := queryInt(t, kb2, "MATCH (:Keep)-[:R]->(k:Keep) RETURN k.v"); n != 2 {
		t.Errorf("restored traversal: %d", n)
	}
}

func TestConcurrentExecutes(t *testing.T) {
	kb, _ := newSimKB(t)
	_ = kb.InstallRule(trigger.Rule{
		Name:  "cc",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Evt"},
		Alert: "RETURN NEW.i AS i",
	})
	const workers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := kb.Execute("CREATE (:Evt {i: $i})",
					map[string]value.Value{"i": value.Int(int64(w*each + i))}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != workers*each {
		t.Errorf("alerts = %d, want %d", len(alerts), workers*each)
	}
	if kb.GraphStats().Nodes != 2*workers*each { // events + alert nodes
		t.Errorf("nodes = %d", kb.GraphStats().Nodes)
	}
	// Rule stats agree.
	infos := kb.Rules()
	if infos[0].Stats.AlertNodes != int64(workers*each) {
		t.Errorf("rule stats: %+v", infos[0].Stats)
	}
}
