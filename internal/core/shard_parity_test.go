package core

// Sharded golden-corpus parity: every case of the shared Cypher corpus
// (internal/cypher/cyphertest) runs against a single-store KnowledgeBase and
// against a four-hub ShardedKB whose fixture includes knowledge bridges
// (LIVES_IN relationships spanning the people and places shards), and the
// two must produce identical results. Reads go through ShardedKB.Query —
// the cross-shard path over a MultiView — so bridge traversal, aggregated
// planner statistics and the per-store plan-variant cache are all exercised;
// writes go through ExecuteInHub on the owning hub. Entity identifiers
// differ between the two builds (sharded IDs carry the shard band in their
// high bits), so rows are compared after rank-normalizing Node()/Rel()
// renderings and final graph states are compared by an ID-free canonical
// form.

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/internal/cypher"
	"repro/internal/cypher/cyphertest"
	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/value"
)

// parityHubs is the sharded layout: three hubs own the fixture labels, the
// fourth catches labels created by write cases.
func parityHubs() []HubShard {
	return []HubShard{
		{Hub: "people", Description: "persons", Labels: []string{"Person", "Admin"}},
		{Hub: "places", Description: "cities", Labels: []string{"City"}},
		{Hub: "things", Description: "widgets", Labels: []string{"Widget"}},
		{Hub: "misc", Description: "everything else"},
	}
}

// parityWriteHub routes each write case to the hub whose shard holds the
// entities it matches (write transactions are single-shard).
var parityWriteHub = map[string]string{
	"create-basic":         "misc",
	"create-from-match":    "people",
	"create-unwind":        "misc",
	"merge-match-existing": "people",
	"merge-create-new":     "people",
	"merge-rel":            "people",
	"set-forms":            "people",
	"set-replace-props":    "places",
	"set-null-target":      "misc",
	"remove-forms":         "people",
	"delete-rel":           "people",
	"detach-delete":        "things",
	"foreach":              "places",
	"foreach-nested":       "misc",
	"write-then-read":      "misc",
}

// parityFixtureProps builds the corpus fixture's node property maps.
func parityPersonProps() []map[string]value.Value {
	return []map[string]value.Value{
		{"name": value.Str("Ada"), "age": value.Int(36), "score": value.Float(9.5)},
		{"name": value.Str("Bob"), "age": value.Int(41)},
		{"name": value.Str("Cyd"), "age": value.Int(29), "nick": value.Str("cy")},
		{"name": value.Str("Dee"), "age": value.Int(29)},
	}
}

func parityCityProps() []map[string]value.Value {
	return []map[string]value.Value{
		{"code": value.Str("LON"), "pop": value.Int(9000000)},
		{"code": value.Str("PAR"), "pop": value.Int(2100000)},
		{"code": value.Str("REY"), "pop": value.Int(130000)},
	}
}

// parityUnsharded builds the corpus fixture in a single-store knowledge base.
func parityUnsharded(t testing.TB) *KnowledgeBase {
	t.Helper()
	kb := New(Config{Clock: periodic.NewManualClock(cyphertest.Now)})
	for _, ix := range [][2]string{{"Person", "name"}, {"City", "code"}} {
		if err := kb.CreateIndex(ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}
	_, err := kb.WriteTx(func(tx *graph.Tx) error {
		var persons, cities []graph.NodeID
		for i, props := range parityPersonProps() {
			labels := []string{"Person"}
			if i == 2 { // Cyd is also an Admin
				labels = []string{"Person", "Admin"}
			}
			id, err := tx.CreateNode(labels, props)
			if err != nil {
				return err
			}
			persons = append(persons, id)
		}
		for _, props := range parityCityProps() {
			id, err := tx.CreateNode([]string{"City"}, props)
			if err != nil {
				return err
			}
			cities = append(cities, id)
		}
		ada, bob, cyd, dee := persons[0], persons[1], persons[2], persons[3]
		lon, par, rey := cities[0], cities[1], cities[2]
		rels := []struct {
			a, b  graph.NodeID
			typ   string
			props map[string]value.Value
		}{
			{ada, bob, "KNOWS", map[string]value.Value{"since": value.Int(2019)}},
			{bob, cyd, "KNOWS", map[string]value.Value{"since": value.Int(2021)}},
			{cyd, dee, "KNOWS", nil},
			{ada, cyd, "WORKS_WITH", map[string]value.Value{"hours": value.Int(12)}},
			{ada, lon, "LIVES_IN", nil},
			{bob, par, "LIVES_IN", nil},
			{cyd, par, "LIVES_IN", nil},
			{dee, rey, "LIVES_IN", nil},
			{lon, par, "ROUTE", map[string]value.Value{"km": value.Int(344)}},
			{par, rey, "ROUTE", map[string]value.Value{"km": value.Int(2237)}},
		}
		for _, r := range rels {
			if _, err := tx.CreateRel(r.a, r.b, r.typ, r.props); err != nil {
				return err
			}
		}
		for i := 0; i < 5; i++ {
			if _, err := tx.CreateNode([]string{"Widget"}, map[string]value.Value{"n": value.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

// paritySharded builds the same fixture across four shards: persons and
// their intra-hub relationships in people, cities and routes in places,
// widgets in things, and the four LIVES_IN relationships as knowledge
// bridges between people and places.
func paritySharded(t testing.TB) *ShardedKB {
	t.Helper()
	kb, err := NewSharded(Config{Clock: periodic.NewManualClock(cyphertest.Now)}, parityHubs())
	if err != nil {
		t.Fatal(err)
	}
	ss := kb.Store()
	// Cross-shard planning requires the index on every shard; per-shard
	// writes (MERGE on misc, for instance) need it locally anyway.
	for i := 0; i < ss.NumShards(); i++ {
		for _, ix := range [][2]string{{"Person", "name"}, {"City", "code"}} {
			if err := ss.Shard(i).CreateIndex(ix[0], ix[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	var persons, cities []graph.NodeID
	if _, err := kb.UpdateShard(0, func(tx *graph.Tx) error {
		for i, props := range parityPersonProps() {
			labels := []string{"Person"}
			if i == 2 { // Cyd is also an Admin
				labels = []string{"Person", "Admin"}
			}
			id, err := tx.CreateNode(labels, props)
			if err != nil {
				return err
			}
			persons = append(persons, id)
		}
		ada, bob, cyd, dee := persons[0], persons[1], persons[2], persons[3]
		if _, err := tx.CreateRel(ada, bob, "KNOWS", map[string]value.Value{"since": value.Int(2019)}); err != nil {
			return err
		}
		if _, err := tx.CreateRel(bob, cyd, "KNOWS", map[string]value.Value{"since": value.Int(2021)}); err != nil {
			return err
		}
		if _, err := tx.CreateRel(cyd, dee, "KNOWS", nil); err != nil {
			return err
		}
		_, err := tx.CreateRel(ada, cyd, "WORKS_WITH", map[string]value.Value{"hours": value.Int(12)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.UpdateShard(1, func(tx *graph.Tx) error {
		for _, props := range parityCityProps() {
			id, err := tx.CreateNode([]string{"City"}, props)
			if err != nil {
				return err
			}
			cities = append(cities, id)
		}
		if _, err := tx.CreateRel(cities[0], cities[1], "ROUTE", map[string]value.Value{"km": value.Int(344)}); err != nil {
			return err
		}
		_, err := tx.CreateRel(cities[1], cities[2], "ROUTE", map[string]value.Value{"km": value.Int(2237)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.UpdateShard(2, func(tx *graph.Tx) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.CreateNode([]string{"Widget"}, map[string]value.Value{"n": value.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := kb.UpdateBridgeShards(0, 1, func(bt *graph.BridgeTx) error {
		for i, city := range []graph.NodeID{cities[0], cities[1], cities[1], cities[2]} {
			if _, err := bt.CreateRel(persons[i], city, "LIVES_IN", nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return kb
}

// parityView is the read surface the normalizers need: the ReadView
// contract plus full relationship enumeration (both *graph.Tx and
// *graph.MultiView provide it).
type parityView interface {
	graph.ReadView
	AllRels() []graph.RelID
}

var (
	parityNodeTok  = regexp.MustCompile(`Node\((\d+)\)`)
	parityRelTok   = regexp.MustCompile(`Rel\((\d+)\)`)
	parityFloatTok = regexp.MustCompile(`-?\d+\.\d+(?:[eE][+-]?\d+)?`)
)

// parityNormalize rewrites entity IDs in a rendered row to their rank among
// the view's (sorted) live IDs, and rounds floats to 12 significant digits:
// sharded IDs carry the shard band, and shard-by-shard enumeration can
// accumulate float aggregates in a different order.
func parityNormalize(s string, v parityView) string {
	s = parityFloatTok.ReplaceAllStringFunc(s, func(tok string) string {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return tok
		}
		return strconv.FormatFloat(f, 'g', 12, 64)
	})
	nodes := v.AllNodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	nodeRank := make(map[string]int, len(nodes))
	for i, id := range nodes {
		nodeRank[fmt.Sprintf("%d", id)] = i
	}
	rels := v.AllRels()
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	relRank := make(map[string]int, len(rels))
	for i, id := range rels {
		relRank[fmt.Sprintf("%d", id)] = i
	}
	s = parityNodeTok.ReplaceAllStringFunc(s, func(tok string) string {
		raw := parityNodeTok.FindStringSubmatch(tok)[1]
		if r, ok := nodeRank[raw]; ok {
			return fmt.Sprintf("Node(#%d)", r)
		}
		return tok
	})
	return parityRelTok.ReplaceAllStringFunc(s, func(tok string) string {
		raw := parityRelTok.FindStringSubmatch(tok)[1]
		if r, ok := relRank[raw]; ok {
			return fmt.Sprintf("Rel(#%d)", r)
		}
		return tok
	})
}

func parityRows(res *cypher.Result, ordered bool, v parityView) []string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		s := "["
		for j, val := range r {
			if j > 0 {
				s += ", "
			}
			s += val.String()
		}
		rows[i] = parityNormalize(s+"]", v)
	}
	if !ordered {
		sort.Strings(rows)
	}
	return rows
}

// parityState renders the graph in an ID-free canonical form: each node is
// keyed by its sorted labels and properties, each relationship by the keys
// of its endpoints. The corpus keeps every node signature unique, which the
// helper asserts, so the form identifies the graph up to isomorphism. On a
// MultiView each bridge contributes exactly one line: it is outgoing from
// its start node only, regardless of which shard serves the lookup.
func parityState(t testing.TB, v parityView) []string {
	t.Helper()
	ids := v.AllNodes()
	key := make(map[graph.NodeID]string, len(ids))
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		labels, _ := v.NodeLabels(id)
		sort.Strings(labels)
		n, _ := v.Node(id)
		k := fmt.Sprintf("%v %s", labels, value.Map(n.Props).String())
		if seen[k] {
			t.Fatalf("ambiguous node signature %s: canonical state needs unique nodes", k)
		}
		seen[k] = true
		key[id] = k
	}
	var out []string
	for _, id := range ids {
		out = append(out, "n "+key[id])
		for _, h := range v.RelsOf(id, graph.Outgoing, nil) {
			r, _ := v.Rel(h.ID)
			out = append(out, fmt.Sprintf("r %s -[%s %s]-> %s",
				key[id], h.Type, value.Map(r.Props).String(), key[h.Other(id)]))
		}
	}
	sort.Strings(out)
	return out
}

type parityOutcome struct {
	columns []string
	rows    []string
	stats   string
	state   []string
}

func runParityUnsharded(t *testing.T, c cyphertest.Case) parityOutcome {
	t.Helper()
	kb := parityUnsharded(t)
	var out parityOutcome
	var res *cypher.Result
	var err error
	switch {
	case c.Write:
		res, err = kb.Execute(c.Query, c.Params)
	case c.Bind != nil:
		tx := kb.Store().Begin(graph.ReadOnly)
		defer tx.Rollback()
		res, err = cypher.Run(tx, c.Query, &cypher.Options{
			Params: c.Params, Bindings: c.Bind, Now: kb.Clock().Now})
	default:
		res, err = kb.Query(c.Query, c.Params)
	}
	if err != nil {
		t.Fatalf("%s (unsharded): %v", c.Name, err)
	}
	tx := kb.Store().Begin(graph.ReadOnly)
	defer tx.Rollback()
	out.columns = res.Columns
	out.rows = parityRows(res, c.Ordered, tx)
	if c.Write {
		out.stats = fmt.Sprintf("%+v", res.Stats)
		out.state = parityState(t, tx)
	}
	return out
}

func runParitySharded(t *testing.T, c cyphertest.Case) parityOutcome {
	t.Helper()
	kb := paritySharded(t)
	var out parityOutcome
	var res *cypher.Result
	var err error
	switch {
	case c.Write:
		hubName, ok := parityWriteHub[c.Name]
		if !ok {
			t.Fatalf("%s: write case has no hub routing; add it to parityWriteHub", c.Name)
		}
		res, _, err = kb.ExecuteInHub(hubName, c.Query, c.Params)
	case c.Bind != nil:
		v := kb.Store().View()
		defer v.Rollback()
		res, err = cypher.Run(v, c.Query, &cypher.Options{
			Params: c.Params, Bindings: c.Bind, Now: kb.Clock().Now})
	default:
		res, err = kb.Query(c.Query, c.Params)
	}
	if err != nil {
		t.Fatalf("%s (sharded): %v", c.Name, err)
	}
	v := kb.Store().View()
	defer v.Rollback()
	out.columns = res.Columns
	out.rows = parityRows(res, c.Ordered, v)
	if c.Write {
		out.stats = fmt.Sprintf("%+v", res.Stats)
		out.state = parityState(t, v)
	}
	return out
}

// TestShardedGoldenParity runs the full golden corpus against both builds
// and requires identical columns, rows, update counters and final state.
func TestShardedGoldenParity(t *testing.T) {
	for _, c := range cyphertest.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			want := runParityUnsharded(t, c)
			got := runParitySharded(t, c)
			if fmt.Sprintf("%v", got.columns) != fmt.Sprintf("%v", want.columns) {
				t.Errorf("columns: sharded %v unsharded %v", got.columns, want.columns)
			}
			if fmt.Sprintf("%v", got.rows) != fmt.Sprintf("%v", want.rows) {
				t.Errorf("rows:\n  sharded %v\nunsharded %v", got.rows, want.rows)
			}
			if got.stats != want.stats {
				t.Errorf("stats: sharded %s unsharded %s", got.stats, want.stats)
			}
			if fmt.Sprintf("%v", got.state) != fmt.Sprintf("%v", want.state) {
				t.Errorf("state:\n  sharded %v\nunsharded %v", got.state, want.state)
			}
		})
	}
}
