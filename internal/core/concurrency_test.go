package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/periodic"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
)

// TestTriggerReadsTriggeringTx: the rule engine runs inside the triggering
// transaction, so its guard and alert queries must see that transaction's
// uncommitted writes (read-your-writes) even though concurrent readers are
// served from the previous published snapshot.
func TestTriggerReadsTriggeringTx(t *testing.T) {
	kb, _ := newSimKB(t)
	if err := kb.InstallRule(trigger.Rule{
		Name:  "ryw",
		Hub:   "E",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Case"},
		Alert: "MATCH (c:Case) RETURN count(c) AS n",
	}); err != nil {
		t.Fatal(err)
	}

	rep := exec(t, kb, "CREATE (:Case {id: 'C1'})")
	if rep.AlertNodes != 1 {
		t.Fatalf("AlertNodes = %d, want 1", rep.AlertNodes)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(alerts))
	}
	// The alert query counted the Case created by its own (then
	// uncommitted) transaction.
	if n, _ := alerts[0].Props["n"].AsInt(); n != 1 {
		t.Fatalf("alert payload n = %d, want 1 (rule must see the triggering tx's writes)", n)
	}

	// A second create sees both cases from inside its transaction.
	exec(t, kb, "CREATE (:Case {id: 'C2'})")
	alerts, err = kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 2 {
		t.Fatalf("got %d alerts, want 2", len(alerts))
	}
	if n, _ := alerts[len(alerts)-1].Props["n"].AsInt(); n != 2 {
		t.Fatalf("second alert payload n = %d, want 2", n)
	}
}

// TestQueryDuringOpenWriteTx: a read-only query must complete — and see the
// last committed snapshot — while a write transaction is open and holding
// the write lock. Under the seed's single-RWMutex design this deadlocked.
func TestQueryDuringOpenWriteTx(t *testing.T) {
	kb, _ := newSimKB(t)
	exec(t, kb, "CREATE (:Person {name: 'pre'})")

	entered := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		<-entered
		res, err := kb.Query("MATCH (p:Person) RETURN count(p) AS n", nil)
		if err != nil {
			readerDone <- err
			return
		}
		v, _ := res.Value()
		if n, _ := v.AsInt(); n != 1 {
			readerDone <- fmt.Errorf("reader saw %d Person nodes mid-write, want 1 (committed state)", n)
			return
		}
		readerDone <- nil
	}()

	_, err := kb.WriteTx(func(tx *graph.Tx) error {
		if _, err := tx.CreateNode([]string{"Person"}, map[string]value.Value{
			"name": value.Str("mid"),
		}); err != nil {
			return err
		}
		close(entered)
		// Wait for the reader *while holding the write lock*: if reads
		// still went through that lock this would deadlock.
		select {
		case err := <-readerDone:
			return err
		case <-time.After(5 * time.Second):
			return fmt.Errorf("reader did not complete while the write transaction was open")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := queryInt(t, kb, "MATCH (p:Person) RETURN count(p) AS n"); n != 2 {
		t.Fatalf("after commit count(p) = %d, want 2", n)
	}
}

// TestForkDuringConcurrentWrites: forking (an O(dirty) snapshot grab) races
// against a stream of writes; each fork must be a consistent frozen copy
// that diverges independently.
func TestForkDuringConcurrentWrites(t *testing.T) {
	kb, _ := newSimKB(t)

	const writes = 100
	var wg sync.WaitGroup
	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if _, err := kb.Execute("CREATE (:Person {i: $i})",
				map[string]value.Value{"i": value.Int(int64(i))}); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	for f := 0; f < 5; f++ {
		fork, err := kb.Fork(periodic.NewManualClock(sim0))
		if err != nil {
			t.Fatal(err)
		}
		base := queryInt(t, fork, "MATCH (p:Person) RETURN count(p) AS n")
		if base < 0 || base > writes {
			t.Fatalf("fork saw %d Person nodes, want 0..%d", base, writes)
		}
		// The fork is frozen and writable independently of the source.
		if _, err := fork.Execute("CREATE (:Person {name: 'forked'})", nil); err != nil {
			t.Fatal(err)
		}
		if n := queryInt(t, fork, "MATCH (p:Person) RETURN count(p) AS n"); n != base+1 {
			t.Fatalf("fork count = %d after one insert, want %d", n, base+1)
		}
	}

	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatal(err)
	default:
	}
	if n := queryInt(t, kb, "MATCH (p:Person) RETURN count(p) AS n"); n != writes {
		t.Fatalf("source count = %d, want %d", n, writes)
	}
}

// TestCheckpointDuringConcurrentWriters: checkpoints race against committing
// writers; the cut barrier must keep snapshot and log consistent so the
// recovered state equals the sum of all committed transactions.
func TestCheckpointDuringConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: periodic.NewManualClock(sim0)}
	kb, _, err := OpenDurable(dir, cfg, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, err := kb.Execute("CREATE (:Person {w: $w, i: $i})", map[string]value.Value{
					"w": value.Int(int64(w)), "i": value.Int(int64(i)),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Checkpoint repeatedly while the writers run.
	for c := 0; c < 5; c++ {
		if err := kb.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", c, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := kb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}

	kb2, _, err := OpenDurable(dir, cfg, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	if n := queryInt(t, kb2, "MATCH (p:Person) RETURN count(p) AS n"); n != workers*perWorker {
		t.Fatalf("recovered %d Person nodes, want %d", n, workers*perWorker)
	}
}

// TestDurableGroupCommit: concurrent committers on a durable knowledge base
// with Fsync: always share batched fsyncs — the group-commit counters show
// no more syncs than transactions — and everything waited on survives
// reopen.
func TestDurableGroupCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: periodic.NewManualClock(sim0)}
	kb, _, err := OpenDurable(dir, cfg, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, err := kb.Execute("CREATE (:Event {w: $w, i: $i})", map[string]value.Value{
					"w": value.Int(int64(w)), "i": value.Int(int64(i)),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Counter registration is idempotent: resolving the names again returns
	// the live instruments.
	reg := kb.Metrics()
	txs := reg.Counter(mWALGroupTxs, "").Value()
	syncs := reg.Counter(mWALGroupSyncs, "").Value()
	if txs != workers*perWorker {
		t.Fatalf("%s = %d, want %d", mWALGroupTxs, txs, workers*perWorker)
	}
	if syncs < 1 || syncs > txs {
		t.Fatalf("%s = %d for %d txs, want 1..txs", mWALGroupSyncs, syncs, txs)
	}
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}

	kb2, _, err := OpenDurable(dir, cfg, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	if n := queryInt(t, kb2, "MATCH (e:Event) RETURN count(e) AS n"); n != workers*perWorker {
		t.Fatalf("recovered %d Event nodes, want %d", n, workers*perWorker)
	}
}
