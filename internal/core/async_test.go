package core

// Behavior tests for the asynchronous alert pipeline: deferral and sync
// fallback, per-rule ordered delivery, shed and block backpressure, orphaned
// rules, cascading from async alerts, and queue invisibility to rule
// matching. Crash recovery is covered separately in async_fault_test.go.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/trigger"
	"repro/internal/value"
)

func installAsyncEcho(t *testing.T, kb *KnowledgeBase, name string) {
	t.Helper()
	err := kb.InstallRule(trigger.Rule{
		Name:  name,
		Hub:   "H",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Reading"},
		Alert: "RETURN NEW.v AS v",
		Phase: trigger.AfterAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func drainAsync(t *testing.T, kb *KnowledgeBase) {
	t.Helper()
	if err := kb.WaitAsyncIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncFallbackWithoutPipeline(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	rep := exec(t, kb, "CREATE (:Reading {v: 1})")
	if rep.AsyncEnqueued != 0 {
		t.Fatalf("enqueued without pipeline: %+v", rep)
	}
	if n := queryInt(t, kb, "MATCH (a:Alert) RETURN count(a) AS n"); n != 1 {
		t.Fatalf("sync fallback alerts = %d, want 1", n)
	}
	if kb.AsyncDepth() != 0 {
		t.Fatalf("queue depth = %d, want 0", kb.AsyncDepth())
	}
}

func TestAsyncDeferralAndDrain(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	// Enqueue-only: the queue freezes so the deferred state is observable.
	if err := kb.StartAsync(AsyncOptions{Workers: -1}); err != nil {
		t.Fatal(err)
	}
	rep := exec(t, kb, "CREATE (:Reading {v: 7})")
	if rep.AsyncEnqueued != 1 || rep.AsyncShed != 0 {
		t.Fatalf("report = %+v, want 1 enqueued", rep)
	}
	if n := queryInt(t, kb, "MATCH (a:Alert) RETURN count(a) AS n"); n != 0 {
		t.Fatalf("alerts before drain = %d, want 0", n)
	}
	if kb.AsyncDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", kb.AsyncDepth())
	}
	if err := kb.StartAsync(AsyncOptions{}); err != ErrAsyncRunning {
		t.Fatalf("double StartAsync = %v, want ErrAsyncRunning", err)
	}

	// Restart with workers: the pending entry drains and materializes.
	kb.StopAsync()
	if err := kb.StartAsync(AsyncOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	drainAsync(t, kb)
	if n := queryInt(t, kb, "MATCH (a:Alert) RETURN count(a) AS n"); n != 1 {
		t.Fatalf("alerts after drain = %d, want 1", n)
	}
	if kb.AsyncDepth() != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", kb.AsyncDepth())
	}
	if got := kb.asyncM.recovered.Value(); got != 1 {
		t.Fatalf("recovered counter = %d, want 1 (entry queued before restart)", got)
	}
	// The alert carries the rule's mandatory props and the echoed column.
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "echo" || alerts[0].Hub != "H" {
		t.Fatalf("alerts = %+v", alerts)
	}
	if v, _ := alerts[0].Props["v"].AsInt(); v != 7 {
		t.Fatalf("alert payload v = %v, want 7", alerts[0].Props["v"])
	}
}

func TestAsyncPerRuleOrderedDelivery(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echoA")
	err := kb.InstallRule(trigger.Rule{
		Name:  "echoB",
		Hub:   "H",
		Event: trigger.Event{Kind: trigger.CreateNode, Label: "Reading"},
		Alert: "RETURN NEW.v AS v",
		Phase: trigger.AfterAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.StartAsync(AsyncOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	const n = 50
	for i := 0; i < n; i++ {
		exec(t, kb, fmt.Sprintf("CREATE (:Reading {v: %d})", i))
	}
	drainAsync(t, kb)
	// Alert node ids are assigned in creation order, so per rule the echoed
	// payloads must ascend when sorted by id — regardless of which of the 4
	// workers ran which rule.
	for _, rule := range []string{"echoA", "echoB"} {
		alerts, err := kb.AlertsAfter(0)
		if err != nil {
			t.Fatal(err)
		}
		last := int64(-1)
		seen := 0
		for _, a := range alerts {
			if a.Rule != rule {
				continue
			}
			v, _ := a.Props["v"].AsInt()
			if v <= last {
				t.Fatalf("rule %s: alert order violated: %d after %d", rule, v, last)
			}
			last = v
			seen++
		}
		if seen != n {
			t.Fatalf("rule %s: %d alerts, want %d", rule, seen, n)
		}
	}
}

func TestAsyncShedBackpressure(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	err := kb.StartAsync(AsyncOptions{
		Workers: -1, QueueLimit: 3, Backpressure: ShedOnFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for i := 0; i < 10; i++ {
		rep := exec(t, kb, fmt.Sprintf("CREATE (:Reading {v: %d})", i))
		shed += rep.AsyncShed
	}
	if kb.AsyncDepth() != 3 {
		t.Fatalf("queue depth = %d, want 3 (the limit)", kb.AsyncDepth())
	}
	if shed != 7 {
		t.Fatalf("reported shed = %d, want 7", shed)
	}
	if got := kb.asyncM.shed.Value(); got != 7 {
		t.Fatalf("shed counter = %d, want 7", got)
	}
	if got := kb.asyncM.enqueued.Value(); got != 3 {
		t.Fatalf("enqueued counter = %d, want 3", got)
	}
}

func TestAsyncBlockBackpressure(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	err := kb.StartAsync(AsyncOptions{
		Workers: 1, QueueLimit: 1, Backpressure: BlockOnFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	const n = 5
	for i := 0; i < n; i++ {
		exec(t, kb, fmt.Sprintf("CREATE (:Reading {v: %d})", i))
	}
	drainAsync(t, kb)
	// Nothing shed: every activation materialized.
	if got := kb.asyncM.shed.Value(); got != 0 {
		t.Fatalf("shed counter = %d, want 0", got)
	}
	if got := queryInt(t, kb, "MATCH (a:Alert) RETURN count(a) AS n"); got != n {
		t.Fatalf("alerts = %d, want %d", got, n)
	}
	// With limit 1, each committing writer found the queue full and waited.
	if got := kb.asyncM.blockSeconds.Snapshot().Count; got < 1 {
		t.Fatalf("block histogram count = %d, want >= 1", got)
	}
}

func TestAsyncOrphanedRuleDiscarded(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	if err := kb.StartAsync(AsyncOptions{Workers: -1}); err != nil {
		t.Fatal(err)
	}
	exec(t, kb, "CREATE (:Reading {v: 1})")
	if err := kb.DropRule("echo"); err != nil {
		t.Fatal(err)
	}
	kb.StopAsync()
	if err := kb.StartAsync(AsyncOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	drainAsync(t, kb)
	if kb.AsyncDepth() != 0 {
		t.Fatalf("queue depth = %d, want 0 (orphan discarded)", kb.AsyncDepth())
	}
	if got := kb.asyncM.orphaned.Value(); got != 1 {
		t.Fatalf("orphaned counter = %d, want 1", got)
	}
	if n := queryInt(t, kb, "MATCH (a:Alert) RETURN count(a) AS n"); n != 0 {
		t.Fatalf("alerts = %d, want 0", n)
	}
}

func TestAsyncAlertCascades(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	// A synchronous rule reacting to the async rule's Alert nodes: the
	// worker's follow-up transaction must cascade through Process.
	err := kb.InstallRule(trigger.Rule{
		Name:   "onAlert",
		Hub:    "H",
		Event:  trigger.Event{Kind: trigger.CreateNode, Label: "Alert"},
		Action: "CREATE (:Escalation {src: 'async'})",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.StartAsync(AsyncOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	exec(t, kb, "CREATE (:Reading {v: 1})")
	drainAsync(t, kb)
	if n := queryInt(t, kb, "MATCH (e:Escalation) RETURN count(e) AS n"); n != 1 {
		t.Fatalf("escalations = %d, want 1 (cascade from async alert)", n)
	}
}

func TestAsyncQueueInvisibleToRules(t *testing.T) {
	// A wildcard create/delete observer must not see PendingAlert
	// bookkeeping nodes — neither their creation in the triggering
	// transaction nor the worker's later deletion. Its guard never passes,
	// so GuardChecks counts exactly the occurrences dispatched to it.
	wildcardChecks := func(kb *KnowledgeBase) int64 {
		var total int64
		for _, info := range kb.Rules() {
			if info.Name == "seesCreates" || info.Name == "seesDeletes" {
				total += info.Stats.GuardChecks
			}
		}
		return total
	}
	installObservers := func(kb *KnowledgeBase) {
		for name, kind := range map[string]trigger.EventKind{
			"seesCreates": trigger.CreateNode,
			"seesDeletes": trigger.DeleteNode,
		} {
			if err := kb.InstallRule(trigger.Rule{
				Name:  name,
				Hub:   "H",
				Event: trigger.Event{Kind: kind},
				Guard: "1 = 2",
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	installObservers(kb)
	if err := kb.StartAsync(AsyncOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	exec(t, kb, "CREATE (:Reading {v: 1})")
	drainAsync(t, kb)
	withPipeline := wildcardChecks(kb)

	ref, _ := newSimKB(t)
	installAsyncEcho(t, ref, "echo")
	installObservers(ref)
	exec(t, ref, "CREATE (:Reading {v: 1})") // sync fallback, no queue nodes
	if withoutPipeline := wildcardChecks(ref); withPipeline != withoutPipeline {
		t.Fatalf("wildcard rules saw queue bookkeeping: %d checks with pipeline, %d without",
			withPipeline, withoutPipeline)
	}
}

func TestAsyncBindingRoundTrip(t *testing.T) {
	in := trigger.Binding{
		"NEW":  value.Node(42),
		"KEY":  value.Str("temp"),
		"WHEN": value.DateTime(sim0),
		"OLD":  value.Map(map[string]value.Value{"v": value.Int(3)}),
	}
	enc, err := trigger.EncodeBinding(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := trigger.DecodeBinding(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost keys: %v", out)
	}
	if id, ok := out["NEW"].EntityID(); !ok || id != 42 {
		t.Fatalf("NEW = %v, want node 42", out["NEW"])
	}
	if dt, _ := out["WHEN"].AsDateTime(); !dt.Equal(sim0) {
		t.Fatalf("WHEN = %v, want %v", out["WHEN"], sim0)
	}
}

func TestAsyncConcurrentWritersExactlyOnce(t *testing.T) {
	kb, _ := newSimKB(t)
	installAsyncEcho(t, kb, "echo")
	if err := kb.StartAsync(AsyncOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer kb.StopAsync()
	const writers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := kb.Execute(
					fmt.Sprintf("CREATE (:Reading {v: %d})", w*per+i), nil); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	drainAsync(t, kb)
	if n := queryInt(t, kb, "MATCH (a:Alert) RETURN count(a) AS n"); n != writers*per {
		t.Fatalf("alerts = %d, want %d (exactly one per activation)", n, writers*per)
	}
}
