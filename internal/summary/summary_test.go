package summary

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

var day0 = time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)

func day(n int) time.Time { return day0.Add(time.Duration(n) * 24 * time.Hour) }

func TestEnsureCurrentCreatesFirstSummary(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	_ = s.Update(func(tx *graph.Tx) error {
		if _, ok := m.Current(tx); ok {
			t.Error("empty store should have no current")
		}
		id, err := m.EnsureCurrent(tx, day(0))
		if err != nil {
			return err
		}
		if !tx.NodeHasLabel(id, "Summary") || !tx.NodeHasLabel(id, "Current") {
			t.Error("first summary labels")
		}
		if d, ok := m.Date(tx, id); !ok || !d.Equal(day(0)) {
			t.Error("first summary date")
		}
		// Idempotent.
		id2, err := m.EnsureCurrent(tx, day(0).Add(time.Hour))
		if err != nil {
			return err
		}
		if id2 != id {
			t.Error("EnsureCurrent must not duplicate")
		}
		return nil
	})
}

func TestRolloverMovesCurrent(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	var first, second graph.NodeID
	_ = s.Update(func(tx *graph.Tx) error {
		var err error
		first, err = m.EnsureCurrent(tx, day(0))
		if err != nil {
			return err
		}
		second, err = m.Rollover(tx, day(1))
		return err
	})
	_ = s.View(func(tx *graph.Tx) error {
		if tx.NodeHasLabel(first, "Current") {
			t.Error("previous summary must lose Current")
		}
		if !tx.NodeHasLabel(second, "Current") {
			t.Error("new summary must be Current")
		}
		rels := tx.RelsOf(first, graph.Outgoing, []string{"next"})
		if len(rels) != 1 || rels[0].End != second {
			t.Error("next chain")
		}
		if cur, ok := m.Current(tx); !ok || cur != second {
			t.Error("Current lookup")
		}
		return nil
	})
}

func TestRolloverIfDue(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	_ = s.Update(func(tx *graph.Tx) error {
		if _, err := m.EnsureCurrent(tx, day(0)); err != nil {
			return err
		}
		// 12 hours later: not due (Fig. 8's 24h check).
		rolled, _, err := m.RolloverIfDue(tx, day(0).Add(12*time.Hour))
		if err != nil {
			return err
		}
		if rolled {
			t.Error("should not roll before the period elapses")
		}
		// 24 hours later: due.
		rolled, cur, err := m.RolloverIfDue(tx, day(1))
		if err != nil {
			return err
		}
		if !rolled {
			t.Error("should roll at the period boundary")
		}
		if d, _ := m.Date(tx, cur); !d.Equal(day(1)) {
			t.Error("new current date")
		}
		return nil
	})
}

func TestChainAndPrevious(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	ids := make([]graph.NodeID, 4)
	_ = s.Update(func(tx *graph.Tx) error {
		var err error
		ids[0], err = m.EnsureCurrent(tx, day(0))
		if err != nil {
			return err
		}
		for i := 1; i < 4; i++ {
			ids[i], err = m.Rollover(tx, day(i))
			if err != nil {
				return err
			}
		}
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		chain := m.Chain(tx)
		if len(chain) != 4 {
			t.Fatalf("chain length = %d", len(chain))
		}
		for i := range chain {
			if chain[i] != ids[i] {
				t.Errorf("chain[%d] = %d, want %d", i, chain[i], ids[i])
			}
		}
		if prev, ok := m.Previous(tx, 1); !ok || prev != ids[2] {
			t.Error("Previous(1)")
		}
		if prev, ok := m.Previous(tx, 3); !ok || prev != ids[0] {
			t.Error("Previous(3)")
		}
		if _, ok := m.Previous(tx, 4); ok {
			t.Error("Previous past the head should fail")
		}
		return nil
	})
}

func TestPreviousOnEmpty(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	_ = s.View(func(tx *graph.Tx) error {
		if _, ok := m.Previous(tx, 1); ok {
			t.Error("Previous on empty structure")
		}
		if m.Chain(tx) != nil {
			t.Error("Chain on empty structure")
		}
		return nil
	})
}

// makeAlert creates an alert-like node and attaches it to the current
// summary, mimicking the rule engine's behaviour.
func makeAlert(t *testing.T, tx *graph.Tx, m *Manager, now time.Time, rule, region string, count int64) graph.NodeID {
	t.Helper()
	id, err := tx.CreateNode([]string{"Alert"}, map[string]value.Value{
		"rule":        value.Str(rule),
		"Region":      value.Str(region),
		"IcuPatients": value.Int(count),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachAlert(tx, id, now); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAttachAlertAndAlerts(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	var a1, a2 graph.NodeID
	_ = s.Update(func(tx *graph.Tx) error {
		a1 = makeAlert(t, tx, m, day(0), "R5", "Lombardy", 10)
		a2 = makeAlert(t, tx, m, day(0), "R5", "Veneto", 4)
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		cur, _ := m.Current(tx)
		alerts := m.Alerts(tx, cur)
		if len(alerts) != 2 || alerts[0] != a1 || alerts[1] != a2 {
			t.Errorf("alerts = %v", alerts)
		}
		return nil
	})
}

// TestR4PrimeScenario reproduces the paper's R4' walkthrough: daily R5
// alerts record regional ICU counts; yesterday's count is read from the
// previous summary.
func TestR4PrimeScenario(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	_ = s.Update(func(tx *graph.Tx) error {
		makeAlert(t, tx, m, day(0), "R5", "Lombardy", 100)
		if _, err := m.Rollover(tx, day(1)); err != nil {
			return err
		}
		makeAlert(t, tx, m, day(1), "R5", "Lombardy", 120)
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		prev, ok := m.Previous(tx, 1)
		if !ok {
			t.Fatal("no previous summary")
		}
		alerts := m.Alerts(tx, prev)
		if len(alerts) != 1 {
			t.Fatalf("yesterday's alerts = %d", len(alerts))
		}
		v, _ := tx.NodeProp(alerts[0], "IcuPatients")
		yesterday, _ := v.AsInt()
		if yesterday != 100 {
			t.Errorf("yesterday ICU = %d", yesterday)
		}
		// Today's value: 120; increase (120-100)/120 > 0.1 → critical.
		increase := float64(120-yesterday) / 120.0
		if increase <= 0.1 {
			t.Error("scenario should be critical")
		}
		return nil
	})
}

func TestWindowAndMovingAverage(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	counts := []int64{100, 120, 90, 130}
	_ = s.Update(func(tx *graph.Tx) error {
		for i, c := range counts {
			if i > 0 {
				if _, err := m.Rollover(tx, day(i)); err != nil {
					return err
				}
			}
			makeAlert(t, tx, m, day(i), "R5", "Lombardy", c)
			// A second region must not pollute the filtered window.
			makeAlert(t, tx, m, day(i), "R5", "Veneto", 1)
		}
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		f := WindowFilter{
			Rule:  "R5",
			Prop:  "IcuPatients",
			Where: map[string]value.Value{"Region": value.Str("Lombardy")},
		}
		win := m.Window(tx, 3, f)
		if len(win) != 3 {
			t.Fatalf("window size = %d", len(win))
		}
		// Last three days: 120, 90, 130.
		want := []int64{120, 90, 130}
		for i, w := range want {
			if got, _ := win[i].AsInt(); got != w {
				t.Errorf("window[%d] = %s, want %d", i, win[i], w)
			}
		}
		avg, ok := m.MovingAverage(tx, 3, f)
		if !ok || avg != (120+90+130)/3.0 {
			t.Errorf("moving average = %v (ok=%v)", avg, ok)
		}
		// A filter matching nothing yields NULLs and no average.
		none := WindowFilter{Rule: "R9", Prop: "IcuPatients"}
		if _, ok := m.MovingAverage(tx, 3, none); ok {
			t.Error("average over empty window")
		}
		return nil
	})
}

func TestWindowWiderThanChain(t *testing.T) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	_ = s.Update(func(tx *graph.Tx) error {
		makeAlert(t, tx, m, day(0), "R5", "Lombardy", 7)
		return nil
	})
	_ = s.View(func(tx *graph.Tx) error {
		win := m.Window(tx, 10, WindowFilter{Rule: "R5", Prop: "IcuPatients"})
		if len(win) != 1 {
			t.Errorf("window should clamp to chain length, got %d", len(win))
		}
		return nil
	})
}

func BenchmarkRolloverAndAttach(b *testing.B) {
	s := graph.NewStore()
	m := New(24 * time.Hour)
	tx := s.Begin(graph.ReadWrite)
	defer tx.Rollback()
	if _, err := m.EnsureCurrent(tx, day(0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := tx.CreateNode([]string{"Alert"}, map[string]value.Value{
			"rule": value.Str("R"), "IcuPatients": value.Int(int64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.AttachAlert(tx, id, day(0)); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if _, err := m.Rollover(tx, day(i/1000+1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestCustomVocabulary(t *testing.T) {
	s := graph.NewStore()
	m := &Manager{
		Period:       time.Hour,
		SummaryLabel: "Periodo",
		CurrentLabel: "Corrente",
		NextRelType:  "successivo",
		HasRelType:   "contiene",
		DateProp:     "data",
	}
	_ = s.Update(func(tx *graph.Tx) error {
		first, err := m.EnsureCurrent(tx, day(0))
		if err != nil {
			return err
		}
		if !tx.NodeHasLabel(first, "Periodo") || !tx.NodeHasLabel(first, "Corrente") {
			t.Error("custom labels")
		}
		if _, ok := tx.NodeProp(first, "data"); !ok {
			t.Error("custom date prop")
		}
		second, err := m.Rollover(tx, day(0).Add(time.Hour))
		if err != nil {
			return err
		}
		rels := tx.RelsOf(first, graph.Outgoing, []string{"successivo"})
		if len(rels) != 1 || rels[0].End != second {
			t.Error("custom next rel")
		}
		alert, _ := tx.CreateNode([]string{"Alert"}, nil)
		if err := m.AttachAlert(tx, alert, day(0).Add(time.Hour)); err != nil {
			return err
		}
		if got := m.Alerts(tx, second); len(got) != 1 || got[0] != alert {
			t.Error("custom has rel")
		}
		return nil
	})
}
