// Package summary implements the paper's Essential Summary (§III-D): an
// auxiliary graph structure that clusters Alert nodes by period of
// observation, giving reactive rules access to historical states without
// transactional OLD/NEW transition variables.
//
// Each period is represented by a Summary node carrying a date property;
// summaries are chained oldest→newest by next relationships, the newest
// also carries the Current label, and alert nodes attach to the summary of
// their period via has relationships (Fig. 4 and Fig. 5).
//
// # Lifecycle
//
// The structure is created lazily: the first alert (or the first
// RolloverIfDue call) creates the initial Summary node via EnsureCurrent,
// dated at that moment. From then on RolloverIfDue — typically driven by a
// periodic scheduler task at a fraction of the period, mirroring Fig. 8's
// hourly check for a 24-hour period — closes the current period once it has
// elapsed: Rollover creates a new Summary node, links it with a next
// relationship and moves the Current label. Note the consequence for tests
// and simulations: after an idle gap the first check re-anchors the chain
// rather than closing a period, so a rollover is observed only at the
// second period boundary.
//
// A Manager holds only configuration (period length and the label/type
// vocabulary); all state lives in the graph, so it is safe to share across
// goroutines as long as the calls run inside graph transactions, which
// serialize writes. Window queries (Window, Chain, Alerts) give rules and
// ad-hoc analysis access to the per-period alert history; rollover counts
// and durations are exported as rkm_summary_* metrics (see
// OBSERVABILITY.md).
package summary

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// Defaults for the Essential Summary vocabulary.
const (
	DefaultSummaryLabel = "Summary"
	DefaultCurrentLabel = "Current"
	DefaultNextRelType  = "next"
	DefaultHasRelType   = "has"
	DefaultDateProp     = "date"
)

// ErrNoCurrent is returned when the Essential Summary has not been
// initialized yet.
var ErrNoCurrent = errors.New("summary: no current summary node")

// Manager maintains the Essential Summary structure inside graph
// transactions. The zero value is not usable; construct with New.
type Manager struct {
	// Period is the length of one observation period (e.g. 24h).
	Period time.Duration
	// Vocabulary; all default to the package constants.
	SummaryLabel string
	CurrentLabel string
	NextRelType  string
	HasRelType   string
	DateProp     string
}

// New returns a manager with the default vocabulary and the given period.
func New(period time.Duration) *Manager {
	return &Manager{
		Period:       period,
		SummaryLabel: DefaultSummaryLabel,
		CurrentLabel: DefaultCurrentLabel,
		NextRelType:  DefaultNextRelType,
		HasRelType:   DefaultHasRelType,
		DateProp:     DefaultDateProp,
	}
}

// Current returns the Current summary node, if the structure exists.
func (m *Manager) Current(tx *graph.Tx) (graph.NodeID, bool) {
	ids := tx.NodesByLabel(m.CurrentLabel)
	for _, id := range ids {
		if tx.NodeHasLabel(id, m.SummaryLabel) {
			return id, true
		}
	}
	return 0, false
}

// EnsureCurrent returns the Current summary node, creating the first
// summary of the chain (dated now) if none exists.
func (m *Manager) EnsureCurrent(tx *graph.Tx, now time.Time) (graph.NodeID, error) {
	if id, ok := m.Current(tx); ok {
		return id, nil
	}
	id, err := tx.CreateNode([]string{m.SummaryLabel, m.CurrentLabel},
		map[string]value.Value{m.DateProp: value.DateTime(now)})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// Date returns the date property of a summary node.
func (m *Manager) Date(tx *graph.Tx, id graph.NodeID) (time.Time, bool) {
	v, ok := tx.NodeProp(id, m.DateProp)
	if !ok {
		return time.Time{}, false
	}
	return v.AsDateTime()
}

// RolloverIfDue implements the periodic check of Fig. 8: when at least one
// Period has elapsed since the Current summary's date, a new summary node
// is created, chained after the previous one, and the Current label moves.
// It returns whether a rollover happened and the identifier of the (new or
// unchanged) current node.
func (m *Manager) RolloverIfDue(tx *graph.Tx, now time.Time) (bool, graph.NodeID, error) {
	cur, err := m.EnsureCurrent(tx, now)
	if err != nil {
		return false, 0, err
	}
	date, ok := m.Date(tx, cur)
	if !ok {
		return false, 0, fmt.Errorf("summary: current node %d lacks %s", cur, m.DateProp)
	}
	if now.Sub(date) < m.Period {
		return false, cur, nil
	}
	newCur, err := m.Rollover(tx, now)
	if err != nil {
		return false, 0, err
	}
	return true, newCur, nil
}

// Rollover unconditionally closes the current period: it creates a new
// summary node dated now, links (previous)-[:next]->(new), moves the
// Current label, and returns the new current node.
func (m *Manager) Rollover(tx *graph.Tx, now time.Time) (graph.NodeID, error) {
	prev, err := m.EnsureCurrent(tx, now)
	if err != nil {
		return 0, err
	}
	newCur, err := tx.CreateNode([]string{m.SummaryLabel, m.CurrentLabel},
		map[string]value.Value{m.DateProp: value.DateTime(now)})
	if err != nil {
		return 0, err
	}
	if _, err := tx.CreateRel(prev, newCur, m.NextRelType, nil); err != nil {
		return 0, err
	}
	if err := tx.RemoveLabel(prev, m.CurrentLabel); err != nil {
		return 0, err
	}
	return newCur, nil
}

// AttachAlert links an alert node to the current summary with a has
// relationship, creating the first summary if the structure is empty. This
// is the hook the rule engine calls for every produced alert node.
func (m *Manager) AttachAlert(tx *graph.Tx, alert graph.NodeID, now time.Time) error {
	cur, err := m.EnsureCurrent(tx, now)
	if err != nil {
		return err
	}
	_, err = tx.CreateRel(cur, alert, m.HasRelType, nil)
	return err
}

// Previous walks k steps back from the Current node along incoming next
// relationships (k=1 is "yesterday's" summary).
func (m *Manager) Previous(tx *graph.Tx, k int) (graph.NodeID, bool) {
	cur, ok := m.Current(tx)
	if !ok {
		return 0, false
	}
	for i := 0; i < k; i++ {
		rels := tx.RelsOf(cur, graph.Incoming, []string{m.NextRelType})
		if len(rels) == 0 {
			return 0, false
		}
		cur = rels[0].Start
	}
	return cur, true
}

// Chain returns the summary chain from oldest to current.
func (m *Manager) Chain(tx *graph.Tx) []graph.NodeID {
	cur, ok := m.Current(tx)
	if !ok {
		return nil
	}
	var rev []graph.NodeID
	for {
		rev = append(rev, cur)
		rels := tx.RelsOf(cur, graph.Incoming, []string{m.NextRelType})
		if len(rels) == 0 {
			break
		}
		cur = rels[0].Start
	}
	out := make([]graph.NodeID, len(rev))
	for i, id := range rev {
		out[len(rev)-1-i] = id
	}
	return out
}

// Alerts returns the alert nodes attached to a summary node, sorted by
// identifier for determinism.
func (m *Manager) Alerts(tx *graph.Tx, summaryNode graph.NodeID) []graph.NodeID {
	rels := tx.RelsOf(summaryNode, graph.Outgoing, []string{m.HasRelType})
	out := make([]graph.NodeID, 0, len(rels))
	for _, r := range rels {
		out = append(out, r.End)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WindowFilter selects alerts inside Window by property equality; zero
// values mean "any".
type WindowFilter struct {
	Rule string // match the alert's rule property
	Prop string // property to extract
	// Extra equality constraints on alert properties.
	Where map[string]value.Value
}

// Window reads one property from the alerts of the last k periods
// (including the current one), oldest first; periods without a matching
// alert contribute a NULL. This supports the moving-average style analyses
// §III-D describes.
func (m *Manager) Window(tx *graph.Tx, k int, f WindowFilter) []value.Value {
	chain := m.Chain(tx)
	if len(chain) > k {
		chain = chain[len(chain)-k:]
	}
	out := make([]value.Value, 0, len(chain))
	for _, sid := range chain {
		v := value.Null
		for _, aid := range m.Alerts(tx, sid) {
			if f.Rule != "" {
				rv, ok := tx.NodeProp(aid, "rule")
				if !ok {
					continue
				}
				if s, _ := rv.AsString(); s != f.Rule {
					continue
				}
			}
			match := true
			for key, want := range f.Where {
				got, ok := tx.NodeProp(aid, key)
				if !ok {
					match = false
					break
				}
				if eq, known := value.Equal(got, want); !known || !eq {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if pv, ok := tx.NodeProp(aid, f.Prop); ok {
				v = pv
				break
			}
		}
		out = append(out, v)
	}
	return out
}

// MovingAverage computes the mean of the numeric window values, ignoring
// NULLs; ok is false when no period contributed a number.
func (m *Manager) MovingAverage(tx *graph.Tx, k int, f WindowFilter) (float64, bool) {
	var sum float64
	var n int
	for _, v := range m.Window(tx, k, f) {
		if f64, isNum := v.NumberAsFloat(); isNum {
			sum += f64
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
