package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	reactive "repro"
	"repro/internal/cep"
	"repro/internal/democovid"
	"repro/internal/fednet"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := &server{
		clock: reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)),
	}
	s.kb = reactive.New(reactive.Config{Clock: s.clock})
	m, err := cep.Enable(s.kb, cep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.cep = m
	if err := democovid.Setup(s.kb); err != nil {
		t.Fatal(err)
	}
	if err := democovid.Seed(s.kb); err != nil {
		t.Fatal(err)
	}
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (r:Region) RETURN r.name ORDER BY r.name",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0].([]any)[0] != "Lombardy" {
		t.Errorf("first region: %v", rows[0])
	}
	// Writes through /query are rejected.
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{"query": "CREATE (:X)"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("write through /query should 400")
	}
	// Missing query is rejected.
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("empty query should 400")
	}
}

func TestExecuteEndpointFiresRules(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/execute", map[string]any{
		"query": `MATCH (ef:Effect {level: 'critical'})
		         CREATE (:Mutation {id: $id, hub: 'E'})-[:HasEffect]->(ef)`,
		"params": map[string]any{"id": "S:E484K"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rules := out["rules"].(map[string]any)
	if rules["alertNodes"].(float64) != 1 {
		t.Errorf("rule report: %v", rules)
	}
	stats := out["stats"].(map[string]any)
	if stats["nodesCreated"].(float64) < 1 {
		t.Errorf("stats: %v", stats)
	}

	var alerts []map[string]any
	getJSON(t, ts.URL+"/alerts", &alerts)
	if len(alerts) != 1 || alerts[0]["rule"] != "R1" {
		t.Fatalf("alerts: %v", alerts)
	}
}

func TestRulesEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	var rules []map[string]any
	getJSON(t, ts.URL+"/rules", &rules)
	if len(rules) != 5 {
		t.Fatalf("rules: %d", len(rules))
	}
	// Install a new rule over HTTP.
	resp, out := postJSON(t, ts.URL+"/rules", map[string]any{
		"name":  "R9",
		"hub":   "R",
		"event": "createNode",
		"label": "Policy",
		"alert": "RETURN NEW.kind AS kind",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d %v", resp.StatusCode, out)
	}
	getJSON(t, ts.URL+"/rules", &rules)
	if len(rules) != 6 {
		t.Error("rule not installed")
	}
	// Unknown event kind.
	resp, _ = postJSON(t, ts.URL+"/rules", map[string]any{
		"name": "bad", "event": "explode",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("unknown event should 400")
	}
	// Drop it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/rules?name=R9", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("drop: %d", dresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/rules?name=R9", nil)
	dresp, _ = http.DefaultClient.Do(req)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("double drop: %d", dresp.StatusCode)
	}
}

func TestHubsAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	var hubs []map[string]any
	getJSON(t, ts.URL+"/hubs", &hubs)
	if len(hubs) != 4 {
		t.Fatalf("hubs: %d", len(hubs))
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["nodes"].(float64) <= 0 {
		t.Errorf("stats: %v", stats)
	}
	if _, ok := stats["nodesPerHub"]; !ok {
		t.Error("missing hub stats")
	}
}

func TestTickEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	before := s.kb.Now()
	resp, out := postJSON(t, ts.URL+"/tick", map[string]any{"hours": 25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick: %d %v", resp.StatusCode, out)
	}
	if !s.kb.Now().After(before.Add(24 * time.Hour)) {
		t.Error("clock did not advance")
	}
	// A server without a manual clock rejects /tick.
	noClock := &server{kb: reactive.New(reactive.Config{})}
	mux := http.NewServeMux()
	noClock.register(mux)
	ts2 := httptest.NewServer(mux)
	defer ts2.Close()
	resp, _ = postJSON(t, ts2.URL+"/tick", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("tick without manual clock should 400")
	}
}

func TestValueJSONEncoding(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "RETURN 1, 1.5, 'x', true, null, [1, 'a'], datetime('2023-04-01'), duration('2h')",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	row := out["rows"].([]any)[0].([]any)
	if row[0].(float64) != 1 || row[1].(float64) != 1.5 || row[2] != "x" ||
		row[3] != true || row[4] != nil {
		t.Errorf("scalars: %v", row)
	}
	if list := row[5].([]any); len(list) != 2 {
		t.Errorf("list: %v", row[5])
	}
	if _, err := time.Parse(time.RFC3339Nano, row[6].(string)); err != nil {
		t.Errorf("datetime encoding: %v", row[6])
	}
	if row[7] != "2h0m0s" {
		t.Errorf("duration encoding: %v", row[7])
	}
}

func TestRulesAPOCEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var out map[string][]string
	getJSON(t, ts.URL+"/rules/apoc", &out)
	// The demo installs R1, R2, R3, R5, R4 — all node-creation rules.
	if len(out["triggers"]) != 5 {
		t.Fatalf("translated %d triggers (skipped: %v)", len(out["triggers"]), out["skipped"])
	}
	found := false
	for _, trg := range out["triggers"] {
		if bytes.Contains([]byte(trg), []byte("apoc.trigger.install('neo4j', 'R2'")) {
			found = true
		}
	}
	if !found {
		t.Error("R2 translation missing")
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// In-memory servers reject /checkpoint.
	s := &server{kb: reactive.New(reactive.Config{})}
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/checkpoint", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("checkpoint on in-memory server: %d, want 400", resp.StatusCode)
	}

	// A durable server checkpoints, and a fresh process recovers the writes.
	dir := t.TempDir()
	kb, _, err := reactive.OpenDurable(dir, reactive.Config{}, reactive.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds := &server{kb: kb}
	dmux := http.NewServeMux()
	ds.register(dmux)
	dts := httptest.NewServer(dmux)
	defer dts.Close()

	resp, out := postJSON(t, dts.URL+"/execute", map[string]any{
		"query": "CREATE (:City {name: 'Milan'})",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, dts.URL+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK || out["checkpointed"] != true {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, out)
	}
	if err := kb.Close(); err != nil {
		t.Fatal(err)
	}

	kb2, info, err := reactive.OpenDurable(dir, reactive.Config{}, reactive.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kb2.Close()
	if info.SnapshotSeq == 0 {
		t.Errorf("no snapshot after checkpoint: %+v", info)
	}
	res, err := kb2.Query("MATCH (c:City) RETURN c.name", nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("recovered query: %v rows=%v", err, res)
	}
}

// parsePrometheus runs a minimal syntax check over a text exposition and
// returns the set of sample names (histogram series collapse to the family
// name, labels and the _bucket/_sum/_count suffixes stripped).
func parsePrometheus(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		names[name] = true
	}
	return names
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Seed a write so trigger and graph counters are nonzero.
	resp, out := postJSON(t, ts.URL+"/execute", map[string]any{
		"query": `MATCH (ef:Effect {level: 'critical'})
		         CREATE (:Mutation {id: $id, hub: 'E'})-[:HasEffect]->(ef)`,
		"params": map[string]any{"id": "S:E484K"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d %v", resp.StatusCode, out)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type: %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	names := parsePrometheus(t, string(raw))
	for _, want := range []string{
		"rkm_graph_tx_commits_total",
		"rkm_graph_nodes",
		"rkm_trigger_rule_fired_total",
		"rkm_trigger_alerts_created_total",
	} {
		if !names[want] {
			t.Errorf("metric %s missing from /metrics output", want)
		}
	}
	if !strings.Contains(string(raw), `rkm_trigger_rule_fired_total{rule="R1"} 1`) {
		t.Errorf("per-rule fire count missing:\n%s", raw)
	}
}

func TestMetricsEndpointDurable(t *testing.T) {
	kb, _, err := reactive.OpenDurable(t.TempDir(), reactive.Config{}, reactive.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kb.Close() })
	s := &server{kb: kb}
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, out := postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:City {name: 'Milan'})",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d %v", resp.StatusCode, out)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	names := parsePrometheus(t, string(raw))
	for _, want := range []string{
		"rkm_wal_records_appended_total",
		"rkm_wal_bytes_appended_total",
		"rkm_wal_fsync_seconds",
		"rkm_wal_last_seq",
	} {
		if !names[want] {
			t.Errorf("metric %s missing from durable /metrics output", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := &server{kb: reactive.New(reactive.Config{})}
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("before ready: %d, want 503", resp.StatusCode)
	}
	s.ready.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Errorf("after ready: %d %v", resp.StatusCode, body)
	}
}

func TestRuleInstallViaText(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/rules", map[string]any{
		"text": "CREATE TRIGGER fromText ON HUB R\nAFTER CREATE OF NODE Policy\nALERT RETURN NEW.kind AS kind",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d %v", resp.StatusCode, out)
	}
	if out["installed"] != "fromText" {
		t.Errorf("response: %v", out)
	}
	resp, _ = postJSON(t, ts.URL+"/rules", map[string]any{"text": "CREATE TRIGGER broken"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("bad text should 400")
	}
}

// newFedServer builds a server participating in a federation under the
// given name, optionally subscribed to peers, and serves it over httptest —
// one rkm-server process of a two-process deployment.
func newFedServer(t *testing.T, name string, peers ...fedPeer) (*server, *httptest.Server) {
	t.Helper()
	s := &server{
		clock: reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)),
	}
	s.kb = reactive.New(reactive.Config{Clock: s.clock})
	if err := s.kb.InstallRule(reactive.Rule{
		Name:  "icu",
		Hub:   "C",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "IcuPatient"},
		Alert: "RETURN NEW.region AS region",
	}); err != nil {
		t.Fatal(err)
	}
	node, err := fednet.NewNode(name, s.kb, fednet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if err := node.Subscribe(p.name, p.url); err != nil {
			t.Fatal(err)
		}
	}
	s.fed = node
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestFederatedServers runs the networked-federation scenario end to end
// through the HTTP API: two rkm-server instances, alerts fired on one appear
// exactly once as RemoteAlert nodes on the other.
func TestFederatedServers(t *testing.T) {
	_, regionTS := newFedServer(t, "region")
	clinic, clinicTS := newFedServer(t, "clinic", fedPeer{name: "region", url: regionTS.URL})

	// Fire two alerts on the clinic through the public API.
	for _, region := range []string{"Lombardy", "Veneto"} {
		resp, out := postJSON(t, clinicTS.URL+"/execute", map[string]any{
			"query": "CREATE (:IcuPatient {region: '" + region + "', hub: 'C'})",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("execute: %d %v", resp.StatusCode, out)
		}
	}

	// Manual sync round.
	resp, out := postJSON(t, clinicTS.URL+"/fed/sync", map[string]any{})
	if resp.StatusCode != http.StatusOK || out["delivered"].(float64) != 2 {
		t.Fatalf("fed/sync: %d %v", resp.StatusCode, out)
	}
	// Redundant round delivers nothing new.
	if _, out := postJSON(t, clinicTS.URL+"/fed/sync", map[string]any{}); out["delivered"].(float64) != 0 {
		t.Fatalf("second fed/sync: %v", out)
	}

	// The receiver reports the alerts, exactly once.
	var st fednet.Status
	getJSON(t, regionTS.URL+"/fed/status", &st)
	if st.Name != "region" || st.RemoteAlerts["clinic"] != 2 {
		t.Fatalf("receiver status: %+v", st)
	}
	respQ, outQ := postJSON(t, regionTS.URL+"/query", map[string]any{
		"query": "MATCH (a:RemoteAlert) RETURN a.origin, a.region ORDER BY a.region",
	})
	if respQ.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %v", respQ.StatusCode, outQ)
	}
	qrows := outQ["rows"].([]any)
	if len(qrows) != 2 {
		t.Fatalf("RemoteAlert rows: %v", qrows)
	}
	first := qrows[0].([]any)
	if first[0] != "clinic" || first[1] != "Lombardy" {
		t.Errorf("first remote alert: %v", first)
	}

	// Sender status shows the drained outbox and a closed breaker.
	var sst fednet.Status
	getJSON(t, clinicTS.URL+"/fed/status", &sst)
	if len(sst.Peers) != 1 || sst.Peers[0].Pending != 0 || sst.Peers[0].Breaker != "closed" {
		t.Fatalf("sender status: %+v", sst.Peers)
	}

	// Federation metrics surface on /metrics.
	mresp, err := http.Get(clinicTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"rkm_fed_push_total", "rkm_fed_outbox_depth"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	_ = clinic
}

func TestParseFedPeers(t *testing.T) {
	peers, err := parseFedPeers("region=http://a:1, national=http://b:2")
	if err != nil || len(peers) != 2 || peers[0].name != "region" || peers[1].url != "http://b:2" {
		t.Fatalf("peers=%v err=%v", peers, err)
	}
	if got, err := parseFedPeers(""); err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	if _, err := parseFedPeers("nourl"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestAsyncRuleOverHTTP(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.kb.StartAsync(reactive.AsyncOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.kb.StopAsync)

	resp, body := postJSON(t, ts.URL+"/rules", map[string]any{
		"name":  "asyncEcho",
		"hub":   "E",
		"event": "createNode",
		"label": "Probe",
		"phase": "afterAsync",
		"alert": "RETURN NEW.v AS v",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d %v", resp.StatusCode, body)
	}

	// The rule list reports the phase.
	var rules []map[string]any
	getJSON(t, ts.URL+"/rules", &rules)
	found := false
	for _, r := range rules {
		if r["name"] == "asyncEcho" {
			found = true
			if r["phase"] != "afterAsync" {
				t.Fatalf("phase = %v, want afterAsync", r["phase"])
			}
		}
	}
	if !found {
		t.Fatal("asyncEcho not listed")
	}

	// A write triggers the rule; the alert materializes asynchronously.
	resp, body = postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:Probe {v: 41})",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d %v", resp.StatusCode, body)
	}
	if err := s.kb.WaitAsyncIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	var alerts []map[string]any
	getJSON(t, ts.URL+"/alerts", &alerts)
	hit := 0
	for _, a := range alerts {
		if a["rule"] == "asyncEcho" {
			hit++
		}
	}
	if hit != 1 {
		t.Fatalf("asyncEcho alerts = %d, want 1", hit)
	}

	// The drained queue shows up in /stats and /metrics.
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["asyncPending"] != float64(0) {
		t.Fatalf("asyncPending = %v, want 0", stats["asyncPending"])
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"rkm_trigger_async_queue_depth 0",
		"rkm_trigger_async_enqueued_total 1",
		"rkm_trigger_async_evaluated_total 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A bad phase is rejected.
	resp, _ = postJSON(t, ts.URL+"/rules", map[string]any{
		"name": "bad", "event": "createNode", "phase": "during",
		"alert": "RETURN 1 AS one",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad phase accepted: %d", resp.StatusCode)
	}
}

// TestCEPServerEndToEnd drives a composite rule through the HTTP API:
// install via text, watch a partial match open in /stats, complete it,
// drain via /tick, read the alert, export APOC, drop.
func TestCEPServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/rules", map[string]any{
		"text": `CREATE TRIGGER handoff ON HUB C
WHEN SEQUENCE(CREATE NODE Arrival BY NEW.ward,
              CREATE NODE Transfer BY NEW.ward)
WITHIN 5m
THEN ALERT RETURN KEY AS ward`,
	})
	if resp.StatusCode != http.StatusCreated || out["composite"] != true {
		t.Fatalf("composite install: %d %v", resp.StatusCode, out)
	}

	var rules []map[string]any
	getJSON(t, ts.URL+"/rules", &rules)
	seen := false
	for _, r := range rules {
		name := r["name"].(string)
		if strings.HasPrefix(name, "cep:") {
			t.Errorf("internal step rule leaked into /rules: %s", name)
		}
		if name == "handoff" {
			seen = true
			if r["composite"] != true || !strings.Contains(r["text"].(string), "SEQUENCE") {
				t.Errorf("composite listing: %v", r)
			}
		}
	}
	if !seen {
		t.Fatal("composite rule missing from /rules")
	}

	resp, out = postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:Arrival {ward: 'icu-3', hub: 'C'})",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d %v", resp.StatusCode, out)
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["cepPartials"].(float64) != 1 {
		t.Fatalf("cepPartials = %v, want 1", stats["cepPartials"])
	}

	postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:Transfer {ward: 'icu-3', hub: 'C'})",
	})
	// /tick advances the clock and drains done partials into alerts.
	resp, _ = postJSON(t, ts.URL+"/tick", map[string]any{"hours": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick: %d", resp.StatusCode)
	}
	var alerts []map[string]any
	getJSON(t, ts.URL+"/alerts", &alerts)
	found := false
	for _, a := range alerts {
		if a["rule"] == "handoff" {
			found = true
			if a["props"].(map[string]any)["ward"] != "icu-3" {
				t.Errorf("alert props: %v", a)
			}
		}
	}
	if !found {
		t.Fatalf("no handoff alert in %v", alerts)
	}

	var apoc map[string][]string
	getJSON(t, ts.URL+"/rules/apoc", &apoc)
	if len(apoc["composite"]) == 0 {
		t.Error("no composite APOC export")
	}
	for _, lists := range [][]string{apoc["triggers"], apoc["skipped"]} {
		for _, s := range lists {
			if strings.Contains(s, "cep:") {
				t.Errorf("internal step rule leaked into APOC export: %s", s)
			}
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/rules?name=handoff", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drop: %d", dresp.StatusCode)
	}
	rules = nil
	getJSON(t, ts.URL+"/rules", &rules)
	for _, r := range rules {
		if r["name"] == "handoff" {
			t.Fatal("composite rule still listed after drop")
		}
	}
}
