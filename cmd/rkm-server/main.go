// Command rkm-server exposes a reactive knowledge base over HTTP with a
// JSON API, in the spirit of the paper's public CoV2K API.
//
//	rkm-server -addr :8080 -demo
//
// Endpoints:
//
//	POST /query    {"query": "...", "params": {...}}   read-only
//	POST /execute  {"query": "...", "params": {...}}   write + rules fire
//	GET  /alerts                                       alert log
//	GET  /rules                                        installed rules
//	POST /rules    {"name","hub","event","label","guard","alert","action"}
//	               or {"text": "CREATE TRIGGER …"} (PG-Triggers syntax)
//	DELETE /rules?name=R9                              drop a rule
//	GET  /hubs                                         hubs and owned labels
//	GET  /stats                                        graph + hub statistics
//	POST /tick     {"hours": 24}                       advance demo clock
//	POST /checkpoint                                   snapshot + compact the WAL
//	GET  /metrics                                      Prometheus text exposition
//	GET  /healthz                                      503 until recovery + seed done, then 200
//
// With -fed-name the server joins a federation (see internal/fednet): it
// accepts alert batches from peers and, when -fed-peers lists subscriptions,
// pushes its own alerts to them with at-least-once delivery:
//
//	POST /fed/push                                     receive a batch from a peer
//	GET  /fed/status                                   outbox, breakers, received origins
//	POST /fed/sync                                     push pending alerts to all peers now
//
// A background sync round runs every -fed-sync (0 disables it; /fed/sync
// still works). On a durable server the outbox marks live in the graph, so
// replication resumes where it stopped after a restart.
//
// Rules whose phase is afterAsync evaluate their alert queries off the write
// path, on the async pipeline started with -trigger-async-workers (0 makes
// them synchronous again); -trigger-async-queue bounds the durable pending
// queue and -trigger-async-backpressure picks what full means for writers
// (block or shed). Queue depth is the rkm_trigger_async_queue_depth gauge in
// /metrics and the asyncPending field of /stats.
//
// With -pprof the stdlib profiling endpoints are additionally served under
// /debug/pprof/ (heap, CPU profile, goroutines, execution trace). See
// OBSERVABILITY.md for the metric catalog and worked scrape examples.
//
// With -data-dir the knowledge base is durable: committed transactions are
// appended to a write-ahead log under that directory and the pre-crash state
// is recovered on startup. -fsync picks the log's durability/latency
// trade-off. SIGINT/SIGTERM shut the server down gracefully: in-flight
// requests drain, the periodic scheduler stops, and a final checkpoint
// compacts the log before exit.
//
// With -hubs the server runs hub-sharded: each declared hub gets its own
// graph shard (single-writer store + WAL stream), writes name their hub and
// commit in parallel across hubs, and /query executes cross-shard over a
// lock-free multi-shard view — a MATCH crossing a knowledge bridge binds it
// exactly once, with no per-hub fan-out:
//
//	rkm-server -hubs 'people:Person+Admin,places:City' -shard-dir ./data
//
//	POST /query    {"query": "...", "hub": "people"}   optional hub pins one shard
//	POST /execute  {"query": "...", "hub": "people"}   hub is required (writes are per-shard)
//	GET  /stats                                        per-shard blocks + planCache
//
// -shard-dir persists the sharded graph (one WAL stream per shard);
// -data-dir, -demo, -fed-name and -replica-of are incompatible with -hubs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	reactive "repro"
	"repro/internal/cep"
	"repro/internal/democovid"
	"repro/internal/fednet"
	"repro/internal/replica"
)

type server struct {
	kb *reactive.KnowledgeBase
	// skb is set instead of kb when the server runs hub-sharded (-hubs);
	// handlers branch on it. Reads without a hub go cross-shard, writes name
	// their hub.
	skb   *reactive.ShardedKB
	clock *reactive.ManualClock // nil when running on the wall clock
	fed   *fednet.Node          // nil unless -fed-name was given
	// leader serves the /wal replication endpoints of a durable server;
	// follower streams from -replica-of. At most one of the two is set.
	leader   *replica.Leader
	follower *replica.Follower
	// cep manages composite-event rules and their durable partial-match
	// state; nil on followers (composite rules replicate as graph state and
	// fire on the leader).
	cep *cep.Manager
	// maxLag is the -max-lag staleness bound a follower's /healthz enforces
	// (0 = no bound).
	maxLag time.Duration
	// ready flips to true once recovery and demo seeding have completed;
	// /healthz reports 503 until then — the readiness signal orchestrators
	// and load balancers gate traffic on.
	ready atomic.Bool
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		demo      = flag.Bool("demo", false, "load the four-hub COVID-19 demo (uses a simulated clock)")
		dataDir   = flag.String("data-dir", "", "persist the graph under this directory (empty = in-memory)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always, interval or none")
		withPprof = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")
		fedName   = flag.String("fed-name", "", "federation participant name (enables the /fed endpoints)")
		fedPeers  = flag.String("fed-peers", "", "comma-separated peers to push alerts to, as name=baseURL")
		fedSync   = flag.Duration("fed-sync", 30*time.Second, "background federation sync period (0 = manual /fed/sync only)")

		asyncWorkers = flag.Int("trigger-async-workers", 2, "async alert pipeline workers (0 = afterAsync rules evaluate synchronously)")
		asyncQueue   = flag.Int("trigger-async-queue", 1024, "async pending-queue bound")
		asyncBP      = flag.String("trigger-async-backpressure", "block", "behavior at a full async queue: block or shed")

		cepDrain = flag.Duration("cep-drain", time.Second, "composite-event drain period: how often done/expired partial matches are materialized or evicted (0 = drain only on /tick)")

		replicaOf = flag.String("replica-of", "", "run as a read replica of the leader at this base URL (writes are rejected)")
		maxLag    = flag.Duration("max-lag", 10*time.Second, "replica staleness bound: /healthz degrades to 503 beyond this time lag (0 = no bound)")

		hubsSpec = flag.String("hubs", "", "run hub-sharded: comma-separated hub declarations, name:Label1+Label2 (one shard per hub)")
		shardDir = flag.String("shard-dir", "", "persist the sharded graph under this directory, one WAL stream per shard (requires -hubs)")
	)
	flag.Parse()

	srv := &server{maxLag: *maxLag}
	cfg := reactive.Config{}
	if *hubsSpec != "" {
		// Sharded mode: the graph is partitioned by hub; features that assume
		// one store (demo seeding, federation, replication, the single-store
		// WAL directory) don't apply to it.
		switch {
		case *demo:
			log.Fatal("-hubs is incompatible with -demo")
		case *fedName != "" || *fedPeers != "":
			log.Fatal("-hubs is incompatible with -fed-name/-fed-peers")
		case *replicaOf != "":
			log.Fatal("-hubs is incompatible with -replica-of")
		case *dataDir != "":
			log.Fatal("-hubs persists with -shard-dir, not -data-dir")
		}
		defs, err := parseHubShards(*hubsSpec)
		if err != nil {
			log.Fatalf("-hubs: %v", err)
		}
		if *shardDir != "" {
			policy, err := reactive.ParseFsyncPolicy(*fsync)
			if err != nil {
				log.Fatalf("-fsync: %v", err)
			}
			skb, infos, err := reactive.OpenShardedDurable(*shardDir, cfg, defs, reactive.WALOptions{Fsync: policy})
			if err != nil {
				log.Fatalf("open %s: %v", *shardDir, err)
			}
			srv.skb = skb
			for i, info := range infos {
				if info == nil {
					continue
				}
				log.Printf("recovered shard %d (%s): snapshot seq %d, %d records replayed, last seq %d",
					i, skb.HubOfShard(i), info.SnapshotSeq, info.RecordsReplayed, info.LastSeq)
			}
		} else {
			skb, err := reactive.NewSharded(cfg, defs)
			if err != nil {
				log.Fatalf("-hubs: %v", err)
			}
			srv.skb = skb
		}
		srv.skb.EnforceHubOwnership()
		log.Printf("sharded: %d hub(s), one shard each", srv.skb.NumShards())
		srv.ready.Store(true)
		srv.serve(*addr, *withPprof)
		return
	}
	if *shardDir != "" {
		log.Fatal("-shard-dir requires -hubs")
	}
	if *demo {
		srv.clock = reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC))
		cfg.Clock = srv.clock
	}
	if *replicaOf != "" {
		// A follower mirrors the leader's record stream verbatim: it cannot
		// seed demo data, join a federation as a distinct participant, or run
		// local rule evaluation — those all write.
		if *demo || *fedName != "" {
			log.Fatal("-replica-of is incompatible with -demo and -fed-name (followers are read-only)")
		}
		policy, err := reactive.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("-fsync: %v", err)
		}
		fol, err := replica.OpenFollower(*dataDir, *replicaOf, cfg, replica.Options{
			WAL:  reactive.WALOptions{Fsync: policy},
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("replica of %s: %v", *replicaOf, err)
		}
		srv.kb = fol.KB()
		srv.follower = fol
		fol.Start()
		log.Printf("replica: following %s from seq %d (durable=%v, max-lag %v)",
			*replicaOf, fol.KB().ReplicaAppliedSeq(), *dataDir != "", *maxLag)
		srv.ready.Store(true)
		srv.serve(*addr, *withPprof)
		return
	}
	recovered := false
	if *dataDir != "" {
		policy, err := reactive.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("-fsync: %v", err)
		}
		kb, info, err := reactive.OpenDurable(*dataDir, cfg, reactive.WALOptions{Fsync: policy})
		if err != nil {
			log.Fatalf("open %s: %v", *dataDir, err)
		}
		srv.kb = kb
		recovered = info.LastSeq > 0
		log.Printf("recovered %s: snapshot seq %d, %d records replayed, last seq %d",
			*dataDir, info.SnapshotSeq, info.RecordsReplayed, info.LastSeq)
		if info.DiscardedBytes > 0 {
			log.Printf("discarded %d bytes of torn log tail at %s",
				info.DiscardedBytes, info.DiscardedPath)
		}
	} else {
		srv.kb = reactive.New(cfg)
	}
	// Composite-event rules hook the trigger engine before any demo rules
	// install; Enable also recovers partial-match state left in the graph by
	// a previous run.
	cm, err := cep.Enable(srv.kb, cep.Options{Logf: log.Printf})
	if err != nil {
		log.Fatalf("composite events: %v", err)
	}
	srv.cep = cm
	if n := cm.Recovered(); n > 0 {
		log.Printf("composite events: recovered %d open partial match(es)", n)
	}

	if *demo {
		if err := democovid.Setup(srv.kb); err != nil {
			log.Fatalf("demo setup: %v", err)
		}
		// Seed data is regular graph content: after a recovery it is already
		// there (and re-seeding would duplicate it). Setup above is pure
		// configuration (hubs, schema, rules) and always reapplies.
		if !recovered {
			if err := democovid.Seed(srv.kb); err != nil {
				log.Fatalf("demo seed: %v", err)
			}
		}
	}

	if *fedName != "" {
		node, err := fednet.NewNode(*fedName, srv.kb, fednet.Options{Logf: log.Printf})
		if err != nil {
			log.Fatalf("federation: %v", err)
		}
		peers, err := parseFedPeers(*fedPeers)
		if err != nil {
			log.Fatalf("-fed-peers: %v", err)
		}
		for _, p := range peers {
			if err := node.Subscribe(p.name, p.url); err != nil {
				log.Fatalf("federation peer %s: %v", p.name, err)
			}
		}
		srv.fed = node
		if *fedSync > 0 {
			if err := node.Start(*fedSync); err != nil {
				log.Fatalf("federation sync loop: %v", err)
			}
		}
		log.Printf("federation: participating as %q with %d peer(s)", *fedName, len(peers))
	} else if *fedPeers != "" {
		log.Fatal("-fed-peers requires -fed-name")
	}

	if *asyncWorkers > 0 {
		bp, err := reactive.ParseBackpressure(*asyncBP)
		if err != nil {
			log.Fatalf("-trigger-async-backpressure: %v", err)
		}
		opts := reactive.AsyncOptions{
			Workers: *asyncWorkers, QueueLimit: *asyncQueue, Backpressure: bp,
		}
		if err := srv.kb.StartAsync(opts); err != nil {
			log.Fatalf("async pipeline: %v", err)
		}
		if pending := srv.kb.AsyncDepth(); pending > 0 {
			log.Printf("async pipeline: draining %d pending alert(s) recovered from the log", pending)
		}
		log.Printf("async pipeline: %d worker(s), queue %d, %s backpressure",
			*asyncWorkers, *asyncQueue, bp)
	}

	if srv.kb.Durable() {
		// Every durable server is a potential replication leader: followers
		// attach with -replica-of pointed at this server's /wal endpoints.
		ld, err := replica.NewLeader(srv.kb, replica.Options{Logf: log.Printf})
		if err != nil {
			log.Fatalf("replication leader: %v", err)
		}
		srv.leader = ld
	}

	if *cepDrain > 0 {
		if err := cm.Start(*cepDrain); err != nil {
			log.Fatalf("composite-event drain loop: %v", err)
		}
	}

	srv.ready.Store(true) // recovery and seeding are done; serving can begin
	srv.serve(*addr, *withPprof)
}

// serve runs the HTTP server, the scheduler driver and the graceful
// shutdown sequence; leader and follower processes share it.
func (s *server) serve(addr string, withPprof bool) {
	mux := http.NewServeMux()
	s.register(mux)
	if withPprof {
		registerPprof(mux)
	}
	hs := &http.Server{Addr: addr, Handler: mux}

	// On the wall clock the summary scheduler needs a driver; with -demo the
	// clock is manual and /tick drives it instead. A sharded server has no
	// scheduler — instead its afterAsync pending queue needs a drain loop
	// (the unsharded async pipeline's workers play that role).
	stopSched := make(chan struct{})
	schedDone := make(chan struct{})
	switch {
	case s.skb != nil:
		go func() {
			defer close(schedDone)
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-stopSched:
					return
				case <-t.C:
					if _, err := s.skb.DrainAsync(); err != nil {
						log.Printf("async drain: %v", err)
					}
				}
			}
		}()
	case s.clock == nil:
		go func() {
			defer close(schedDone)
			if err := s.kb.Scheduler().Run(stopSched, time.Second); err != nil {
				log.Printf("scheduler: %v", err)
			}
		}()
	default:
		close(schedDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	log.Printf("rkm-server listening on %s (role=%s, durable=%v)", addr, s.role(), s.durable())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("%s received, shutting down", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	close(stopSched)
	<-schedDone
	// Stop the replication stream before the final checkpoint so no apply
	// batch races the log compaction; the durable apply cursor resumes the
	// stream on the next start.
	if s.follower != nil {
		s.follower.Stop()
	}
	// Stop the composite-event drain loop before the final checkpoint so no
	// completion transaction races the log compaction; open partial matches
	// stay in the graph and recover on the next start.
	if s.cep != nil {
		s.cep.Stop()
	}
	if s.skb != nil {
		if s.skb.Durable() {
			if err := s.skb.Checkpoint(); err != nil {
				log.Printf("final checkpoint: %v", err)
			}
			if err := s.skb.Close(); err != nil {
				log.Printf("close: %v", err)
			}
		}
		return
	}
	// Stop the async workers before the final checkpoint so no follow-up
	// transaction races the log compaction; unprocessed pending entries stay
	// in the graph and drain on the next start.
	s.kb.StopAsync()
	if s.kb.Durable() {
		if err := s.kb.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := s.kb.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
}

// role and durable read the serving instance — sharded or not — so shared
// code paths don't branch on which one is set.
func (s *server) role() string {
	if s.skb != nil {
		return s.skb.Role()
	}
	return s.kb.Role()
}

func (s *server) durable() bool {
	if s.skb != nil {
		return s.skb.Durable()
	}
	return s.kb.Durable()
}

func (s *server) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /execute", s.handleExecute)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /rules", s.handleRulesList)
	mux.HandleFunc("POST /rules", s.handleRuleInstall)
	mux.HandleFunc("DELETE /rules", s.handleRuleDrop)
	mux.HandleFunc("GET /hubs", s.handleHubs)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /tick", s.handleTick)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /rules/apoc", s.handleRulesAPOC)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.fed != nil {
		s.fed.Register(mux) // POST /fed/push, GET /fed/status
		mux.HandleFunc("POST /fed/sync", s.handleFedSync)
	}
	if s.leader != nil {
		s.leader.Register(mux) // GET /wal/status, /wal/snapshot, /wal/stream
	}
}

// parseHubShards parses the -hubs declaration list: comma-separated
// "name:Label1+Label2" entries, one shard per hub, in declaration order
// (which fixes the shard indexes — keep it stable across restarts of a
// durable directory).
func parseHubShards(s string) ([]reactive.HubShard, error) {
	var out []reactive.HubShard
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, labels, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad hub %q (want name:Label1+Label2)", part)
		}
		hs := reactive.HubShard{Hub: name, Description: "hub " + name}
		for _, l := range strings.Split(labels, "+") {
			if l = strings.TrimSpace(l); l != "" {
				hs.Labels = append(hs.Labels, l)
			}
		}
		if len(hs.Labels) == 0 {
			return nil, fmt.Errorf("hub %q owns no labels (want name:Label1+Label2)", name)
		}
		out = append(out, hs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no hubs declared")
	}
	return out, nil
}

// fedPeer is one parsed -fed-peers entry.
type fedPeer struct{ name, url string }

// parseFedPeers parses "name=baseURL,name=baseURL" (empty input = no peers,
// which is a pure receiver).
func parseFedPeers(s string) ([]fedPeer, error) {
	var out []fedPeer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad peer %q (want name=baseURL)", part)
		}
		out = append(out, fedPeer{name: name, url: url})
	}
	return out, nil
}

// handleFedSync pushes every pending alert to every peer right now, on top
// of whatever -fed-sync schedules. A partial failure still reports how many
// alerts were delivered; the rest stay in the outbox for the next round.
func (s *server) handleFedSync(w http.ResponseWriter, r *http.Request) {
	delivered, err := s.fed.SyncAll(r.Context())
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"delivered": delivered, "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"delivered": delivered})
}

// registerPprof exposes the stdlib profiling handlers; pprof.Index serves
// the profile directory and the name-addressed profiles (heap, goroutine,
// block, mutex), the rest need dedicated routes.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

type statementRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
	// Hub pins a statement to one hub's shard on a sharded server: required
	// for /execute (writes are per-shard), optional for /query (absent means
	// cross-shard). Ignored on an unsharded server.
	Hub string `json:"hub"`
}

type resultResponse struct {
	Columns []string       `json:"columns"`
	Rows    [][]any        `json:"rows"`
	Stats   map[string]int `json:"stats,omitempty"`
	Rules   map[string]int `json:"rules,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeStatement(r *http.Request) (statementRequest, error) {
	var req statementRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, fmt.Errorf("missing query")
	}
	return req, nil
}

func toResponse(res *reactive.Result) resultResponse {
	out := resultResponse{Columns: res.Columns, Rows: make([][]any, len(res.Rows))}
	for i, row := range res.Rows {
		cells := make([]any, len(row))
		for j, v := range row {
			cells[j] = jsonValue(v)
		}
		out.Rows[i] = cells
	}
	st := res.Stats
	if st != (reactive.Result{}).Stats {
		out.Stats = map[string]int{
			"nodesCreated": st.NodesCreated, "nodesDeleted": st.NodesDeleted,
			"relsCreated": st.RelsCreated, "relsDeleted": st.RelsDeleted,
			"propsSet": st.PropsSet, "labelsAdded": st.LabelsAdded,
			"labelsRemoved": st.LabelsRemoved,
		}
	}
	return out
}

// jsonValue converts a graph value into a JSON-encodable form.
func jsonValue(v reactive.Value) any {
	x := v.Go()
	if t, ok := x.(time.Time); ok {
		return t.Format(time.RFC3339Nano)
	}
	if d, ok := x.(time.Duration); ok {
		return d.String()
	}
	return x
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := decodeStatement(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var res *reactive.Result
	switch {
	case s.skb != nil && req.Hub != "":
		res, err = s.skb.QueryInHub(req.Hub, req.Query, reactive.Params(req.Params))
	case s.skb != nil:
		res, err = s.skb.Query(req.Query, reactive.Params(req.Params))
	default:
		res, err = s.kb.Query(req.Query, reactive.Params(req.Params))
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res))
}

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) {
	req, err := decodeStatement(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		res *reactive.Result
		rep *reactive.Report
	)
	if s.skb != nil {
		if req.Hub == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf(`sharded execute requires "hub" (writes are per-shard)`))
			return
		}
		res, rep, err = s.skb.ExecuteInHub(req.Hub, req.Query, reactive.Params(req.Params))
	} else {
		res, rep, err = s.kb.ExecuteReport(req.Query, reactive.Params(req.Params))
	}
	if err != nil {
		if errors.Is(err, reactive.ErrFollowerWrite) {
			writeErr(w, http.StatusForbidden, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := toResponse(res)
	if rep != nil {
		out.Rules = map[string]int{
			"guardChecks": rep.GuardChecks, "guardPasses": rep.GuardPasses,
			"alertRuns": rep.AlertRuns, "alertNodes": rep.AlertNodes,
			"rounds": rep.Rounds,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	var (
		alerts []reactive.Alert
		err    error
	)
	if s.skb != nil {
		alerts, err = s.skb.Alerts()
	} else {
		alerts, err = s.kb.Alerts()
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	type alertJSON struct {
		ID       int64          `json:"id"`
		Rule     string         `json:"rule"`
		Hub      string         `json:"hub"`
		DateTime string         `json:"dateTime"`
		Props    map[string]any `json:"props"`
	}
	out := make([]alertJSON, 0, len(alerts))
	for _, a := range alerts {
		props := make(map[string]any, len(a.Props))
		for k, v := range a.Props {
			props[k] = jsonValue(v)
		}
		out = append(out, alertJSON{
			ID: int64(a.ID), Rule: a.Rule, Hub: a.Hub,
			DateTime: a.DateTime.Format(time.RFC3339Nano), Props: props,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

var eventKinds = map[string]reactive.EventKind{
	"createNode":         reactive.CreateNode,
	"deleteNode":         reactive.DeleteNode,
	"createRelationship": reactive.CreateRelationship,
	"deleteRelationship": reactive.DeleteRelationship,
	"setLabel":           reactive.SetLabel,
	"removeLabel":        reactive.RemoveLabel,
	"setProperty":        reactive.SetProperty,
	"removeProperty":     reactive.RemoveProperty,
}

func (s *server) handleRulesList(w http.ResponseWriter, r *http.Request) {
	type ruleJSON struct {
		Name      string `json:"name"`
		Hub       string `json:"hub"`
		Event     string `json:"event"`
		Phase     string `json:"phase"`
		Guard     string `json:"guard,omitempty"`
		Alert     string `json:"alert,omitempty"`
		Action    string `json:"action,omitempty"`
		Paused    bool   `json:"paused"`
		Scope     string `json:"scope,omitempty"`
		State     string `json:"state,omitempty"`
		Composite bool   `json:"composite,omitempty"`
		Text      string `json:"text,omitempty"`
	}
	infos := func() []reactive.RuleInfo {
		if s.skb != nil {
			return s.skb.Rules()
		}
		return s.kb.Rules()
	}()
	var out []ruleJSON
	for _, info := range infos {
		if s.cep != nil && s.cep.Owns(info.Name) {
			continue // internal per-step rule of a composite; listed below
		}
		out = append(out, ruleJSON{
			Name: info.Name, Hub: info.Hub, Event: info.Event.String(),
			Phase: info.Phase.String(),
			Guard: info.Guard, Alert: info.Alert, Action: info.Action,
			Paused: info.Paused,
			Scope:  info.Classification.Scope.String(),
			State:  info.Classification.State.String(),
		})
	}
	if s.cep != nil {
		for _, info := range s.cep.Rules() {
			out = append(out, ruleJSON{
				Name: info.Name, Hub: info.Hub, Event: info.Op.String(),
				Alert: info.Alert, Composite: true, Text: info.Text,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRuleInstall(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name    string `json:"name"`
		Hub     string `json:"hub"`
		Event   string `json:"event"`
		Label   string `json:"label"`
		PropKey string `json:"propKey"`
		Phase   string `json:"phase"`
		Guard   string `json:"guard"`
		Alert   string `json:"alert"`
		Action  string `json:"action"`
		// Text carries a whole CREATE TRIGGER declaration instead of the
		// structured fields.
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Text != "" {
		// A WHEN SEQUENCE/ALL/COUNT declaration routes to the composite-event
		// manager; anything else is an ordinary trigger.
		if cep.IsCompositeStatement(req.Text) {
			if s.cep == nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("composite rules are not available on a %s", s.role()))
				return
			}
			rule, err := s.cep.InstallText(req.Text)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]any{"installed": rule.Name, "composite": true})
			return
		}
		var (
			rule reactive.Rule
			err  error
		)
		if s.skb != nil {
			rule, err = s.skb.InstallRuleText(req.Text)
		} else {
			rule, err = s.kb.InstallRuleText(req.Text)
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"installed": rule.Name})
		return
	}
	kind, ok := eventKinds[req.Event]
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown event %q", req.Event))
		return
	}
	phase, err := reactive.ParsePhase(req.Phase)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rule := reactive.Rule{
		Name:   req.Name,
		Hub:    req.Hub,
		Event:  reactive.Event{Kind: kind, Label: req.Label, PropKey: req.PropKey},
		Phase:  phase,
		Guard:  req.Guard,
		Alert:  req.Alert,
		Action: req.Action,
	}
	if s.skb != nil {
		err = s.skb.InstallRule(rule)
	} else {
		err = s.kb.InstallRule(rule)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"installed": req.Name})
}

func (s *server) handleRuleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing ?name="))
		return
	}
	if s.cep != nil && s.cep.Has(name) {
		if err := s.cep.Drop(name); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
		return
	}
	var err error
	if s.skb != nil {
		err = s.skb.DropRule(name)
	} else {
		err = s.kb.DropRule(name)
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

// handleRulesAPOC exports the rule set as Neo4j APOC trigger calls
// (Fig. 6/7 translation).
func (s *server) handleRulesAPOC(w http.ResponseWriter, r *http.Request) {
	var translated, skipped []string
	if s.skb != nil {
		translated, skipped = s.skb.TranslateRulesAPOC("neo4j", "before")
	} else {
		translated, skipped = s.kb.TranslateRulesAPOC("neo4j", "before")
	}
	if s.cep != nil {
		// The composite manager's internal per-step rules translate as part
		// of the composite export below, not as standalone triggers.
		translated = dropCEPInternal(translated)
		skipped = dropCEPInternal(skipped)
	}
	out := map[string]any{
		"triggers": translated,
		"skipped":  skipped,
	}
	if s.cep != nil {
		composite, cskipped := s.cep.TranslateAllAPOC("neo4j")
		out["composite"] = composite
		out["compositeSkipped"] = cskipped
	}
	writeJSON(w, http.StatusOK, out)
}

// dropCEPInternal filters the composite manager's per-step engine rules
// (named "cep:<rule>#<i>") out of an APOC export list.
func dropCEPInternal(in []string) []string {
	out := in[:0]
	for _, s := range in {
		if !strings.Contains(s, "cep:") {
			out = append(out, s)
		}
	}
	return out
}

func (s *server) handleHubs(w http.ResponseWriter, r *http.Request) {
	type hubJSON struct {
		Name        string   `json:"name"`
		Description string   `json:"description"`
		Labels      []string `json:"labels"`
	}
	var out []hubJSON
	reg := func() *reactive.HubRegistry {
		if s.skb != nil {
			return s.skb.Hubs()
		}
		return s.kb.Hubs()
	}()
	for _, h := range reg.Hubs() {
		out = append(out, hubJSON{Name: h.Name, Description: h.Description,
			Labels: reg.OwnedLabels(h.Name)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.skb != nil {
		s.handleShardedStats(w)
		return
	}
	g := s.kb.GraphStats()
	hs, err := s.kb.HubStats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := map[string]any{
		"nodes":         g.Nodes,
		"relationships": g.Relationships,
		"labels":        g.Labels,
		"relTypes":      g.RelTypes,
		"indexes":       g.Indexes,
		"nodesPerHub":   hs.NodesPerHub,
		"unassigned":    hs.Unassigned,
		"intraHubEdges": hs.IntraEdges,
		"interHubEdges": hs.InterEdges,
		"asyncPending":  s.kb.AsyncDepth(),
		"time":          s.kb.Now().Format(time.RFC3339),
		"role":          s.kb.Role(),
	}
	pc := s.kb.PlanCacheStats()
	ratio := 0.0
	if total := pc.Hits + pc.Misses; total > 0 {
		ratio = float64(pc.Hits) / float64(total)
	}
	out["planCache"] = map[string]any{
		"size":      pc.Size,
		"hits":      pc.Hits,
		"misses":    pc.Misses,
		"evictions": pc.Evictions,
		"hitRatio":  ratio,
	}
	if s.cep != nil {
		out["cepPartials"] = s.cep.Depth()
		out["cepRules"] = len(s.cep.Rules())
	}
	if s.follower != nil {
		out["replica"] = s.follower.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleShardedStats is /stats on a sharded server: aggregate totals, one
// block per shard (its hub, store sizes), and the shared plan cache's
// counters.
func (s *server) handleShardedStats(w http.ResponseWriter) {
	kb := s.skb
	// Totals come from the multi-shard view's mirror-aware counters: a
	// knowledge bridge stores a half in both endpoint shards, so summing
	// the raw per-shard record counts would count it twice.
	var totalNodes, totalRels int
	_ = kb.View(func(v *reactive.MultiView) error {
		totalNodes, totalRels = v.NodeCount(), v.RelCount()
		return nil
	})
	perShard := make([]map[string]any, 0, kb.NumShards())
	for i := 0; i < kb.NumShards(); i++ {
		st := kb.Store().Shard(i).Stats()
		perShard = append(perShard, map[string]any{
			"shard":         i,
			"hub":           kb.HubOfShard(i),
			"nodes":         st.Nodes,
			"relationships": st.Relationships,
			"labels":        st.Labels,
			"relTypes":      st.RelTypes,
			"indexes":       st.Indexes,
		})
	}
	out := map[string]any{
		"nodes":         totalNodes,
		"relationships": totalRels,
		"shards":        kb.NumShards(),
		"perShard":      perShard,
		"asyncPending":  kb.AsyncDepth(),
		"time":          kb.Now().Format(time.RFC3339),
		"role":          kb.Role(),
	}
	pc := kb.PlanCacheStats()
	ratio := 0.0
	if total := pc.Hits + pc.Misses; total > 0 {
		ratio = float64(pc.Hits) / float64(total)
	}
	out["planCache"] = map[string]any{
		"size":      pc.Size,
		"hits":      pc.Hits,
		"misses":    pc.Misses,
		"evictions": pc.Evictions,
		"hitRatio":  ratio,
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the Prometheus text exposition of every registered
// metric (see OBSERVABILITY.md for the catalog).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg := func() *reactive.MetricsRegistry {
		if s.skb != nil {
			return s.skb.Metrics()
		}
		return s.kb.Metrics()
	}()
	if err := reg.WritePrometheus(w); err != nil {
		log.Printf("metrics: %v", err)
	}
}

// handleHealthz is the readiness probe: 503 until recovery and seeding have
// completed, then 200 — except on a follower whose replication lag exceeds
// the -max-lag bound, which degrades back to 503 so load balancers route
// reads to fresher replicas (the bounded-staleness contract).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting", "role": s.role(),
		})
		return
	}
	out := map[string]any{"status": "ok", "role": s.role()}
	if s.follower != nil {
		recs, secs := s.follower.Lag()
		out["lagRecords"] = recs
		out["lagSeconds"] = secs
		if s.maxLag > 0 && secs > s.maxLag.Seconds() {
			out["status"] = "lagging"
			out["maxLagSeconds"] = s.maxLag.Seconds()
			writeJSON(w, http.StatusServiceUnavailable, out)
			return
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.durable() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("checkpoint requires -data-dir or -shard-dir (durable mode)"))
		return
	}
	if s.skb != nil {
		if err := s.skb.Checkpoint(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		seqs := make([]uint64, s.skb.NumShards())
		for i := range seqs {
			seqs[i] = s.skb.WAL().Log(i).LastSeq()
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"checkpointed": true,
			"lastSeqs":     seqs,
		})
		return
	}
	if err := s.kb.Checkpoint(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpointed": true,
		"lastSeq":      s.kb.WAL().LastSeq(),
	})
}

func (s *server) handleTick(w http.ResponseWriter, r *http.Request) {
	if s.clock == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("tick requires -demo (simulated clock)"))
		return
	}
	var req struct {
		Hours int `json:"hours"`
	}
	_ = json.NewDecoder(r.Body).Decode(&req)
	if req.Hours <= 0 {
		req.Hours = 24
	}
	s.clock.Advance(time.Duration(req.Hours) * time.Hour)
	if err := s.kb.Tick(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if s.cep != nil {
		// Advancing the simulated clock may expire composite windows; drain
		// now so absences fire without waiting for the background loop.
		if _, err := s.cep.DrainOnce(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"time": s.kb.Now().Format(time.RFC3339)})
}
