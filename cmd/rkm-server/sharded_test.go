package main

// End-to-end tests for the sharded server mode (-hubs): the HTTP surface
// runs on a ShardedKB, writes route to the owning hub's shard, and reads
// without a hub take the cross-shard path over a multi-shard view —
// including MATCHes that traverse knowledge bridges.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	reactive "repro"
)

// newShardedTestServer serves a two-hub sharded knowledge base (people and
// places) with one knowledge bridge between them.
func newShardedTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := &server{
		clock: reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC)),
	}
	hubs, err := parseHubShards("people:Person+Admin, places:City")
	if err != nil {
		t.Fatal(err)
	}
	s.skb, err = reactive.NewSharded(reactive.Config{Clock: s.clock}, hubs)
	if err != nil {
		t.Fatal(err)
	}
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestShardedServerEndToEnd(t *testing.T) {
	s, ts := newShardedTestServer(t)

	// Writes are per-shard and require the hub field.
	resp, out := postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:Person {name: 'Ada'}), (:Person {name: 'Bob'})",
		"hub":   "people",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute people: %d %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:City {code: 'LON'})",
		"hub":   "places",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute places: %d %v", resp.StatusCode, out)
	}
	resp, _ = postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:Person {name: 'NoHub'})",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("execute without hub should 400, got %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:X)", "hub": "nope",
	})
	if resp.StatusCode == http.StatusOK {
		t.Error("execute into unknown hub should fail")
	}

	// Bridge the shards programmatically (the HTTP write surface is
	// per-shard; bridges are an embedding-API affair).
	if _, err := s.skb.UpdateBridge("people", "places", func(bt *reactive.BridgeTx) error {
		people, _ := s.skb.ShardOf("people")
		ada, err := bt.ShardTx(people)
		if err != nil {
			return err
		}
		byProp := func(tx *reactive.Tx, label, key, want string) reactive.NodeID {
			for _, id := range tx.NodesByLabel(label) {
				if v, ok := tx.NodeProp(id, key); ok && v.String() == reactive.V(want).String() {
					return id
				}
			}
			t.Fatalf("no %s with %s=%s", label, key, want)
			return 0
		}
		adaID := byProp(ada, "Person", "name", "Ada")
		places, _ := s.skb.ShardOf("places")
		ptx, err := bt.ShardTx(places)
		if err != nil {
			return err
		}
		lonID := byProp(ptx, "City", "code", "LON")
		_, err = bt.CreateRel(adaID, lonID, "LIVES_IN", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A hub-pinned read sees only its shard.
	resp, out = postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (n) RETURN count(*)", "hub": "people",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query people: %d %v", resp.StatusCode, out)
	}
	if got := out["rows"].([]any)[0].([]any)[0].(float64); got != 2 {
		t.Errorf("people shard count = %v, want 2", got)
	}

	// A hubless read is cross-shard: the MATCH below crosses the bridge.
	resp, out = postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (p:Person)-[:LIVES_IN]->(c:City) RETURN p.name, c.code",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross-shard query: %d %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("cross-shard bridge rows = %v, want 1", rows)
	}
	if r := rows[0].([]any); r[0] != "Ada" || r[1] != "LON" {
		t.Errorf("bridge row = %v, want [Ada LON]", r)
	}

	// Writes through /query stay rejected in sharded mode.
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CREATE (:X)", "hub": "people",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("write through /query should 400")
	}

	// /stats reports totals, per-shard blocks and the shared plan cache.
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["role"] != "sharded-leader" {
		t.Errorf("role = %v", stats["role"])
	}
	if stats["shards"].(float64) != 2 {
		t.Errorf("shards = %v", stats["shards"])
	}
	if stats["nodes"].(float64) != 3 || stats["relationships"].(float64) != 1 {
		t.Errorf("totals = %v nodes, %v rels", stats["nodes"], stats["relationships"])
	}
	perShard := stats["perShard"].([]any)
	if len(perShard) != 2 {
		t.Fatalf("perShard = %v", perShard)
	}
	first := perShard[0].(map[string]any)
	if first["hub"] != "people" || first["nodes"].(float64) != 2 {
		t.Errorf("people shard block = %v", first)
	}
	if _, ok := stats["planCache"].(map[string]any); !ok {
		t.Errorf("missing planCache block: %v", stats)
	}

	// /healthz reports the sharded role; /hubs lists both declared hubs.
	var health map[string]any
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" || health["role"] != "sharded-leader" {
		t.Errorf("healthz = %v", health)
	}
	var hubs []map[string]any
	getJSON(t, ts.URL+"/hubs", &hubs)
	if len(hubs) != 2 {
		t.Errorf("hubs = %v", hubs)
	}

	// Cross-shard query metrics tick.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(buf)
	body := string(buf[:n])
	if !containsMetricLine(body, "rkm_shard_query_total") {
		t.Error("metrics missing rkm_shard_query_total")
	}
}

// containsMetricLine reports whether a Prometheus exposition contains a
// sample for the named metric.
func containsMetricLine(body, name string) bool {
	for _, line := range splitLines(body) {
		if len(line) > len(name) && line[:len(name)] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// TestShardedRulesOverHTTP installs a rule on the sharded server and checks
// that a hub-routed write fires it and /alerts surfaces the result.
func TestShardedRulesOverHTTP(t *testing.T) {
	_, ts := newShardedTestServer(t)
	resp, out := postJSON(t, ts.URL+"/rules", map[string]any{
		"name":  "bigcity",
		"hub":   "places",
		"event": "createNode",
		"label": "City",
		"guard": "NEW.pop > 1000000",
		"alert": "MATCH (c:City) WHERE c.pop > 1000000 RETURN count(c) AS big",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("rule install: %d %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/execute", map[string]any{
		"query": "CREATE (:City {code: 'TYO', pop: 14000000})",
		"hub":   "places",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d %v", resp.StatusCode, out)
	}
	var alerts []map[string]any
	getJSON(t, ts.URL+"/alerts", &alerts)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v, want 1", alerts)
	}
	var rules []map[string]any
	getJSON(t, ts.URL+"/rules", &rules)
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
}

func TestParseHubShards(t *testing.T) {
	hubs, err := parseHubShards("a:X+Y, b:Z")
	if err != nil {
		t.Fatal(err)
	}
	if len(hubs) != 2 || hubs[0].Hub != "a" || len(hubs[0].Labels) != 2 || hubs[1].Labels[0] != "Z" {
		t.Fatalf("parsed %+v", hubs)
	}
	for _, bad := range []string{"", "nolabel", "x:", ":X"} {
		if _, err := parseHubShards(bad); err == nil {
			t.Errorf("parseHubShards(%q) should fail", bad)
		}
	}
}
