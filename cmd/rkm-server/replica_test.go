package main

// Two-process (two-server) leader/follower e2e: a durable leader serves the
// /wal endpoints, a follower rkm-server bootstraps from it, streams the
// tail, answers queries from its local mirror, reports its role and lag on
// /stats and /healthz, and rejects writes with 403.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	reactive "repro"
	"repro/internal/replica"
)

// newLeaderServer builds a durable leader rkm-server around dir.
func newLeaderServer(t *testing.T, dir string) (*server, *httptest.Server) {
	t.Helper()
	s := &server{}
	kb, _, err := reactive.OpenDurable(dir, reactive.Config{}, reactive.WALOptions{Fsync: reactive.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s.kb = kb
	t.Cleanup(func() { _ = kb.Close() })
	ld, err := replica.NewLeader(kb, replica.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.leader = ld
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

// newFollowerServer builds a follower rkm-server of the leader at leaderURL.
func newFollowerServer(t *testing.T, leaderURL string, maxLag time.Duration) (*server, *httptest.Server) {
	t.Helper()
	fol, err := replica.OpenFollower(t.TempDir(), leaderURL, reactive.Config{}, replica.Options{
		WAL:               reactive.WALOptions{Fsync: reactive.FsyncAlways},
		PollInterval:      2 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		StreamWindow:      250 * time.Millisecond,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fol.Close() })
	fol.Start()
	s := &server{kb: fol.KB(), follower: fol, maxLag: maxLag}
	s.ready.Store(true)
	mux := http.NewServeMux()
	s.register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestReplicaLeaderFollowerServers(t *testing.T) {
	leaderSrv, leaderTS := newLeaderServer(t, t.TempDir())

	// Leader takes writes over HTTP.
	for _, q := range []string{
		"CREATE (:City {name: 'Milan', pop: 1400000})",
		"CREATE (:City {name: 'Rome', pop: 2800000})",
	} {
		if resp, out := postJSON(t, leaderTS.URL+"/execute", map[string]any{"query": q}); resp.StatusCode != http.StatusOK {
			t.Fatalf("leader execute: %d %v", resp.StatusCode, out)
		}
	}

	_, folTS := newFollowerServer(t, leaderTS.URL, time.Minute)

	// More leader writes after the follower bootstrapped.
	if resp, out := postJSON(t, leaderTS.URL+"/execute", map[string]any{
		"query": "CREATE (:City {name: 'Naples', pop: 960000})",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader execute: %d %v", resp.StatusCode, out)
	}

	// The follower catches up and serves the full data set read-only.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var out map[string]any
		resp, body := postJSON(t, folTS.URL+"/query", map[string]any{
			"query": "MATCH (c:City) RETURN count(c)",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follower query: %d %v", resp.StatusCode, body)
		}
		out = body
		n := out["rows"].([]any)[0].([]any)[0].(float64)
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %v cities", n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Roles on /stats.
	var stats map[string]any
	getJSON(t, leaderTS.URL+"/stats", &stats)
	if stats["role"] != "leader" {
		t.Fatalf("leader /stats role = %v", stats["role"])
	}
	getJSON(t, folTS.URL+"/stats", &stats)
	if stats["role"] != "follower" {
		t.Fatalf("follower /stats role = %v", stats["role"])
	}
	rep, ok := stats["replica"].(map[string]any)
	if !ok || rep["state"] != "streaming" {
		t.Fatalf("follower /stats replica = %v", stats["replica"])
	}

	// Roles and lag on /healthz; both healthy.
	var hz map[string]any
	if resp := getJSON(t, leaderTS.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK || hz["role"] != "leader" {
		t.Fatalf("leader healthz: %d %v", resp.StatusCode, hz)
	}
	if resp := getJSON(t, folTS.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK || hz["role"] != "follower" {
		t.Fatalf("follower healthz: %d %v", resp.StatusCode, hz)
	}
	if _, ok := hz["lagRecords"]; !ok {
		t.Fatalf("follower healthz missing lag: %v", hz)
	}

	// Writes on the follower are forbidden, not mangled.
	if resp, out := postJSON(t, folTS.URL+"/execute", map[string]any{
		"query": "CREATE (:City {name: 'Turin'})",
	}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower execute: %d %v, want 403", resp.StatusCode, out)
	}

	// Leader sees the follower count unchanged (the write really was
	// rejected, not buffered).
	res, err := leaderSrv.kb.Query("MATCH (c:City) RETURN count(c)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("leader city count = %d", n)
	}
}

func TestReplicaFollowerHealthzDegradesPastMaxLag(t *testing.T) {
	_, leaderTS := newLeaderServer(t, t.TempDir())
	if resp, out := postJSON(t, leaderTS.URL+"/execute", map[string]any{
		"query": "CREATE (:City {name: 'Milan'})",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader execute: %d %v", resp.StatusCode, out)
	}

	// Heartbeats arrive every 10ms in the test config, so a 200ms bound keeps
	// a healthy follower comfortably inside it.
	folSrv, folTS := newFollowerServer(t, leaderTS.URL, 200*time.Millisecond)
	deadline := time.Now().Add(15 * time.Second)
	for folSrv.follower.KB().ReplicaAppliedSeq() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Healthy while caught up.
	var hz map[string]any
	if resp := getJSON(t, folTS.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up healthz: %d %v", resp.StatusCode, hz)
	}

	// Stop streaming: the staleness clock stops being refreshed, ages past
	// the bound, and /healthz degrades to 503.
	folSrv.follower.Stop()
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp := getJSON(t, folTS.URL+"/healthz", &hz)
		if resp.StatusCode == http.StatusServiceUnavailable && hz["status"] == "lagging" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never degraded: %v", hz)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
