package main

import (
	"fmt"
	"net/http"
	"time"

	"testing"

	reactive "repro"
)

// TestReadsDuringOpenWrite: read endpoints are served from the published
// snapshot, so they must answer — with committed data — while a write
// transaction holds the knowledge base's write lock.
func TestReadsDuringOpenWrite(t *testing.T) {
	s, ts := newTestServer(t)

	readsDone := make(chan error, 1)
	_, err := s.kb.WriteTx(func(tx *reactive.Tx) error {
		if _, err := tx.CreateNode([]string{"Note"}, map[string]reactive.Value{
			"text": reactive.V("held open"),
		}); err != nil {
			return err
		}
		go func() { readsDone <- hitReadEndpoints(ts.URL) }()
		select {
		case err := <-readsDone:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("read endpoints did not answer while a write transaction was open")
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same endpoints after commit, for contrast.
	if err := hitReadEndpoints(ts.URL); err != nil {
		t.Fatal(err)
	}
}

// hitReadEndpoints exercises every read-only endpoint once and reports the
// first failure.
func hitReadEndpoints(base string) error {
	for _, path := range []string{"/healthz", "/stats", "/metrics", "/alerts", "/rules", "/hubs"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	return nil
}
