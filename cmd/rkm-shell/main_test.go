package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	reactive "repro"
)

func TestSplitStatements(t *testing.T) {
	src := `
	// a comment-only line
	CREATE (:A);

	CREATE (:B {p: 1})
	  SET b = 1;
	// trailing comment
	`
	stmts := splitStatements(src)
	if len(stmts) != 2 {
		t.Fatalf("statements = %d: %q", len(stmts), stmts)
	}
	if stmts[0] != "CREATE (:A)" {
		t.Errorf("first: %q", stmts[0])
	}
	if !strings.Contains(stmts[1], "SET b = 1") {
		t.Errorf("second: %q", stmts[1])
	}
	if got := splitStatements("// only comments\n;;\n"); len(got) != 0 {
		t.Errorf("comments only: %q", got)
	}
}

func TestMetaCommands(t *testing.T) {
	clock := reactive.NewManualClock(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock})
	_ = kb.DefineHub("H", "a hub", "Thing")
	_ = kb.InstallRule(reactive.Rule{
		Name:  "r",
		Hub:   "H",
		Event: reactive.Event{Kind: reactive.CreateNode, Label: "Thing"},
		Alert: "RETURN 1 AS one",
	})
	if _, err := kb.Execute("CREATE (:Thing {hub: 'H'})", nil); err != nil {
		t.Fatal(err)
	}
	// Every meta command must keep the REPL alive; :quit must stop it.
	for _, cmd := range []string{":help", ":rules", ":alerts", ":stats", ":hubs", ":tick 1", ":nonsense", ":save", ":load"} {
		if !meta(kb, clock, cmd) {
			t.Errorf("%s should keep the repl running", cmd)
		}
	}
	for _, cmd := range []string{":quit", ":q", ":exit"} {
		if meta(kb, clock, cmd) {
			t.Errorf("%s should stop the repl", cmd)
		}
	}
}

func TestMetaSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "graph.json")
	clock := reactive.NewManualClock(time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock})
	if _, err := kb.Execute("CREATE (:Saved {v: 42})", nil); err != nil {
		t.Fatal(err)
	}
	if !meta(kb, clock, ":save "+file) {
		t.Fatal("save stopped the repl")
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("file not written: %v", err)
	}
	fresh := reactive.New(reactive.Config{Clock: clock})
	if !meta(fresh, clock, ":load "+file) {
		t.Fatal("load stopped the repl")
	}
	res, err := fresh.Query("MATCH (s:Saved) RETURN s.v", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.String() != "42" {
		t.Errorf("restored value: %s", v)
	}
}

func TestRunStatementPrintsErrorsWithoutPanic(t *testing.T) {
	kb := reactive.New(reactive.Config{})
	runStatement(kb, "BOGUS QUERY")          // must not panic
	runStatement(kb, "CREATE (:X)")          // write summary path
	runStatement(kb, "MATCH (x:X) RETURN x") // result table path
}

func TestInitScriptWithTriggers(t *testing.T) {
	data, err := os.ReadFile("../../examples/scripts/monitor.rkm")
	if err != nil {
		t.Fatal(err)
	}
	clock := reactive.NewManualClock(time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock})
	for _, stmt := range splitStatements(string(data)) {
		if reactive.IsTriggerStatement(stmt) {
			if _, err := kb.InstallRuleText(stmt); err != nil {
				t.Fatalf("trigger %q: %v", stmt, err)
			}
			continue
		}
		if _, err := kb.Execute(stmt, nil); err != nil {
			t.Fatalf("statement %q: %v", stmt, err)
		}
	}
	if got := len(kb.Rules()); got != 2 {
		t.Fatalf("rules = %d", got)
	}
	alerts, err := kb.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	// One high reading (37.2) + one offline transition.
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d: %+v", len(alerts), alerts)
	}
	byRule := map[string]int{}
	for _, a := range alerts {
		byRule[a.Rule]++
	}
	if byRule["highReading"] != 1 || byRule["stationOffline"] != 1 {
		t.Errorf("alerts by rule: %v", byRule)
	}
}
