// Command rkm-shell is an interactive Cypher shell over a reactive
// knowledge base. Statements terminated by ';' run through the full
// reactive pipeline (rules fire, summaries update); lines starting with ':'
// are meta commands.
//
//	rkm-shell                 # empty knowledge base
//	rkm-shell -init seed.cyp  # run the statements of a file first
//	rkm-shell -demo           # load the paper's four-hub COVID scenario
//
// Meta commands:
//
//	:rules            list installed rules with classifications
//	:alerts           list alert nodes
//	:stats            graph and hub statistics
//	:hubs             list hubs and owned labels
//	:fed              federation state: received remote alerts, outbox marks
//	:tick [h]         advance the simulated clock by h hours (default 24) and
//	                  run due periodic tasks (summary rollover)
//	:save <file>      export the knowledge graph as JSON
//	:load <file>      import a JSON export into this (empty) knowledge base
//	:help             this text
//	:quit             exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	reactive "repro"
	"repro/internal/democovid"
	"repro/internal/fednet"
)

func main() {
	var (
		initFile = flag.String("init", "", "file of ';'-terminated statements to run at startup")
		demo     = flag.Bool("demo", false, "load the paper's four-hub COVID-19 demo scenario")
	)
	flag.Parse()

	clock := reactive.NewManualClock(time.Date(2023, 4, 1, 8, 0, 0, 0, time.UTC))
	kb := reactive.New(reactive.Config{Clock: clock})
	if *demo {
		if err := democovid.Setup(kb); err != nil {
			fatalf("demo setup: %v", err)
		}
		fmt.Println("loaded demo: 4 hubs (E, A, C, R), rules R1/R2/R3/R5, 24h summaries")
	}
	if *initFile != "" {
		data, err := os.ReadFile(*initFile)
		if err != nil {
			fatalf("init: %v", err)
		}
		for _, stmt := range splitStatements(string(data)) {
			if reactive.IsTriggerStatement(stmt) {
				if _, err := kb.InstallRuleText(stmt); err != nil {
					fatalf("init trigger %q: %v", stmt, err)
				}
				continue
			}
			if _, err := kb.Execute(stmt, nil); err != nil {
				fatalf("init statement %q: %v", stmt, err)
			}
		}
	}

	fmt.Println("rkm-shell — reactive knowledge management (:help for commands)")
	repl(kb, clock)
}

func repl(kb *reactive.KnowledgeBase, clock *reactive.ManualClock) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("rkm> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if !meta(kb, clock, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if stmt != "" {
				runStatement(kb, stmt)
			}
		}
		prompt()
	}
}

func runStatement(kb *reactive.KnowledgeBase, stmt string) {
	if reactive.IsTriggerStatement(stmt) {
		r, err := kb.InstallRuleText(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("installed trigger %s (on %s)\n", r.Name, r.Event)
		return
	}
	res, rep, err := kb.ExecuteReport(stmt, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
	if rep != nil && (rep.GuardChecks > 0 || rep.AlertNodes > 0) {
		fmt.Printf("-- rules: %d guard checks, %d alert nodes, %d rounds\n",
			rep.GuardChecks, rep.AlertNodes, rep.Rounds)
	}
}

func printResult(res *reactive.Result) {
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d row(s))\n", len(res.Rows))
	}
	st := res.Stats
	if st.NodesCreated+st.NodesDeleted+st.RelsCreated+st.RelsDeleted+st.PropsSet+st.LabelsAdded+st.LabelsRemoved > 0 {
		fmt.Printf("-- writes: +%dn -%dn +%dr -%dr, %d props, +%d/-%d labels\n",
			st.NodesCreated, st.NodesDeleted, st.RelsCreated, st.RelsDeleted,
			st.PropsSet, st.LabelsAdded, st.LabelsRemoved)
	}
}

func meta(kb *reactive.KnowledgeBase, clock *reactive.ManualClock, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return false
	case ":help":
		fmt.Println(":rules :alerts :stats :hubs :fed :check :apoc :explain <q> :tick [hours] :save <file> :load <file> :quit")
	case ":rules":
		for _, r := range kb.Rules() {
			state := ""
			if r.Paused {
				state = " (paused)"
			}
			fmt.Printf("%-12s hub=%-4s on %-28s %s, %s%s\n",
				r.Name, r.Hub, r.Event, r.Classification.Scope,
				r.Classification.State, state)
		}
	case ":alerts":
		alerts, err := kb.Alerts()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, a := range alerts {
			fmt.Printf("%s  rule=%s hub=%s %v\n",
				a.DateTime.Format(time.RFC3339), a.Rule, a.Hub, a.Props)
		}
		fmt.Printf("(%d alert(s))\n", len(alerts))
	case ":stats":
		g := kb.GraphStats()
		fmt.Printf("nodes=%d rels=%d labels=%d relTypes=%d indexes=%d\n",
			g.Nodes, g.Relationships, g.Labels, g.RelTypes, g.Indexes)
		if hs, err := kb.HubStats(); err == nil {
			fmt.Printf("per-hub: %v (unassigned %d); intra=%d inter=%d edges\n",
				hs.NodesPerHub, hs.Unassigned, hs.IntraEdges, hs.InterEdges)
		}
		pc := kb.PlanCacheStats()
		ratio := 0.0
		if total := pc.Hits + pc.Misses; total > 0 {
			ratio = float64(pc.Hits) / float64(total)
		}
		fmt.Printf("plan cache: %d plan(s), %d hit(s) / %d miss(es) (%.0f%% hit ratio)\n",
			pc.Size, pc.Hits, pc.Misses, 100*ratio)
		printMetrics(kb)
	case ":hubs":
		for _, h := range kb.Hubs().Hubs() {
			fmt.Printf("%-4s %-30s labels: %v\n", h.Name, h.Description,
				kb.Hubs().OwnedLabels(h.Name))
		}
	case ":fed":
		info, err := fednet.Inspect(kb)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if len(info.RemoteByOrigin) == 0 && len(info.OutboxMarks) == 0 {
			fmt.Println("no federation state (no RemoteAlert nodes, no outbox marks)")
			break
		}
		for origin, count := range info.RemoteByOrigin {
			fmt.Printf("received from %-12s %d alert(s)\n", origin, count)
		}
		for peer, mark := range info.OutboxMarks {
			fmt.Printf("outbox to %-12s acked through alert id %d\n", peer, mark)
		}
	case ":tick":
		hours := 24
		if len(fields) > 1 {
			if n, err := strconv.Atoi(fields[1]); err == nil && n > 0 {
				hours = n
			}
		}
		clock.Advance(time.Duration(hours) * time.Hour)
		if err := kb.Tick(); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("clock now %s\n", kb.Now().Format(time.RFC3339))
	case ":explain":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, ":explain"))
		if rest == "" {
			fmt.Println("usage: :explain MATCH ... RETURN ...")
			break
		}
		plan, err := kb.ExplainQuery(rest)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(plan)
	case ":apoc":
		translated, skipped := kb.TranslateRulesAPOC("neo4j", "before")
		for _, t := range translated {
			fmt.Println(t)
			fmt.Println()
		}
		for _, sk := range skipped {
			fmt.Println("// skipped:", sk)
		}
	case ":check":
		cycles := kb.CheckTermination()
		if len(cycles) == 0 {
			fmt.Println("termination: triggering graph is acyclic")
		} else {
			for _, c := range cycles {
				fmt.Println("termination: cycle", strings.Join(c, " -> "))
			}
		}
		warns := kb.CheckConfluence()
		if len(warns) == 0 {
			fmt.Println("confluence: no order-dependent rule pairs detected")
		}
		for _, w := range warns {
			fmt.Println("confluence:", w)
		}
	case ":save":
		if len(fields) < 2 {
			fmt.Println("usage: :save <file>")
			break
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		err = kb.SaveGraph(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("saved", fields[1])
	case ":load":
		if len(fields) < 2 {
			fmt.Println("usage: :load <file>")
			break
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		err = kb.LoadGraph(f)
		_ = f.Close()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("loaded", fields[1])
	default:
		fmt.Printf("unknown meta command %s (:help)\n", fields[0])
	}
	return true
}

// printMetrics prints the nonzero instrumentation of this session: counters
// with their label values, and histogram summaries (count/mean/quantiles).
// Gauges are skipped — :stats already reports the graph cardinalities they
// mirror.
func printMetrics(kb *reactive.KnowledgeBase) {
	printed := false
	for _, fam := range kb.Metrics().Gather() {
		for _, s := range fam.Samples {
			var line string
			switch {
			case fam.Type == "histogram" && s.Hist != nil && s.Hist.Count > 0:
				line = s.Hist.Summary()
			case fam.Type == "counter" && s.Value > 0:
				line = strconv.FormatFloat(s.Value, 'g', -1, 64)
			default:
				continue
			}
			if !printed {
				fmt.Println("metrics (nonzero):")
				printed = true
			}
			name := fam.Name
			if fam.Label != "" {
				name += "{" + fam.Label + "=" + strconv.Quote(s.LabelValue) + "}"
			}
			fmt.Printf("  %-50s %s\n", name, line)
		}
	}
}

// splitStatements splits a script on ';' terminators. Comment-only lines
// (starting with //) are dropped first, so semicolons inside comments do
// not terminate statements. Semicolons inside string literals are not
// supported in script files.
func splitStatements(src string) []string {
	var clean []string
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		clean = append(clean, line)
	}
	var out []string
	for _, frag := range strings.Split(strings.Join(clean, "\n"), ";") {
		stmt := strings.TrimSpace(frag)
		if stmt != "" {
			out = append(out, stmt)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rkm-shell: "+format+"\n", args...)
	os.Exit(1)
}
