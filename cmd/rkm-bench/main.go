// Command rkm-bench regenerates the paper's evaluation figures on the pure
// Go reactive knowledge management system.
//
// Usage:
//
//	rkm-bench -fig 9                 # Fig. 9: naive per-patient triggers
//	rkm-bench -fig 10                # Fig. 10: summary-based design
//	rkm-bench -fig ablation          # naive vs summary across region counts
//	rkm-bench -fig wal               # durable vs in-memory ingest overhead
//	rkm-bench -fig fed               # federated replication lag over HTTP
//	rkm-bench -fig conc              # snapshot reads + group commit under contention
//	rkm-bench -fig conc -smoke       # tiny CI-sized version of the same
//	rkm-bench -fig async             # sync vs async alert evaluation on the write path
//	rkm-bench -fig replica           # aggregate read QPS vs replica count
//	rkm-bench -fig shard             # hub-sharded write scaling + bridge mix
//	rkm-bench -fig xshard            # cross-shard MATCH vs per-hub fan-out + merge
//	rkm-bench -fig cep               # composite-event rules vs naive re-scan
//	rkm-bench -fig plan              # prepared plans + plan cache vs per-event parse
//	rkm-bench -fig all               # everything
//	rkm-bench -fig 9 -full           # paper-scale sweep (up to 10^6 patients)
//	rkm-bench -fig 9 -patients 500,5000 -regions 10
//
// Absolute numbers depend on the machine; the reproduction target is the
// paper's shapes — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 9, 10, ablation, rules, wal, fed, conc, async, replica, shard, xshard, cep, plan, all")
		patients = flag.String("patients", "", "comma-separated patient counts (overrides defaults)")
		regions  = flag.Int("regions", 20, "number of regions")
		days     = flag.Int("days", 2, "days the admissions are spread over")
		seed     = flag.Int64("seed", 1, "workload seed")
		batch    = flag.Int("batch", 1, "patients per transaction")
		full     = flag.Bool("full", false, "paper-scale sweep (10^2..10^6 patients; slow)")
		reps     = flag.Int("reps", 1, "repetitions per measurement (median reported)")
		smoke    = flag.Bool("smoke", false, "tiny sweep for CI (conc, async, replica, shard, xshard, cep, plan figures)")
	)
	flag.Parse()

	counts := []int{100, 1000, 10000}
	if *full {
		counts = []int{100, 1000, 10000, 100000, 1000000}
	}
	if *patients != "" {
		counts = nil
		for _, f := range strings.Split(*patients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fatalf("bad -patients value %q", f)
			}
			counts = append(counts, n)
		}
	}
	cfg := bench.Config{
		PatientCounts: counts,
		Regions:       *regions,
		Days:          *days,
		Seed:          *seed,
		Batch:         *batch,
		Reps:          *reps,
	}

	switch *fig {
	case "9":
		runFig9(cfg)
	case "10":
		runFig10(cfg)
	case "ablation":
		runAblation(cfg)
	case "rules":
		runRuleScaling(cfg)
	case "wal":
		runWAL(cfg)
	case "fed":
		runFed(cfg)
	case "conc":
		runConc(cfg, *smoke)
	case "async":
		runAsync(*smoke)
	case "replica":
		runReplica(*smoke)
	case "shard":
		runShard(cfg, *smoke)
	case "xshard":
		runXShard(cfg, *smoke)
	case "cep":
		runCEP(cfg, *smoke)
	case "plan":
		runPlan(*smoke)
	case "all":
		runFig9(cfg)
		fmt.Println()
		runFig10(cfg)
		fmt.Println()
		runAblation(cfg)
		fmt.Println()
		runRuleScaling(cfg)
		fmt.Println()
		runWAL(cfg)
		fmt.Println()
		runFed(cfg)
		fmt.Println()
		runConc(cfg, *smoke)
		fmt.Println()
		runAsync(*smoke)
		fmt.Println()
		runReplica(*smoke)
		fmt.Println()
		runShard(cfg, *smoke)
		fmt.Println()
		runXShard(cfg, *smoke)
		fmt.Println()
		runCEP(cfg, *smoke)
		fmt.Println()
		runPlan(*smoke)
	default:
		fatalf("unknown -fig %q (want 9, 10, ablation, rules, wal, fed, conc, async, replica, shard, xshard, cep, plan or all)", *fig)
	}
}

func runFig9(cfg bench.Config) {
	pts, err := bench.RunFig9(cfg)
	if err != nil {
		fatalf("fig 9: %v", err)
	}
	bench.WriteFig9(os.Stdout, pts)
}

func runFig10(cfg bench.Config) {
	pts, err := bench.RunFig10(cfg)
	if err != nil {
		fatalf("fig 10: %v", err)
	}
	bench.WriteFig10(os.Stdout, pts)
}

func runAblation(cfg bench.Config) {
	n := 2000
	if len(cfg.PatientCounts) > 0 {
		n = cfg.PatientCounts[len(cfg.PatientCounts)-1]
	}
	pts, err := bench.RunAblation(n, []int{5, 20, 100}, cfg.Seed)
	if err != nil {
		fatalf("ablation: %v", err)
	}
	bench.WriteAblation(os.Stdout, pts)
}

func runRuleScaling(cfg bench.Config) {
	n := 2000
	if len(cfg.PatientCounts) > 0 {
		n = cfg.PatientCounts[0]
	}
	pts, err := bench.RunRuleScaling(n, []int{1, 4, 16, 64}, cfg.Seed)
	if err != nil {
		fatalf("rule scaling: %v", err)
	}
	bench.WriteRuleScaling(os.Stdout, pts)
}

func runWAL(cfg bench.Config) {
	// The default sweep is sized down: fsync-per-commit at 10k patients is
	// all disk latency and teaches nothing new over 1k.
	if len(cfg.PatientCounts) == 3 && cfg.PatientCounts[2] == 10000 {
		cfg.PatientCounts = cfg.PatientCounts[:2]
	}
	pts, err := bench.RunWALOverhead(cfg)
	if err != nil {
		fatalf("wal: %v", err)
	}
	bench.WriteWAL(os.Stdout, pts)
}

func runFed(cfg bench.Config) {
	// The backlog build-up (one rule firing per admission) dominates at 10k;
	// two sizes already show how batching amortizes the HTTP hop.
	if len(cfg.PatientCounts) == 3 && cfg.PatientCounts[2] == 10000 {
		cfg.PatientCounts = cfg.PatientCounts[:2]
	}
	pts, err := bench.RunFedLag(cfg, nil)
	if err != nil {
		fatalf("fed: %v", err)
	}
	bench.WriteFed(os.Stdout, pts)
}

func runPlan(smoke bool) {
	ruleCounts := []int{10, 100, 250}
	events, reps := 0, 3
	if smoke {
		ruleCounts = []int{100}
		events, reps = 200, 1
	}
	pts, err := bench.RunPlan(ruleCounts, events, reps)
	if err != nil {
		fatalf("plan: %v", err)
	}
	bench.WritePlan(os.Stdout, pts)
}

func runConc(cfg bench.Config, smoke bool) {
	ccfg := bench.ConcConfig{Seed: cfg.Seed}
	if smoke {
		ccfg = bench.SmokeConcConfig()
	}
	reads, err := bench.RunConcReads(ccfg)
	if err != nil {
		fatalf("conc reads: %v", err)
	}
	commits, err := bench.RunConcCommits(ccfg)
	if err != nil {
		fatalf("conc commits: %v", err)
	}
	bench.WriteConc(os.Stdout, reads, commits)
}

func runAsync(smoke bool) {
	acfg := bench.AsyncConfig{}
	if smoke {
		acfg = bench.SmokeAsyncConfig()
	}
	pts, err := bench.RunAsyncPipeline(acfg)
	if err != nil {
		fatalf("async: %v", err)
	}
	bench.WriteAsync(os.Stdout, pts)
}

func runReplica(smoke bool) {
	rcfg := bench.ReplicaConfig{}
	if smoke {
		rcfg = bench.SmokeReplicaConfig()
	}
	pts, err := bench.RunReplicaScaling(rcfg)
	if err != nil {
		fatalf("replica: %v", err)
	}
	bench.WriteReplica(os.Stdout, pts)
}

func runShard(cfg bench.Config, smoke bool) {
	scfg := bench.ShardConfig{Seed: cfg.Seed}
	if smoke {
		scfg = bench.SmokeShardConfig()
	}
	scaling, err := bench.RunShardScaling(scfg)
	if err != nil {
		fatalf("shard scaling: %v", err)
	}
	mix, err := bench.RunShardBridgeMix(scfg)
	if err != nil {
		fatalf("shard bridge mix: %v", err)
	}
	bench.WriteShard(os.Stdout, scaling, mix)
	if smoke {
		// CI gate: the invariants, not the absolute numbers.
		for _, p := range scaling {
			if p.Txs == 0 {
				fatalf("shard smoke: no commits at hubs=%d writers=%d", p.Hubs, p.Writers)
			}
		}
		for _, p := range mix {
			if p.Txs == 0 {
				fatalf("shard smoke: no commits at bridge fraction %.0f%%", p.BridgeFrac*100)
			}
			if p.BridgeFrac > 0 && p.BridgeTxs == 0 {
				fatalf("shard smoke: no bridge commits at bridge fraction %.0f%%", p.BridgeFrac*100)
			}
			if p.BridgeTxs > p.Txs {
				fatalf("shard smoke: bridge commits exceed total commits")
			}
		}
	}
}

func runXShard(cfg bench.Config, smoke bool) {
	xcfg := bench.XShardConfig{Seed: cfg.Seed}
	if smoke {
		xcfg = bench.SmokeXShardConfig()
	}
	pts, err := bench.RunXShard(xcfg)
	if err != nil {
		// RunXShard already fails hard if the two strategies disagree or a
		// bridge binds twice — the correctness half of the CI gate.
		fatalf("xshard: %v", err)
	}
	bench.WriteXShard(os.Stdout, pts)
	if smoke {
		for _, p := range pts {
			if p.Queries == 0 {
				fatalf("xshard smoke: no queries completed at hubs=%d strategy=%s", p.Hubs, p.Strategy)
			}
			if p.Rows == 0 {
				fatalf("xshard smoke: empty result at hubs=%d strategy=%s", p.Hubs, p.Strategy)
			}
		}
	}
}

func runCEP(cfg bench.Config, smoke bool) {
	ccfg := bench.CEPConfig{}
	ccfg.Fraud.Seed = cfg.Seed
	if smoke {
		ccfg = bench.SmokeCEPConfig()
	}
	pts, err := bench.RunCEP(ccfg)
	if err != nil {
		fatalf("cep: %v", err)
	}
	bench.WriteCEP(os.Stdout, pts)
	if smoke {
		// CI gate: the invariants, not the absolute numbers.
		for _, p := range pts {
			if p.Events == 0 {
				fatalf("cep smoke: no events at window=%s mode=%s", p.Window, p.Mode)
			}
			if p.Mode == "cep" && p.Alerts == 0 {
				fatalf("cep smoke: composite rules produced no alerts at window=%s", p.Window)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rkm-bench: "+format+"\n", args...)
	os.Exit(1)
}
